"""Plan index supporting (cost, resolution) range queries.

Both the result plan set and the candidate plan set are "indexed by plan cost
and by resolution level.  Using a data structure supporting multi-dimensional
range queries allows to efficiently retrieve plans whose cost is within a
certain range and which are registered for a certain range of resolution
levels" (Section 4).  The paper points to the cell data structure of Bentley &
Friedman and assumes retrieval of ``F`` plans in ``O(F)`` and insertion in
``O(1)`` (Section 5.3), noting that logarithmic partitioning of the cost space
is a natural fit because approximate dominance regions are defined by constant
factors.

:class:`PlanIndex` implements exactly that: plans are grouped per resolution
level, and within a level they are bucketed by the logarithm of their first
cost component (a one-dimensional cell partition -- sufficient because the
range queries issued by the optimizer are always of the form "cost dominated by
``b``, resolution at most ``r``", i.e. a lower-left box, so pruning whole
buckets by their first-dimension lower bound is safe and effective).  Plans
with an infinite first cost component live in a dedicated sentinel bucket that
compares *above* every finite bucket, so the bucket-skipping comparisons treat
them as maximally expensive (they can never satisfy finite bounds) instead of
accidentally ranking them below the cheapest plans.

Each bucket stores its plans alongside a
:class:`~repro.costs.matrix.CostMatrix` of their cost vectors, so the
surviving buckets of a query are filtered with one batched kernel call each
(:mod:`repro.kernel`) instead of a per-plan ``dominates()`` loop.  Removal
tombstones the bucket slot and compacts lazily, preserving insertion order --
retrieval therefore returns plans in exactly the order the scalar
implementation did, which keeps frontiers byte-identical.

The index never stores duplicate plan objects and supports removal, which the
candidate set needs (every retrieved candidate is deleted and re-pruned,
Algorithm 2 lines 8-11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.costs.matrix import CostBlock
from repro.costs.vector import CostVector
from repro.plans.plan import Plan

#: Bucket id of plans whose first cost component is ``+inf``.  ``math.inf``
#: compares above every finite bucket id, so the "skip buckets above the
#: bound's bucket" logic handles unbounded costs without a special case.
INFINITE_BUCKET = math.inf

_BucketId = Union[int, float]


@dataclass(frozen=True)
class IndexedPlan:
    """A plan together with the resolution level it is registered for."""

    plan: Plan
    resolution: int


#: One (resolution, cell) pair: the plans plus their cost matrix.
_Bucket = CostBlock[Plan]


class PlanIndex:
    """Plans indexed by cost vector and resolution level.

    Parameters
    ----------
    cell_base:
        Base of the logarithmic partitioning of the first cost dimension.
        Cost values ``c`` land in bucket ``floor(log_base(c + 1))``.  A larger
        base means fewer, coarser buckets.
    """

    def __init__(self, cell_base: float = 2.0):
        if cell_base <= 1.0:
            raise ValueError("cell_base must be greater than 1")
        self._cell_base = cell_base
        self._log_base = math.log(cell_base)
        # resolution level -> bucket id -> bucket (insertion-ordered dicts)
        self._levels: Dict[int, Dict[_BucketId, _Bucket]] = {}
        # plan id -> (resolution, bucket, slot) for O(1) removal bookkeeping
        self._locations: Dict[int, Tuple[int, _BucketId, int]] = {}

    # ------------------------------------------------------------------
    # Bucketing
    # ------------------------------------------------------------------
    def _bucket_of(self, cost: CostVector) -> _BucketId:
        first = cost[0]
        if math.isinf(first):
            return INFINITE_BUCKET
        return int(math.log(first + 1.0) / self._log_base)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, plan: Plan, resolution: int) -> None:
        """Register ``plan`` for the given resolution level."""
        if resolution < 0:
            raise ValueError("resolution must be non-negative")
        if plan.plan_id in self._locations:
            raise ValueError(
                f"plan {plan.plan_id} is already registered in this index"
            )
        bucket_id = self._bucket_of(plan.cost)
        level = self._levels.setdefault(resolution, {})
        bucket = level.get(bucket_id)
        if bucket is None:
            bucket = _Bucket(plan.cost.dimensions)
            level[bucket_id] = bucket
        slot = bucket.append(plan.cost, plan)
        self._locations[plan.plan_id] = (resolution, bucket_id, slot)

    def remove(self, plan: Plan) -> None:
        """Remove a previously registered plan."""
        location = self._locations.pop(plan.plan_id, None)
        if location is None:
            raise KeyError(f"plan {plan.plan_id} is not registered in this index")
        resolution, bucket_id, slot = location
        level = self._levels[resolution]
        bucket = level[bucket_id]
        bucket.kill(slot)
        if bucket.matrix.live_count == 0:
            del level[bucket_id]
            if not level:
                del self._levels[resolution]
        elif bucket.compact_if_needed() is not None:
            for new_slot, survivor in enumerate(bucket.items):
                self._locations[survivor.plan_id] = (resolution, bucket_id, new_slot)

    def discard(self, plan: Plan) -> bool:
        """Remove the plan if present; return whether it was present."""
        if plan.plan_id not in self._locations:
            return False
        self.remove(plan)
        return True

    def clear(self) -> None:
        """Remove all plans."""
        self._levels.clear()
        self._locations.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, plan: Plan) -> bool:
        return plan.plan_id in self._locations

    def resolution_of(self, plan: Plan) -> int:
        """The resolution level the plan is registered for."""
        try:
            return self._locations[plan.plan_id][0]
        except KeyError:
            raise KeyError(
                f"plan {plan.plan_id} is not registered in this index"
            ) from None

    def all_plans(self) -> List[Plan]:
        """Every registered plan, in no particular order."""
        result: List[Plan] = []
        for buckets in self._levels.values():
            for bucket in buckets.values():
                result.extend(bucket.live_items())
        return result

    def all_entries(self) -> List[IndexedPlan]:
        """Every registered plan with its resolution level."""
        result: List[IndexedPlan] = []
        for resolution, buckets in self._levels.items():
            for bucket in buckets.values():
                result.extend(
                    IndexedPlan(plan, resolution) for plan in bucket.live_items()
                )
        return result

    def count_at_resolution(self, resolution: int) -> int:
        """Number of plans registered exactly at the given resolution."""
        buckets = self._levels.get(resolution, {})
        return sum(bucket.matrix.live_count for bucket in buckets.values())

    def retrieve(
        self,
        bounds: CostVector,
        max_resolution: int,
        min_resolution: int = 0,
    ) -> List[Plan]:
        """Plans with cost dominated by ``bounds`` and resolution in range.

        This is the range query written ``S^q[0..b, 0..r]`` in the paper
        (optionally with a non-zero lower resolution limit, which the
        re-indexing of candidate plans uses).  Each surviving bucket is
        filtered with one batched kernel call.
        """
        if max_resolution < min_resolution:
            return []
        bound_bucket = self._bucket_of(bounds)
        result: List[Plan] = []
        for resolution in range(min_resolution, max_resolution + 1):
            buckets = self._levels.get(resolution)
            if not buckets:
                continue
            for bucket_id, bucket in buckets.items():
                if bucket_id > bound_bucket:
                    continue
                plans = bucket.items
                result.extend(
                    plans[slot] for slot in bucket.matrix.dominated_slots(bounds)
                )
        return result

    def retrieve_entries(
        self,
        bounds: CostVector,
        max_resolution: int,
        min_resolution: int = 0,
    ) -> List[IndexedPlan]:
        """Like :meth:`retrieve` but also returns each plan's resolution."""
        if max_resolution < min_resolution:
            return []
        bound_bucket = self._bucket_of(bounds)
        result: List[IndexedPlan] = []
        for resolution in range(min_resolution, max_resolution + 1):
            buckets = self._levels.get(resolution)
            if not buckets:
                continue
            for bucket_id, bucket in buckets.items():
                if bucket_id > bound_bucket:
                    continue
                plans = bucket.items
                result.extend(
                    IndexedPlan(plans[slot], resolution)
                    for slot in bucket.matrix.dominated_slots(bounds)
                )
        return result

    def find_dominating(
        self,
        target: CostVector,
        bounds: CostVector,
        max_resolution: int,
        order_filter: Optional[Callable[[Plan], bool]] = None,
    ) -> Optional[Plan]:
        """Return some in-range plan whose cost dominates ``target``, if any.

        This is the existence check of Algorithm 3 line 7
        (``∃ p_A ∈ Res^q[0..b, 0..r] : c(p_A) ⪯ alpha_r · c(p)``); the caller
        passes the already-scaled ``target`` vector.  ``order_filter`` lets the
        pruning procedure restrict the comparison to plans with a compatible
        interesting order (Section 4.3).

        The returned plan is a *witness* of the approximation; the pruning
        layer caches it so that re-checking a deferred candidate at the next
        resolution level is usually a single dominance test.  Buckets are
        scanned in ascending first-metric order because dominating plans are
        cheap plans, which makes the short-circuit trigger early.  A plan
        dominates both ``bounds`` and ``target`` exactly when it dominates
        their component-wise minimum, so each bucket needs a single batched
        kernel call.
        """
        if len(target) != len(bounds):
            raise ValueError(
                "cannot compare cost vectors of different dimensionality"
            )
        bucket_limit = min(self._bucket_of(bounds), self._bucket_of(target))
        combined = tuple(min(b, t) for b, t in zip(bounds, target))
        for resolution in range(0, max_resolution + 1):
            buckets = self._levels.get(resolution)
            if not buckets:
                continue
            for bucket_id in sorted(buckets):
                if bucket_id > bucket_limit:
                    # Every plan in this (and any later) bucket has a
                    # first-metric cost above the bounds or the target, so
                    # none of them can qualify.
                    break
                bucket = buckets[bucket_id]
                if order_filter is None:
                    slot = bucket.matrix.first_dominating(combined)
                    if slot != -1:
                        return bucket.items[slot]
                else:
                    for slot in bucket.matrix.dominated_slots(combined):
                        plan = bucket.items[slot]
                        if order_filter(plan):
                            return plan
        return None

    def any_dominating(
        self,
        target: CostVector,
        bounds: CostVector,
        max_resolution: int,
        order_filter: Optional[Callable[[Plan], bool]] = None,
    ) -> bool:
        """Whether some in-range plan's cost dominates ``target``."""
        return (
            self.find_dominating(target, bounds, max_resolution, order_filter)
            is not None
        )
