"""Procedure ``Optimize`` (Algorithm 2): the incremental optimizer.

Each invocation receives the current cost bounds ``b`` and resolution ``r`` and
guarantees that afterwards the result plan sets ``Res^q[0..b, 0..r]`` contain
an ``alpha_r^{|q|}``-approximate b-bounded Pareto plan set for every table
subset ``q`` (Theorems 1 and 2).  The two phases are:

1. **Candidate reconsideration** (lines 6-12): every candidate plan registered
   for the current bounds and a resolution at most ``r`` is removed from the
   candidate set and re-pruned; pruning may promote it to the result set,
   re-park it as a candidate for a higher resolution, or discard it.
2. **Fresh plan generation** (lines 13-22): for every table subset of
   increasing cardinality and every split into two parts, fresh combinations
   of result sub-plans are generated (one per applicable join operator,
   Section 4.3), costed, and pruned.

The whole loop runs on *arena plan ids*: the plan indexes yield id blocks,
fresh pairs are enumerated as integer pairs, ``IsFresh`` filters integer
triples, and every surviving (left, right, operator) block of a table subset
is costed with one vectorized kernel call per metric
(:meth:`repro.plans.factory.PlanFactory.combine_block`) and handed to
:func:`repro.core.pruning.prune_all_ids` in one batch -- the outcome sequence
is identical to generating, costing and pruning each plan individually, but
no per-plan Python objects are materialized on the hot path.

Incrementality rests on two pieces of machinery implemented in
:mod:`repro.core.fresh`: the ``IsFresh`` registry, which guarantees that no
sub-plan pair/operator combination is ever materialized twice (Lemma 6), and
the Δ-set optimization, which skips whole blocks of already-combined pairs when
the invocation history allows it.  The exact condition under which the Δ-sets
may be restricted to newly inserted plans is tracked via *covered boxes* --
(bounds, resolution) regions for which all result-plan pairs are known to have
been enumerated; see :class:`_CoverageTracker`.  This is a slightly more
explicit (and slightly more conservative) bookkeeping than the paper's prose
description, but it is provably safe for arbitrary invocation sequences, not
only for monotone bound-tightening series.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro import flags
from repro.costs.dominance import dominates
from repro.costs.vector import CostVector
from repro.core.fresh import fresh_id_pairs
from repro.core.pruning import PruneOutcome, prune_all_ids
from repro.core.resolution import ResolutionSchedule
from repro.core.state import OptimizerState
from repro.obs import trace as obs_trace
from repro.plans.factory import PlanFactory
from repro.plans.plan import Plan
from repro.plans.query import Query, proper_splits, table_subsets

TableSet = FrozenSet[str]


@dataclass(frozen=True)
class InvocationReport:
    """What a single optimizer invocation did (returned by ``optimize``)."""

    invocation_index: int
    resolution: int
    alpha: float
    bounds: CostVector
    duration_seconds: float
    delta_mode: bool
    candidates_retrieved: int
    pairs_enumerated: int
    join_plans_generated: int
    scan_plans_generated: int
    plans_inserted: int
    plans_deferred: int
    plans_out_of_bounds: int
    plans_discarded: int
    result_plans_total: int
    candidate_plans_total: int
    frontier_size: int
    #: Arena occupancy after the invocation (see ``PlanArena.stats``).
    arena_plans_live: int = 0
    arena_plans_tombstoned: int = 0
    arena_peak_bytes: int = 0


@dataclass(frozen=True)
class _CoveredBox:
    """A (bounds, resolution) region whose result-plan pairs are all enumerated."""

    bounds: CostVector
    resolution: int

    def contains(self, other: "_CoveredBox") -> bool:
        return (
            other.resolution <= self.resolution
            and dominates(other.bounds, self.bounds)
        )


class _CoverageTracker:
    """Tracks for which (bounds, resolution) boxes all sub-plan pairs are covered.

    The Δ-set optimization may restrict pair enumeration to pairs involving at
    least one plan inserted during the *current* invocation only when all pairs
    of *previously existing* plans retrievable under the current bounds and
    resolution have already been enumerated.  That is guaranteed when some
    covered box contains every previously existing retrievable plan, for which
    it suffices that the current bounds are at least as tight as the box bounds
    and that no old result plan is registered above the box resolution but at
    or below the current resolution.
    """

    def __init__(self) -> None:
        self._boxes: List[_CoveredBox] = []
        self._max_resolution_used = -1

    def delta_mode_allowed(self, bounds: CostVector, resolution: int) -> bool:
        """Whether the Δ-set restriction is safe for the upcoming invocation."""
        if self._max_resolution_used < 0:
            # First invocation: the result sets are empty, every plan inserted
            # during this invocation is in the Δ-set, so the restriction is a
            # no-op and trivially safe.
            return True
        old_plan_level_limit = min(resolution, self._max_resolution_used)
        for box in self._boxes:
            if old_plan_level_limit <= box.resolution and dominates(
                bounds, box.bounds
            ):
                return True
        return False

    def record_invocation(self, bounds: CostVector, resolution: int) -> None:
        """Update the covered boxes after an invocation at (bounds, resolution).

        Boxes whose resolution is at least the current one may now contain new
        result plans whose pairs with other box members were not enumerated,
        so they are dropped; the box of the current invocation is added.
        """
        survivors = [box for box in self._boxes if box.resolution < resolution]
        new_box = _CoveredBox(bounds=bounds, resolution=resolution)
        survivors = [box for box in survivors if not new_box.contains(box)]
        survivors.append(new_box)
        self._boxes = survivors
        self._max_resolution_used = max(self._max_resolution_used, resolution)


class IncrementalOptimizer:
    """The incremental optimizer: owns the per-query state, runs Algorithm 2.

    Parameters
    ----------
    query:
        The query to optimize.
    factory:
        Plan factory shared by all invocations for this query; its arena is
        the backing store of every plan this optimizer touches.
    schedule:
        Resolution schedule mapping resolution levels to precision factors.
    allow_cross_products:
        When false (default), only connected table subsets are enumerated and
        splits must be linked by at least one join predicate, mirroring the
        Postgres join enumerator.  Set to true for queries whose join graph is
        intentionally disconnected.
    respect_orders:
        Forwarded to the pruning procedure: restrict cost comparisons to plans
        with compatible interesting tuple orders (Section 4.3).
    use_delta_sets:
        Enable the Δ-set optimization.  Disabling it (ablation
        ``A-abl-2``) keeps the algorithm correct -- ``IsFresh`` still prevents
        duplicate plan construction -- but forces full pair enumeration in
        every invocation.
    cell_base:
        Cell width parameter of the plan indexes.
    """

    def __init__(
        self,
        query: Query,
        factory: PlanFactory,
        schedule: ResolutionSchedule,
        allow_cross_products: bool = False,
        respect_orders: bool = True,
        use_delta_sets: bool = True,
        cell_base: float = 2.0,
    ):
        self._query = query
        self._factory = factory
        self._schedule = schedule
        self._allow_cross_products = allow_cross_products
        self._respect_orders = respect_orders
        # The Δ-set optimization can be ablated per optimizer (the keyword,
        # used by the bespoke freshness ablation) or globally (feature flag).
        self._use_delta_sets = use_delta_sets and flags.enabled("delta_sets")
        self._state = OptimizerState(query, cell_base=cell_base)
        self._coverage = _CoverageTracker()
        self._plan_order = self._enumerate_plan_order()
        # plan id -> result plan that approximated it during its last pruning;
        # speeds up re-pruning of deferred candidates (see repro.core.pruning).
        # None (witness_cache feature off) makes every re-pruning start cold.
        self._witnesses: Optional[Dict[int, Plan]] = (
            {} if flags.enabled("witness_cache") else None
        )

    # ------------------------------------------------------------------
    # Read-only access
    # ------------------------------------------------------------------
    @property
    def query(self) -> Query:
        return self._query

    @property
    def state(self) -> OptimizerState:
        return self._state

    @property
    def schedule(self) -> ResolutionSchedule:
        return self._schedule

    @property
    def factory(self) -> PlanFactory:
        return self._factory

    @property
    def arena(self):
        """The per-query plan arena backing this optimizer."""
        return self._factory.arena

    def frontier(self, bounds: CostVector, resolution: int) -> List[Plan]:
        """Completed query plans respecting the bounds at the given resolution.

        This is the plan set handed to ``Visualize`` in Algorithm 1:
        ``Res^Q[0..b, 0..r]``.
        """
        return self._state.final_result_set().retrieve(bounds, resolution)

    # ------------------------------------------------------------------
    # Search-space enumeration (precomputed once per query)
    # ------------------------------------------------------------------
    def _enumerate_plan_order(
        self,
    ) -> List[Tuple[TableSet, List[Tuple[TableSet, TableSet]]]]:
        """Table subsets of size >= 2 in DP order with their admissible splits."""
        query = self._query
        admissible: set = set()
        for subset in table_subsets(query.tables, min_size=1):
            if len(subset) == 1 or self._allow_cross_products or query.is_connected(subset):
                admissible.add(subset)
        order: List[Tuple[TableSet, List[Tuple[TableSet, TableSet]]]] = []
        for subset in table_subsets(query.tables, min_size=2):
            if subset not in admissible:
                continue
            splits: List[Tuple[TableSet, TableSet]] = []
            for left, right in proper_splits(subset):
                if left not in admissible or right not in admissible:
                    continue
                if not self._allow_cross_products:
                    if not query.join_graph.predicates_between(left, right):
                        continue
                splits.append((left, right))
            if splits:
                order.append((subset, splits))
        return order

    # ------------------------------------------------------------------
    # The optimizer invocation (Algorithm 2)
    # ------------------------------------------------------------------
    def optimize(self, bounds: CostVector, resolution: int) -> InvocationReport:
        """Run one optimizer invocation for the given bounds and resolution."""
        metric_dims = self._factory.metric_set.dimensions
        if len(bounds) != metric_dims:
            raise ValueError(
                f"bounds have {len(bounds)} components but the cost model uses "
                f"{metric_dims} metrics"
            )
        alpha = self._schedule.alpha(resolution)
        max_resolution = self._schedule.max_resolution
        counters = self._state.counters
        before = _CounterSnapshot.capture(counters)
        started = time.perf_counter()

        delta_mode = self._use_delta_sets and self._coverage.delta_mode_allowed(
            bounds, resolution
        )
        inserted_now: Dict[TableSet, List[int]] = {}

        # Seeding: generate and prune scan plans once per query (Algorithm 1,
        # lines 7-10; folded into the first invocation so that the initial
        # bounds and resolution are the ones actually used).
        if not self._state.seeded:
            with obs_trace.span("optimizer.seed", resolution=resolution):
                self._seed(bounds, resolution, alpha, max_resolution, inserted_now)

        # Phase 1: reconsider candidate plans (lines 6-12).
        with obs_trace.span("optimizer.reconsider", resolution=resolution):
            self._reconsider_candidates(
                bounds, resolution, alpha, max_resolution, inserted_now
            )

        # Phase 2: generate fresh plans bottom-up (lines 13-22).
        with obs_trace.span(
            "optimizer.generate", resolution=resolution, delta_mode=delta_mode
        ):
            self._generate_fresh_plans(
                bounds, resolution, alpha, max_resolution, inserted_now, delta_mode
            )

        self._coverage.record_invocation(bounds, resolution)
        counters.invocations += 1
        arena_stats = self._factory.arena.stats()
        counters.arena_plans_live = arena_stats.plans_live
        counters.arena_plans_tombstoned = arena_stats.plans_tombstoned
        counters.arena_peak_bytes = max(
            counters.arena_peak_bytes, arena_stats.approx_bytes
        )
        duration = time.perf_counter() - started
        after = _CounterSnapshot.capture(counters)
        frontier_size = len(self.frontier(bounds, resolution))
        return InvocationReport(
            invocation_index=counters.invocations,
            resolution=resolution,
            alpha=alpha,
            bounds=bounds,
            duration_seconds=duration,
            delta_mode=delta_mode,
            candidates_retrieved=after.candidate_retrievals - before.candidate_retrievals,
            pairs_enumerated=after.pairs_enumerated - before.pairs_enumerated,
            join_plans_generated=after.join_plans_generated - before.join_plans_generated,
            scan_plans_generated=after.scan_plans_generated - before.scan_plans_generated,
            plans_inserted=after.plans_inserted - before.plans_inserted,
            plans_deferred=after.plans_deferred - before.plans_deferred,
            plans_out_of_bounds=after.plans_out_of_bounds - before.plans_out_of_bounds,
            plans_discarded=after.plans_discarded - before.plans_discarded,
            result_plans_total=self._state.total_result_plans(),
            candidate_plans_total=self._state.total_candidate_plans(),
            frontier_size=frontier_size,
            arena_plans_live=counters.arena_plans_live,
            arena_plans_tombstoned=counters.arena_plans_tombstoned,
            arena_peak_bytes=counters.arena_peak_bytes,
        )

    # ------------------------------------------------------------------
    # Internal phases
    # ------------------------------------------------------------------
    def _seed(
        self,
        bounds: CostVector,
        resolution: int,
        alpha: float,
        max_resolution: int,
        inserted_now: Dict[TableSet, List[int]],
    ) -> None:
        block: List[int] = []
        for table in sorted(self._query.tables):
            block.extend(self._factory.scan_block(table))
        self._state.counters.scan_plans_generated += len(block)
        self._prune_block(block, bounds, resolution, alpha, max_resolution, inserted_now)
        self._state.seeded = True

    def _reconsider_candidates(
        self,
        bounds: CostVector,
        resolution: int,
        alpha: float,
        max_resolution: int,
        inserted_now: Dict[TableSet, List[int]],
    ) -> None:
        counters = self._state.counters
        for tables, candidate_index in list(
            self._state.populated_candidate_sets().items()
        ):
            retrievable = candidate_index.retrieve_ids(bounds, resolution)
            for plan_id in retrievable:
                candidate_index.remove_id(plan_id)
            counters.candidate_retrievals += len(retrievable)
            self._prune_block(
                retrievable, bounds, resolution, alpha, max_resolution, inserted_now
            )

    def _generate_fresh_plans(
        self,
        bounds: CostVector,
        resolution: int,
        alpha: float,
        max_resolution: int,
        inserted_now: Dict[TableSet, List[int]],
        delta_mode: bool,
    ) -> None:
        counters = self._state.counters
        freshness = self._state.freshness
        join_operators = self._factory.join_operators()
        operator_keys = [
            freshness.operator_key(operator) for operator in join_operators
        ]
        operator_range = range(len(join_operators))
        for subset, splits in self._plan_order:
            # Collect every fresh combination for this table subset as
            # (left id, right id, operator) triples, cost them split by split
            # with the batched kernel path, then prune the whole block at
            # once.  Plans of a subset never feed the generation of the same
            # subset (splits are strictly smaller), so deferring the pruning
            # to the block boundary is equivalent to pruning each plan as it
            # is generated.
            block: List[int] = []
            for left_tables, right_tables in splits:
                if delta_mode:
                    left_delta = inserted_now.get(left_tables, ())
                    right_delta = inserted_now.get(right_tables, ())
                    if not left_delta and not right_delta:
                        # No fresh sub-plan on either side: every pair of the
                        # retrievable plans has already been combined, so the
                        # retrieval itself can be skipped.
                        continue
                else:
                    left_delta = None
                    right_delta = None
                left_ids = self._state.result_set(left_tables).retrieve_ids(
                    bounds, resolution
                )
                if not left_ids:
                    continue
                right_ids = self._state.result_set(right_tables).retrieve_ids(
                    bounds, resolution
                )
                if not right_ids:
                    continue
                triples: List[Tuple[int, int, int]] = []
                for left_id, right_id in fresh_id_pairs(
                    left_ids, right_ids, left_delta, right_delta
                ):
                    counters.pairs_enumerated += 1
                    for operator_index in operator_range:
                        if not freshness.register_ids(
                            left_id, right_id, operator_keys[operator_index]
                        ):
                            continue
                        triples.append((left_id, right_id, operator_index))
                if triples:
                    block.extend(
                        self._factory.combine_block(
                            left_tables, right_tables, triples, join_operators
                        )
                    )
            counters.join_plans_generated += len(block)
            self._prune_block(
                block, bounds, resolution, alpha, max_resolution, inserted_now
            )

    def _prune_block(
        self,
        plan_ids: List[int],
        bounds: CostVector,
        resolution: int,
        alpha: float,
        max_resolution: int,
        inserted_now: Dict[TableSet, List[int]],
    ) -> None:
        """Prune a block of plan ids, grouped per table set, preserving order."""
        if not plan_ids:
            return
        arena = self._factory.arena
        counters = self._state.counters
        groups: Dict[TableSet, List[int]] = {}
        for plan_id in plan_ids:
            groups.setdefault(arena.tables_of(plan_id), []).append(plan_id)
        for tables, group in groups.items():
            outcomes = prune_all_ids(
                result_index=self._state.result_set(tables),
                candidate_index=self._state.candidate_set(tables),
                bounds=bounds,
                resolution=resolution,
                alpha=alpha,
                max_resolution=max_resolution,
                arena=arena,
                plan_ids=group,
                respect_orders=self._respect_orders,
                witnesses=self._witnesses,
            )
            for plan_id, outcome in zip(group, outcomes):
                if outcome is PruneOutcome.INSERTED:
                    counters.plans_inserted += 1
                    inserted_now.setdefault(tables, []).append(plan_id)
                elif outcome is PruneOutcome.DEFERRED_TO_HIGHER_RESOLUTION:
                    counters.plans_deferred += 1
                elif outcome is PruneOutcome.OUT_OF_BOUNDS:
                    counters.plans_out_of_bounds += 1
                else:
                    counters.plans_discarded += 1
                    arena.tombstone(plan_id)


@dataclass(frozen=True)
class _CounterSnapshot:
    """Snapshot of the state counters for per-invocation deltas."""

    candidate_retrievals: int
    pairs_enumerated: int
    join_plans_generated: int
    scan_plans_generated: int
    plans_inserted: int
    plans_deferred: int
    plans_out_of_bounds: int
    plans_discarded: int

    @classmethod
    def capture(cls, counters) -> "_CounterSnapshot":
        return cls(
            candidate_retrievals=counters.candidate_retrievals,
            pairs_enumerated=counters.pairs_enumerated,
            join_plans_generated=counters.join_plans_generated,
            scan_plans_generated=counters.scan_plans_generated,
            plans_inserted=counters.plans_inserted,
            plans_deferred=counters.plans_deferred,
            plans_out_of_bounds=counters.plans_out_of_bounds,
            plans_discarded=counters.plans_discarded,
        )
