"""Procedure ``Prune`` (Algorithm 3).

Given a new plan ``p`` for table set ``q``, the current cost bounds ``b``, the
current resolution ``r`` and its precision factor ``alpha_r``, pruning decides
which of three things happens:

1. some result plan registered at resolution ``<= r`` and within the bounds
   already *approximates* ``p`` (its cost dominates ``alpha_r * c(p)``): ``p``
   is kept as a **candidate for resolution r + 1** -- it might become relevant
   once the resolution is refined -- or discarded if the maximal resolution is
   already reached;
2. otherwise, if ``p``'s cost exceeds the bounds, ``p`` is kept as a
   **candidate for the current resolution** -- it might become relevant once
   the user relaxes the bounds;
3. otherwise ``p`` is **inserted into the result set**, registered at the
   current resolution.

Two deliberate design decisions from Section 4.2 are preserved:

* the new plan is only compared against result plans registered at the current
  resolution *or lower* (never higher), keeping the number of comparisons
  proportional to the result set size at the current resolution;
* result plans that are dominated by the new plan are **not** discarded,
  because they may already serve as sub-plans of previously combined plans.

Following Section 4.3, the cost comparison is restricted to plans producing a
compatible interesting tuple order: a result plan can only approximate the new
plan when it provides at least the same ordering guarantee.

Since the arena refactor the decision logic operates on arena primitives (plan
ids, raw cost rows, interned order ids); :func:`prune_all_ids` is the
optimizer's batched entry point (one kernel gather + scale per block), while
:func:`prune` / :func:`prune_all` keep the object-level API over the same
core, so both paths produce identical outcome sequences by construction.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro import flags, kernel
from repro.costs.vector import CostVector
from repro.core.index import PlanIndex
from repro.obs import trace as obs_trace
from repro.plans.arena import PlanArena
from repro.plans.plan import Plan


class PruneOutcome(enum.Enum):
    """What happened to a plan handed to :func:`prune`."""

    #: The plan was inserted into the result plan set.
    INSERTED = "inserted"
    #: An existing result plan approximates it; kept as candidate for ``r + 1``.
    DEFERRED_TO_HIGHER_RESOLUTION = "deferred"
    #: Its cost exceeds the bounds; kept as candidate for the current resolution.
    OUT_OF_BOUNDS = "out_of_bounds"
    #: Approximated at the maximal resolution; the plan is dropped for good.
    DISCARDED = "discarded"

    @property
    def became_result(self) -> bool:
        return self is PruneOutcome.INSERTED

    @property
    def became_candidate(self) -> bool:
        return self in (
            PruneOutcome.DEFERRED_TO_HIGHER_RESOLUTION,
            PruneOutcome.OUT_OF_BOUNDS,
        )


def order_covers(provider: Plan, consumer: Plan) -> bool:
    """Whether ``provider`` offers at least the ordering guarantee of ``consumer``.

    A plan without an interesting order is covered by any plan; a plan with an
    interesting order is only covered by plans producing the same order.  The
    pruning comparison uses this predicate so that plans producing a useful
    tuple order are never pruned by cheaper unordered plans (the multi-objective
    generalization of Selinger's interesting-order rule, Section 4.3).
    """
    if consumer.interesting_order is None:
        return True
    return provider.interesting_order == consumer.interesting_order


def _row_leq(row: Sequence[float], bounds: Sequence[float]) -> bool:
    """Component-wise ``row <= bounds`` (dominance on raw cost rows)."""
    for value, bound in zip(row, bounds):
        if value > bound:
            return False
    return True


def prune(
    result_index: PlanIndex,
    candidate_index: PlanIndex,
    bounds: CostVector,
    resolution: int,
    alpha: float,
    max_resolution: int,
    plan: Plan,
    respect_orders: bool = True,
    witnesses: Optional[Dict[int, Plan]] = None,
) -> PruneOutcome:
    """Apply procedure ``Prune`` to a single plan.

    Parameters
    ----------
    result_index, candidate_index:
        The result plan set ``Res^q`` and candidate plan set ``Cand^q`` of the
        plan's table set.
    bounds:
        Current cost bounds ``b``.
    resolution:
        Current resolution level ``r``.
    alpha:
        The precision factor ``alpha_r`` for the current resolution.
    max_resolution:
        ``r_M``; plans approximated at the maximal resolution are discarded.
    plan:
        The new plan ``p`` to be pruned.
    respect_orders:
        When true (default), only result plans with a compatible interesting
        order may approximate the new plan.
    witnesses:
        Optional cache mapping a plan id to the result plan that approximated
        it in an earlier pruning (its *witness*).  When a deferred candidate is
        re-pruned at the next resolution level, the witness usually still
        approximates it, so the full existence check is skipped.  The cache is
        purely an optimization: its hits satisfy exactly the condition of
        Algorithm 3 line 7.

    Returns
    -------
    PruneOutcome
        What happened to the plan.
    """
    if alpha < 1.0:
        raise ValueError("the precision factor alpha_r must be >= 1")
    arena = plan.arena
    cost_row = arena.cost_row(plan.plan_id)
    scaled_row = tuple(value * alpha for value in cost_row)
    return _prune_core(
        result_index,
        candidate_index,
        tuple(bounds),
        resolution,
        max_resolution,
        arena,
        plan.plan_id,
        cost_row,
        scaled_row,
        respect_orders,
        witnesses,
    )


def prune_all(
    result_index: PlanIndex,
    candidate_index: PlanIndex,
    bounds: CostVector,
    resolution: int,
    alpha: float,
    max_resolution: int,
    plans: Sequence[Plan],
    respect_orders: bool = True,
    witnesses: Optional[Dict[int, Plan]] = None,
) -> List[PruneOutcome]:
    """Apply procedure ``Prune`` to a block of plan handles of one table set.

    The plans are processed strictly in order, so the outcome sequence is
    identical to calling :func:`prune` once per plan -- a plan inserted early
    in the block can approximate (and thereby defer) a later one.  All plans
    must belong to the same table set as the given result and candidate
    indexes and to one arena; returns one :class:`PruneOutcome` per plan.
    """
    if not plans:
        return []
    return prune_all_ids(
        result_index,
        candidate_index,
        bounds,
        resolution,
        alpha,
        max_resolution,
        plans[0].arena,
        [plan.plan_id for plan in plans],
        respect_orders,
        witnesses,
    )


def prune_all_ids(
    result_index: PlanIndex,
    candidate_index: PlanIndex,
    bounds: CostVector,
    resolution: int,
    alpha: float,
    max_resolution: int,
    arena: PlanArena,
    plan_ids: Sequence[int],
    respect_orders: bool = True,
    witnesses: Optional[Dict[int, Plan]] = None,
) -> List[PruneOutcome]:
    """Apply procedure ``Prune`` to a block of arena plan ids.

    The batch entry point of the optimizer (seeding, candidate
    reconsideration and fresh-plan generation in :mod:`repro.core.optimizer`):
    the block's cost rows are gathered from the arena matrix and scaled by
    ``alpha_r`` with one kernel call each, then every plan's witness search
    runs through the batched kernel of the result index.  Outcomes are
    identical to pruning each plan the moment it was produced.
    """
    if alpha < 1.0:
        raise ValueError("the precision factor alpha_r must be >= 1")
    if not plan_ids:
        return []
    return _prune_all_ids_traced(
        result_index,
        candidate_index,
        bounds,
        resolution,
        alpha,
        max_resolution,
        arena,
        plan_ids,
        respect_orders,
        witnesses,
    )


def _prune_all_ids_traced(
    result_index: PlanIndex,
    candidate_index: PlanIndex,
    bounds: CostVector,
    resolution: int,
    alpha: float,
    max_resolution: int,
    arena: PlanArena,
    plan_ids: Sequence[int],
    respect_orders: bool = True,
    witnesses: Optional[Dict[int, Plan]] = None,
) -> List[PruneOutcome]:
    with obs_trace.span(
        "pruning.prune_block", block_size=len(plan_ids), resolution=resolution
    ):
        with obs_trace.span(
            "kernel.block",
            op="take+scale_columns",
            backend=kernel.backend_name(),
            block_size=len(plan_ids),
        ):
            slots = [plan_id - 1 for plan_id in plan_ids]
            columns = kernel.ops.take(arena.costs.columns, slots)
            scaled_columns = kernel.ops.scale_columns(columns, alpha)
        cost_rows = list(zip(*columns))
        scaled_rows = list(zip(*scaled_columns))
        bounds_row = tuple(bounds)
        # The whole block shares one bound vector; bucket it once for the
        # witness searches of every plan in the block.  With the
        # ``bounds_bucket`` feature ablated, None makes every retrieval
        # re-bucket per plan.
        bounds_bucket = (
            result_index.bucket_of(bounds_row)
            if flags.enabled("bounds_bucket")
            else None
        )
        outcomes: List[PruneOutcome] = []
        for position, plan_id in enumerate(plan_ids):
            outcomes.append(
                _prune_core(
                    result_index,
                    candidate_index,
                    bounds_row,
                    resolution,
                    max_resolution,
                    arena,
                    plan_id,
                    cost_rows[position],
                    scaled_rows[position],
                    respect_orders,
                    witnesses,
                    bounds_bucket,
                )
            )
        return outcomes


def _prune_core(
    result_index: PlanIndex,
    candidate_index: PlanIndex,
    bounds_row: Tuple[float, ...],
    resolution: int,
    max_resolution: int,
    arena: PlanArena,
    plan_id: int,
    cost_row: Tuple[float, ...],
    scaled_row: Tuple[float, ...],
    respect_orders: bool,
    witnesses: Optional[Dict[int, Plan]],
    bounds_bucket: Optional[float] = None,
) -> PruneOutcome:
    """Prune one plan given its raw and ``alpha_r``-scaled cost rows."""
    order_id = arena.order_id_of(plan_id)
    witness_id = 0
    if witnesses is not None:
        cached = witnesses.get(plan_id)
        if cached is not None:
            cached_id = cached.plan_id
            if (
                result_index.contains_id(cached_id)
                and result_index.resolution_of_id(cached_id) <= resolution
                and (
                    not respect_orders
                    or order_id == 0
                    or arena.order_id_of(cached_id) == order_id
                )
            ):
                cached_row = arena.cost_row(cached_id)
                if _row_leq(cached_row, bounds_row) and _row_leq(
                    cached_row, scaled_row
                ):
                    witness_id = cached_id
    if witness_id == 0:
        if respect_orders and order_id != 0:
            # Only plans producing the same tuple order may approximate this one.
            witness_id = result_index.find_dominating_id(
                scaled_row, bounds_row, resolution, order_id, bounds_bucket
            )
        else:
            # A plan without ordering requirements is coverable by any plan.
            witness_id = result_index.find_dominating_id(
                scaled_row, bounds_row, resolution, None, bounds_bucket
            )
    if witness_id:
        if witnesses is not None:
            witnesses[plan_id] = arena.plan(witness_id)
        if resolution < max_resolution:
            candidate_index.insert_id(plan_id, resolution + 1, arena, cost_row)
            return PruneOutcome.DEFERRED_TO_HIGHER_RESOLUTION
        if witnesses is not None:
            witnesses.pop(plan_id, None)
        return PruneOutcome.DISCARDED
    if not _row_leq(cost_row, bounds_row):
        candidate_index.insert_id(plan_id, resolution, arena, cost_row)
        return PruneOutcome.OUT_OF_BOUNDS
    result_index.insert_id(plan_id, resolution, arena, cost_row)
    if witnesses is not None:
        witnesses.pop(plan_id, None)
    return PruneOutcome.INSERTED
