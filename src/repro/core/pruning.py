"""Procedure ``Prune`` (Algorithm 3).

Given a new plan ``p`` for table set ``q``, the current cost bounds ``b``, the
current resolution ``r`` and its precision factor ``alpha_r``, pruning decides
which of three things happens:

1. some result plan registered at resolution ``<= r`` and within the bounds
   already *approximates* ``p`` (its cost dominates ``alpha_r * c(p)``): ``p``
   is kept as a **candidate for resolution r + 1** -- it might become relevant
   once the resolution is refined -- or discarded if the maximal resolution is
   already reached;
2. otherwise, if ``p``'s cost exceeds the bounds, ``p`` is kept as a
   **candidate for the current resolution** -- it might become relevant once
   the user relaxes the bounds;
3. otherwise ``p`` is **inserted into the result set**, registered at the
   current resolution.

Two deliberate design decisions from Section 4.2 are preserved:

* the new plan is only compared against result plans registered at the current
  resolution *or lower* (never higher), keeping the number of comparisons
  proportional to the result set size at the current resolution;
* result plans that are dominated by the new plan are **not** discarded,
  because they may already serve as sub-plans of previously combined plans.

Following Section 4.3, the cost comparison is restricted to plans producing a
compatible interesting tuple order: a result plan can only approximate the new
plan when it provides at least the same ordering guarantee.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence

from repro.costs.dominance import dominates, within_bounds
from repro.costs.vector import CostVector
from repro.core.index import PlanIndex
from repro.plans.plan import Plan


class PruneOutcome(enum.Enum):
    """What happened to a plan handed to :func:`prune`."""

    #: The plan was inserted into the result plan set.
    INSERTED = "inserted"
    #: An existing result plan approximates it; kept as candidate for ``r + 1``.
    DEFERRED_TO_HIGHER_RESOLUTION = "deferred"
    #: Its cost exceeds the bounds; kept as candidate for the current resolution.
    OUT_OF_BOUNDS = "out_of_bounds"
    #: Approximated at the maximal resolution; the plan is dropped for good.
    DISCARDED = "discarded"

    @property
    def became_result(self) -> bool:
        return self is PruneOutcome.INSERTED

    @property
    def became_candidate(self) -> bool:
        return self in (
            PruneOutcome.DEFERRED_TO_HIGHER_RESOLUTION,
            PruneOutcome.OUT_OF_BOUNDS,
        )


def order_covers(provider: Plan, consumer: Plan) -> bool:
    """Whether ``provider`` offers at least the ordering guarantee of ``consumer``.

    A plan without an interesting order is covered by any plan; a plan with an
    interesting order is only covered by plans producing the same order.  The
    pruning comparison uses this predicate so that plans producing a useful
    tuple order are never pruned by cheaper unordered plans (the multi-objective
    generalization of Selinger's interesting-order rule, Section 4.3).
    """
    if consumer.interesting_order is None:
        return True
    return provider.interesting_order == consumer.interesting_order


def prune(
    result_index: PlanIndex,
    candidate_index: PlanIndex,
    bounds: CostVector,
    resolution: int,
    alpha: float,
    max_resolution: int,
    plan: Plan,
    respect_orders: bool = True,
    witnesses: Optional[Dict[int, Plan]] = None,
) -> PruneOutcome:
    """Apply procedure ``Prune`` to a single plan.

    Parameters
    ----------
    result_index, candidate_index:
        The result plan set ``Res^q`` and candidate plan set ``Cand^q`` of the
        plan's table set.
    bounds:
        Current cost bounds ``b``.
    resolution:
        Current resolution level ``r``.
    alpha:
        The precision factor ``alpha_r`` for the current resolution.
    max_resolution:
        ``r_M``; plans approximated at the maximal resolution are discarded.
    plan:
        The new plan ``p`` to be pruned.
    respect_orders:
        When true (default), only result plans with a compatible interesting
        order may approximate the new plan.
    witnesses:
        Optional cache mapping a plan id to the result plan that approximated
        it in an earlier pruning (its *witness*).  When a deferred candidate is
        re-pruned at the next resolution level, the witness usually still
        approximates it, so the full existence check is skipped.  The cache is
        purely an optimization: its hits satisfy exactly the condition of
        Algorithm 3 line 7.

    Returns
    -------
    PruneOutcome
        What happened to the plan.
    """
    if alpha < 1.0:
        raise ValueError("the precision factor alpha_r must be >= 1")
    return _prune_scaled(
        result_index,
        candidate_index,
        bounds,
        resolution,
        max_resolution,
        plan,
        plan.cost.scaled(alpha),
        respect_orders,
        witnesses,
    )


def prune_all(
    result_index: PlanIndex,
    candidate_index: PlanIndex,
    bounds: CostVector,
    resolution: int,
    alpha: float,
    max_resolution: int,
    plans: Sequence[Plan],
    respect_orders: bool = True,
    witnesses: Optional[Dict[int, Plan]] = None,
) -> List[PruneOutcome]:
    """Apply procedure ``Prune`` to a block of plans of one table set.

    The plans are processed strictly in order, so the outcome sequence is
    identical to calling :func:`prune` once per plan -- a plan inserted early
    in the block can approximate (and thereby defer) a later one.  The batch
    entry point lets callers (seeding, candidate reconsideration and
    fresh-plan generation in :mod:`repro.core.optimizer`) collect plans and
    prune in blocks instead of interleaving generation and pruning; each
    plan's witness search then runs through the batched kernel of the result
    index.

    All plans must belong to the same table set as the given result and
    candidate indexes; returns one :class:`PruneOutcome` per plan, in order.
    """
    if alpha < 1.0:
        raise ValueError("the precision factor alpha_r must be >= 1")
    if not plans:
        return []
    scaled_costs = [plan.cost.scaled(alpha) for plan in plans]
    return [
        _prune_scaled(
            result_index,
            candidate_index,
            bounds,
            resolution,
            max_resolution,
            plan,
            scaled_cost,
            respect_orders,
            witnesses,
        )
        for plan, scaled_cost in zip(plans, scaled_costs)
    ]


def _prune_scaled(
    result_index: PlanIndex,
    candidate_index: PlanIndex,
    bounds: CostVector,
    resolution: int,
    max_resolution: int,
    plan: Plan,
    scaled_cost: CostVector,
    respect_orders: bool,
    witnesses: Optional[Dict[int, Plan]],
) -> PruneOutcome:
    """Prune one plan whose ``alpha_r``-scaled cost is already computed."""
    witness: Optional[Plan] = None
    if witnesses is not None:
        cached = witnesses.get(plan.plan_id)
        if (
            cached is not None
            and cached in result_index
            and result_index.resolution_of(cached) <= resolution
            and (not respect_orders or order_covers(cached, plan))
            and dominates(cached.cost, bounds)
            and dominates(cached.cost, scaled_cost)
        ):
            witness = cached
    if witness is None:
        if respect_orders and plan.interesting_order is not None:
            # Only plans producing the same tuple order may approximate this one.
            order_filter = lambda other: order_covers(other, plan)
        else:
            # A plan without ordering requirements is coverable by any plan.
            order_filter = None
        witness = result_index.find_dominating(
            target=scaled_cost,
            bounds=bounds,
            max_resolution=resolution,
            order_filter=order_filter,
        )
    if witness is not None:
        if witnesses is not None:
            witnesses[plan.plan_id] = witness
        if resolution < max_resolution:
            candidate_index.insert(plan, resolution + 1)
            return PruneOutcome.DEFERRED_TO_HIGHER_RESOLUTION
        if witnesses is not None:
            witnesses.pop(plan.plan_id, None)
        return PruneOutcome.DISCARDED
    if not within_bounds(plan.cost, bounds):
        candidate_index.insert(plan, resolution)
        return PruneOutcome.OUT_OF_BOUNDS
    result_index.insert(plan, resolution)
    if witnesses is not None:
        witnesses.pop(plan.plan_id, None)
    return PruneOutcome.INSERTED
