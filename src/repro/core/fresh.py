"""Freshness bookkeeping: ``IsFresh`` and the Δ-set pair enumeration.

Function ``Fresh`` (Algorithm 3) combines result plans of two table subsets but
must only produce *fresh* plans -- combinations of sub-plans that were never
generated in any prior optimizer invocation.  Two mechanisms cooperate:

* the **Δ-sets**: when the invocation series only tightens bounds while the
  resolution is refined, all previously existing result plans respecting the
  current bounds have already been combined with each other, so only pairs
  involving at least one plan *inserted during the current invocation* need to
  be enumerated:  ``ΔP1 × (P2 \\ ΔP2)  ∪  (P1 \\ ΔP1) × ΔP2  ∪  ΔP1 × ΔP2``.
  Otherwise ``ΔS = S`` and all pairs are enumerated.
* the **IsFresh predicate**, backed by a hash table of already-combined
  sub-plan signatures, which guarantees that no pair/operator combination is
  ever materialized twice even when the Δ-sets degenerate to full sets.

The registry counts its hits and misses; Lemma 6 ("each sub-plan pair is
generated at most once") is checked against those counters by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.plans.operators import JoinOperator
from repro.plans.plan import Plan, plan_signature


@dataclass
class FreshnessCounters:
    """Statistics of the freshness registry."""

    #: Pair/operator combinations seen for the first time.
    fresh_combinations: int = 0
    #: Pair/operator combinations rejected because they were seen before.
    repeated_combinations: int = 0

    @property
    def total_checks(self) -> int:
        return self.fresh_combinations + self.repeated_combinations


class FreshnessRegistry:
    """Hash-table implementation of the ``IsFresh`` predicate.

    Signatures are *integer triples* ``(min_id, max_id, operator_key)``: plan
    ids are the arena ids of the operands (canonicalized so ``(p1, p2)`` and
    ``(p2, p1)`` coincide) and ``operator_key`` is a small integer the
    registry interns per distinct ``(algorithm, parallelism)`` operator
    variant.  The object-level API (:meth:`register`) and the id-level hot
    path (:meth:`register_ids`) share one signature set, so they are
    interchangeable.
    """

    def __init__(self) -> None:
        self._seen: Set[Tuple[int, int, int]] = set()
        self._operator_keys: dict = {}
        self.counters = FreshnessCounters()

    def __len__(self) -> int:
        return len(self._seen)

    def operator_key(self, operator: JoinOperator) -> int:
        """The interned integer key of a join operator variant."""
        variant = (operator.algorithm, operator.parallelism)
        key = self._operator_keys.get(variant)
        if key is None:
            key = len(self._operator_keys)
            self._operator_keys[variant] = key
        return key

    def is_fresh(self, left: Plan, right: Plan, operator: JoinOperator) -> bool:
        """Whether the combination has not been registered yet (no side effect)."""
        return (
            self._signature(left.plan_id, right.plan_id, self.operator_key(operator))
            not in self._seen
        )

    def register(self, left: Plan, right: Plan, operator: JoinOperator) -> bool:
        """Register the combination; return whether it was fresh.

        This is the operation used by the optimizer: check and mark in one
        step, so a combination can never be reported fresh twice.
        """
        return self.register_ids(
            left.plan_id, right.plan_id, self.operator_key(operator)
        )

    def register_ids(self, left_id: int, right_id: int, operator_key: int) -> bool:
        """Id-level :meth:`register`: check and mark one integer triple."""
        signature = self._signature(left_id, right_id, operator_key)
        if signature in self._seen:
            self.counters.repeated_combinations += 1
            return False
        self._seen.add(signature)
        self.counters.fresh_combinations += 1
        return True

    @staticmethod
    def _signature(left_id: int, right_id: int, operator_key: int) -> Tuple[int, int, int]:
        if left_id <= right_id:
            return (left_id, right_id, operator_key)
        return (right_id, left_id, operator_key)

    def clear(self) -> None:
        """Forget all registered combinations (used only by tests)."""
        self._seen.clear()
        self._operator_keys.clear()
        self.counters = FreshnessCounters()


def fresh_pairs(
    left_plans: Sequence[Plan],
    right_plans: Sequence[Plan],
    left_delta: Optional[Sequence[Plan]] = None,
    right_delta: Optional[Sequence[Plan]] = None,
) -> Iterator[Tuple[Plan, Plan]]:
    """Enumerate the sub-plan pairs that may yield fresh combinations.

    ``left_plans`` / ``right_plans`` are the bound- and resolution-filtered
    result plans ``P1`` and ``P2``; ``left_delta`` / ``right_delta`` are the
    subsets ``ΔP1`` / ``ΔP2`` of plans inserted during the current invocation.
    Passing ``None`` for a delta means "Δ-set unknown, use the full set"
    (the conservative choice described in Section 4.2).

    The enumeration short-circuits when either operand set is empty, matching
    the paper's remark that each cross product first checks operand emptiness.
    """
    if not left_plans or not right_plans:
        return
    if left_delta is None or right_delta is None:
        for left in left_plans:
            for right in right_plans:
                yield left, right
        return
    left_delta_ids = {plan.plan_id for plan in left_delta}
    right_delta_ids = {plan.plan_id for plan in right_delta}
    left_old = [plan for plan in left_plans if plan.plan_id not in left_delta_ids]
    right_old = [plan for plan in right_plans if plan.plan_id not in right_delta_ids]
    left_new = [plan for plan in left_plans if plan.plan_id in left_delta_ids]
    right_new = [plan for plan in right_plans if plan.plan_id in right_delta_ids]
    # ΔP1 × (P2 \ ΔP2)
    for left in left_new:
        for right in right_old:
            yield left, right
    # (P1 \ ΔP1) × ΔP2
    for left in left_old:
        for right in right_new:
            yield left, right
    # ΔP1 × ΔP2
    for left in left_new:
        for right in right_new:
            yield left, right


def fresh_id_pairs(
    left_ids: Sequence[int],
    right_ids: Sequence[int],
    left_delta: Optional[Sequence[int]] = None,
    right_delta: Optional[Sequence[int]] = None,
) -> Iterator[Tuple[int, int]]:
    """Id-level :func:`fresh_pairs`: the optimizer's arena hot path.

    Identical enumeration order (Δ-new × old, old × Δ-new, Δ-new × Δ-new; or
    the full cross product when a delta is unknown), but over plain plan ids,
    so the Δ-set membership tests are integer set lookups.
    """
    if not left_ids or not right_ids:
        return
    if left_delta is None or right_delta is None:
        for left_id in left_ids:
            for right_id in right_ids:
                yield left_id, right_id
        return
    left_delta_ids = set(left_delta)
    right_delta_ids = set(right_delta)
    left_old = [i for i in left_ids if i not in left_delta_ids]
    right_old = [i for i in right_ids if i not in right_delta_ids]
    left_new = [i for i in left_ids if i in left_delta_ids]
    right_new = [i for i in right_ids if i in right_delta_ids]
    for left_id in left_new:
        for right_id in right_old:
            yield left_id, right_id
    for left_id in left_old:
        for right_id in right_new:
            yield left_id, right_id
    for left_id in left_new:
        for right_id in right_new:
            yield left_id, right_id
