"""Freshness bookkeeping: ``IsFresh`` and the Δ-set pair enumeration.

Function ``Fresh`` (Algorithm 3) combines result plans of two table subsets but
must only produce *fresh* plans -- combinations of sub-plans that were never
generated in any prior optimizer invocation.  Two mechanisms cooperate:

* the **Δ-sets**: when the invocation series only tightens bounds while the
  resolution is refined, all previously existing result plans respecting the
  current bounds have already been combined with each other, so only pairs
  involving at least one plan *inserted during the current invocation* need to
  be enumerated:  ``ΔP1 × (P2 \\ ΔP2)  ∪  (P1 \\ ΔP1) × ΔP2  ∪  ΔP1 × ΔP2``.
  Otherwise ``ΔS = S`` and all pairs are enumerated.
* the **IsFresh predicate**, backed by a hash table of already-combined
  sub-plan signatures, which guarantees that no pair/operator combination is
  ever materialized twice even when the Δ-sets degenerate to full sets.

The registry counts its hits and misses; Lemma 6 ("each sub-plan pair is
generated at most once") is checked against those counters by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.plans.operators import JoinOperator
from repro.plans.plan import Plan, plan_signature


@dataclass
class FreshnessCounters:
    """Statistics of the freshness registry."""

    #: Pair/operator combinations seen for the first time.
    fresh_combinations: int = 0
    #: Pair/operator combinations rejected because they were seen before.
    repeated_combinations: int = 0

    @property
    def total_checks(self) -> int:
        return self.fresh_combinations + self.repeated_combinations


class FreshnessRegistry:
    """Hash-table implementation of the ``IsFresh`` predicate."""

    def __init__(self) -> None:
        self._seen: Set[Tuple[int, int, str, int]] = set()
        self.counters = FreshnessCounters()

    def __len__(self) -> int:
        return len(self._seen)

    def is_fresh(self, left: Plan, right: Plan, operator: JoinOperator) -> bool:
        """Whether the combination has not been registered yet (no side effect)."""
        return plan_signature(left, right, operator) not in self._seen

    def register(self, left: Plan, right: Plan, operator: JoinOperator) -> bool:
        """Register the combination; return whether it was fresh.

        This is the operation used by the optimizer: check and mark in one
        step, so a combination can never be reported fresh twice.
        """
        signature = plan_signature(left, right, operator)
        if signature in self._seen:
            self.counters.repeated_combinations += 1
            return False
        self._seen.add(signature)
        self.counters.fresh_combinations += 1
        return True

    def clear(self) -> None:
        """Forget all registered combinations (used only by tests)."""
        self._seen.clear()
        self.counters = FreshnessCounters()


def fresh_pairs(
    left_plans: Sequence[Plan],
    right_plans: Sequence[Plan],
    left_delta: Optional[Sequence[Plan]] = None,
    right_delta: Optional[Sequence[Plan]] = None,
) -> Iterator[Tuple[Plan, Plan]]:
    """Enumerate the sub-plan pairs that may yield fresh combinations.

    ``left_plans`` / ``right_plans`` are the bound- and resolution-filtered
    result plans ``P1`` and ``P2``; ``left_delta`` / ``right_delta`` are the
    subsets ``ΔP1`` / ``ΔP2`` of plans inserted during the current invocation.
    Passing ``None`` for a delta means "Δ-set unknown, use the full set"
    (the conservative choice described in Section 4.2).

    The enumeration short-circuits when either operand set is empty, matching
    the paper's remark that each cross product first checks operand emptiness.
    """
    if not left_plans or not right_plans:
        return
    if left_delta is None or right_delta is None:
        for left in left_plans:
            for right in right_plans:
                yield left, right
        return
    left_delta_ids = {plan.plan_id for plan in left_delta}
    right_delta_ids = {plan.plan_id for plan in right_delta}
    left_old = [plan for plan in left_plans if plan.plan_id not in left_delta_ids]
    right_old = [plan for plan in right_plans if plan.plan_id not in right_delta_ids]
    left_new = [plan for plan in left_plans if plan.plan_id in left_delta_ids]
    right_new = [plan for plan in right_plans if plan.plan_id in right_delta_ids]
    # ΔP1 × (P2 \ ΔP2)
    for left in left_new:
        for right in right_old:
            yield left, right
    # (P1 \ ΔP1) × ΔP2
    for left in left_old:
        for right in right_new:
            yield left, right
    # ΔP1 × ΔP2
    for left in left_new:
        for right in right_new:
            yield left, right
