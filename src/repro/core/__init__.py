"""IAMA: the Incremental Anytime Multi-objective query optimization Algorithm.

This package implements the paper's contribution:

* :mod:`repro.core.resolution` -- resolution levels and the precision factors
  ``alpha_r`` (Section 4.1 / 6.1: ``alpha_r = alpha_T + alpha_S * (r_M - r) / r_M``),
* :mod:`repro.core.index` -- the plan index supporting range queries over
  (cost vector, resolution level), the paper's "cell data structure" role,
* :mod:`repro.core.pruning` -- procedure ``Prune`` (Algorithm 3),
* :mod:`repro.core.fresh` -- the ``IsFresh`` registry and the Δ-set pair
  generation of function ``Fresh`` (Algorithm 3),
* :mod:`repro.core.state` -- the per-query result/candidate plan sets and
  bookkeeping counters that persist across optimizer invocations,
* :mod:`repro.core.optimizer` -- procedure ``Optimize`` (Algorithm 2),
* :mod:`repro.core.control` -- the main control loop (Algorithm 1) and its
  interactive, anytime driver.
"""

from repro.core.resolution import ResolutionSchedule
from repro.core.index import PlanIndex, IndexedPlan
from repro.core.pruning import PruneOutcome, prune
from repro.core.fresh import FreshnessRegistry, fresh_pairs
from repro.core.state import OptimizerState, OptimizerCounters
from repro.core.optimizer import IncrementalOptimizer, InvocationReport
from repro.core.control import (
    AnytimeMOQO,
    InvocationResult,
    FrontierPoint,
    UserAction,
    ChangeBounds,
    SelectPlan,
    Continue,
)

__all__ = [
    "ResolutionSchedule",
    "PlanIndex",
    "IndexedPlan",
    "PruneOutcome",
    "prune",
    "FreshnessRegistry",
    "fresh_pairs",
    "OptimizerState",
    "OptimizerCounters",
    "IncrementalOptimizer",
    "InvocationReport",
    "AnytimeMOQO",
    "InvocationResult",
    "FrontierPoint",
    "UserAction",
    "ChangeBounds",
    "SelectPlan",
    "Continue",
]
