"""The main control loop (Algorithm 1) and its interactive driver.

Algorithm 1 alternates between optimizer invocations and user interaction:

1. invoke the incremental optimizer for the current bounds ``b`` and
   resolution ``r``,
2. visualize the cost of the completed query plans in ``Res^Q[0..b, 0..r]``,
3. process user input: when the user changed the bounds, adopt them and reset
   the resolution to 0; otherwise refine the resolution
   (``r <- min(r_M, r + 1)``); when the user selects a plan, stop and return it.

:class:`AnytimeMOQO` exposes this loop both as a step-by-step API (``step``)
and as a closed loop driven by a user model (``run``).  The "visualization" is
a callback receiving frontier snapshots -- the interactive package provides
text renderings and series exporters on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from repro.costs.vector import CostVector
from repro.core.optimizer import IncrementalOptimizer, InvocationReport
from repro.core.resolution import ResolutionSchedule
from repro.plans.factory import PlanFactory
from repro.plans.plan import Plan
from repro.plans.query import Query


# ----------------------------------------------------------------------
# User actions
# ----------------------------------------------------------------------
class UserAction:
    """Base class for the actions a user can take after each iteration."""


@dataclass(frozen=True)
class Continue(UserAction):
    """No user input: the control loop refines the resolution."""


@dataclass(frozen=True)
class ChangeBounds(UserAction):
    """The user dragged the cost bounds to a new position."""

    bounds: CostVector


@dataclass(frozen=True)
class SelectPlan(UserAction):
    """The user clicked a cost tradeoff, selecting a plan for execution.

    Either a concrete plan from the visualized frontier or a chooser callable
    that receives the current frontier and returns one of its plans.
    """

    plan: Optional[Plan] = None
    chooser: Optional[Callable[[Sequence[Plan]], Plan]] = None

    def resolve(self, frontier: Sequence[Plan]) -> Optional[Plan]:
        """The plan the user selected, given the currently visualized frontier."""
        if self.plan is not None:
            return self.plan
        if self.chooser is not None and frontier:
            return self.chooser(frontier)
        return None


# ----------------------------------------------------------------------
# Results of one main-loop iteration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FrontierPoint:
    """One visualized cost tradeoff: a completed plan and its cost vector."""

    plan: Plan
    cost: CostVector


@dataclass(frozen=True)
class InvocationResult:
    """Everything produced by one iteration of the main control loop."""

    iteration: int
    resolution: int
    bounds: CostVector
    report: InvocationReport
    frontier: List[FrontierPoint]

    @property
    def frontier_costs(self) -> List[CostVector]:
        return [point.cost for point in self.frontier]

    @property
    def duration_seconds(self) -> float:
        return self.report.duration_seconds


VisualizeCallback = Callable[[InvocationResult], None]


class AnytimeMOQO:
    """Interactive anytime MOQO driver (Algorithm 1).

    Parameters
    ----------
    query:
        The query to optimize.
    factory:
        Plan factory (cost model, cardinality estimator, operators).
    schedule:
        Resolution schedule; its maximal level caps the refinement.
    visualize:
        Optional callback invoked with every :class:`InvocationResult`,
        playing the role of procedure ``Visualize``.
    default_bounds:
        Initial cost bounds; ``None`` means unbounded (all infinities).
    optimizer_options:
        Extra keyword arguments forwarded to
        :class:`~repro.core.optimizer.IncrementalOptimizer`.
    """

    def __init__(
        self,
        query: Query,
        factory: PlanFactory,
        schedule: ResolutionSchedule,
        visualize: Optional[VisualizeCallback] = None,
        default_bounds: Optional[CostVector] = None,
        **optimizer_options,
    ):
        self._optimizer = IncrementalOptimizer(
            query, factory, schedule, **optimizer_options
        )
        self._schedule = schedule
        self._visualize = visualize
        metric_set = factory.metric_set
        self._bounds = (
            default_bounds if default_bounds is not None else metric_set.unbounded_vector()
        )
        self._resolution = 0
        self._iteration = 0
        self._history: List[InvocationResult] = []
        self._selected_plan: Optional[Plan] = None

    # ------------------------------------------------------------------
    @property
    def optimizer(self) -> IncrementalOptimizer:
        return self._optimizer

    @property
    def bounds(self) -> CostVector:
        """The cost bounds that the next iteration will use."""
        return self._bounds

    @property
    def resolution(self) -> int:
        """The resolution level that the next iteration will use."""
        return self._resolution

    @property
    def iteration(self) -> int:
        """Number of completed main-loop iterations."""
        return self._iteration

    @property
    def history(self) -> List[InvocationResult]:
        """All iteration results so far."""
        return list(self._history)

    @property
    def selected_plan(self) -> Optional[Plan]:
        """The plan the user selected, if any."""
        return self._selected_plan

    @property
    def at_max_resolution(self) -> bool:
        """Whether the next iteration already runs at the maximal resolution."""
        return self._resolution >= self._schedule.max_resolution

    # ------------------------------------------------------------------
    def step(self, action: Optional[UserAction] = None) -> InvocationResult:
        """Run one iteration of the main control loop.

        The optimizer is invoked with the current bounds and resolution, the
        frontier is visualized, and then the user ``action`` (defaulting to
        :class:`Continue`) determines the bounds and resolution of the *next*
        iteration, exactly as in Algorithm 1 lines 12-25.
        """
        result = self._invoke()
        self._apply_action(action or Continue(), result)
        return result

    def run(
        self,
        user: Optional[Callable[[InvocationResult], UserAction]] = None,
        max_iterations: Optional[int] = None,
    ) -> Optional[Plan]:
        """Run the control loop until the user selects a plan.

        ``user`` is called after every iteration with the iteration result and
        returns a :class:`UserAction`; ``None`` behaves like a user that never
        interacts.  Without a plan selection the loop ends after
        ``max_iterations`` iterations (or after one full resolution sweep when
        ``max_iterations`` is ``None``) and returns ``None``.
        """
        if max_iterations is None:
            max_iterations = self._schedule.levels
        for _ in range(max_iterations):
            result = self._invoke()
            action = user(result) if user is not None else Continue()
            if isinstance(action, SelectPlan):
                selected = action.resolve([p.plan for p in result.frontier])
                self._selected_plan = selected
                return selected
            self._apply_action(action, result)
        return None

    def run_resolution_sweep(self) -> List[InvocationResult]:
        """Run one invocation per resolution level without user interaction.

        This is the workload of the paper's experiments (Section 6.1 evaluates
        "a scenario without user interaction ... the cost bounds are initially
        fixed to infinity"): the resolution climbs from 0 to ``r_M``, producing
        ``r_M + 1`` invocations.
        """
        results: List[InvocationResult] = []
        for _ in range(self._schedule.levels):
            results.append(self.step(Continue()))
        return results

    # ------------------------------------------------------------------
    def _invoke(self) -> InvocationResult:
        report = self._optimizer.optimize(self._bounds, self._resolution)
        frontier_plans = self._optimizer.frontier(self._bounds, self._resolution)
        frontier = [FrontierPoint(plan=p, cost=p.cost) for p in frontier_plans]
        self._iteration += 1
        result = InvocationResult(
            iteration=self._iteration,
            resolution=self._resolution,
            bounds=self._bounds,
            report=report,
            frontier=frontier,
        )
        self._history.append(result)
        if self._visualize is not None:
            self._visualize(result)
        return result

    def _apply_action(self, action: UserAction, result: InvocationResult) -> None:
        if isinstance(action, SelectPlan):
            self._selected_plan = action.resolve([p.plan for p in result.frontier])
            return
        if isinstance(action, ChangeBounds):
            self._bounds = action.bounds
            self._resolution = 0
            return
        self._resolution = self._schedule.next_resolution(self._resolution)
