"""Resolution levels and precision factors.

The anytime behaviour of IAMA comes from a fixed, finite set of *resolution
levels* ``{0, ..., r_M}`` (Section 4.1).  Each level ``r`` maps to a precision
factor ``alpha_r`` used by the pruning procedure; the factors must satisfy
``alpha_r > 1`` and ``alpha_r > alpha_{r+1}`` -- higher resolution means finer
approximation.  The experimental section fixes the factors with the formula

    ``alpha_r = alpha_T + alpha_S * (r_M - r) / r_M``

where ``alpha_T`` is the target precision (the factor used at the maximal
resolution) and ``alpha_S`` is the precision step (Section 6.1, e.g.
``alpha_T = 1.01`` and ``alpha_S = 0.05``).  For a single resolution level
(``r_M = 0``) the formula degenerates to ``alpha_0 = alpha_T``.

Theorem 2 shows that optimizing an ``n``-table query at resolution ``r`` yields
an ``alpha_r ** n``-approximate Pareto plan set, so
:meth:`ResolutionSchedule.guaranteed_precision` exposes that bound (e.g.
``1.01 ** 8 ≈ 1.08`` for TPC-H as quoted in Section 6.2).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence


class ResolutionSchedule:
    """The mapping from resolution levels to precision factors ``alpha_r``.

    Parameters
    ----------
    levels:
        Number of resolution levels (``r_M + 1``); must be at least 1.
    target_precision:
        ``alpha_T``, the factor used at the maximal resolution; must be > 1.
    precision_step:
        ``alpha_S``; must be >= 0.  With ``alpha_S = 0`` all levels share the
        target precision, which effectively disables the anytime refinement.
    """

    def __init__(
        self,
        levels: int,
        target_precision: float = 1.01,
        precision_step: float = 0.05,
    ):
        if levels < 1:
            raise ValueError("there must be at least one resolution level")
        if target_precision <= 1.0:
            raise ValueError("target_precision (alpha_T) must be greater than 1")
        if precision_step < 0.0:
            raise ValueError("precision_step (alpha_S) must be non-negative")
        self._levels = int(levels)
        self._alpha_target = float(target_precision)
        self._alpha_step = float(precision_step)

    # ------------------------------------------------------------------
    @classmethod
    def from_factors(cls, factors: Sequence[float]) -> "ResolutionSchedule":
        """Build a schedule from an explicit, strictly decreasing factor list.

        Provided for experiments with hand-tuned precision sequences (the paper
        conjectures that "a more optimized sequence of precision factors" could
        further improve the maximal invocation time).
        """
        if not factors:
            raise ValueError("factor list must be non-empty")
        if any(f <= 1.0 for f in factors):
            raise ValueError("all precision factors must be greater than 1")
        for earlier, later in zip(factors, factors[1:]):
            if later >= earlier:
                raise ValueError(
                    "precision factors must be strictly decreasing with resolution"
                )
        schedule = cls(
            levels=len(factors),
            target_precision=factors[-1],
            precision_step=(factors[0] - factors[-1]),
        )
        schedule._explicit_factors = list(factors)  # type: ignore[attr-defined]
        return schedule

    # ------------------------------------------------------------------
    @property
    def levels(self) -> int:
        """Number of resolution levels (``r_M + 1``)."""
        return self._levels

    @property
    def max_resolution(self) -> int:
        """The maximal resolution level ``r_M``."""
        return self._levels - 1

    @property
    def target_precision(self) -> float:
        """``alpha_T`` -- the precision factor at the maximal resolution."""
        return self._alpha_target

    @property
    def precision_step(self) -> float:
        """``alpha_S`` -- the spread between coarsest and finest factor."""
        return self._alpha_step

    # ------------------------------------------------------------------
    def alpha(self, resolution: int) -> float:
        """The precision factor ``alpha_r`` for the given resolution level."""
        self._check_resolution(resolution)
        explicit = getattr(self, "_explicit_factors", None)
        if explicit is not None:
            return explicit[resolution]
        if self.max_resolution == 0:
            return self._alpha_target
        remaining = (self.max_resolution - resolution) / self.max_resolution
        return self._alpha_target + self._alpha_step * remaining

    def factors(self) -> List[float]:
        """All precision factors, from resolution 0 to ``r_M``."""
        return [self.alpha(r) for r in range(self._levels)]

    def resolutions(self) -> Iterator[int]:
        """Iterate over all resolution levels in increasing order."""
        return iter(range(self._levels))

    def next_resolution(self, resolution: int) -> int:
        """The resolution used by the next main-loop iteration.

        Mirrors line 23 of Algorithm 1: ``r <- min(r_M, r + 1)``.
        """
        self._check_resolution(resolution)
        return min(self.max_resolution, resolution + 1)

    def guaranteed_precision(self, table_count: int, resolution: int = None) -> float:
        """Worst-case approximation factor of the result plan set.

        By Theorem 2, optimizing an ``n``-table query at resolution ``r``
        guarantees an ``alpha_r ** n``-approximate (bounded) Pareto plan set.
        With the default ``resolution=None`` the maximal resolution is used,
        giving the final guarantee quoted in Section 6.2.
        """
        if table_count < 1:
            raise ValueError("table_count must be at least 1")
        if resolution is None:
            resolution = self.max_resolution
        return self.alpha(resolution) ** table_count

    # ------------------------------------------------------------------
    def _check_resolution(self, resolution: int) -> None:
        if not 0 <= resolution <= self.max_resolution:
            raise ValueError(
                f"resolution {resolution} outside the valid range "
                f"0..{self.max_resolution}"
            )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ResolutionSchedule(levels={self._levels}, "
            f"target_precision={self._alpha_target}, "
            f"precision_step={self._alpha_step})"
        )
