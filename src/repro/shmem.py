"""Zero-copy shared-memory column vectors for cross-process arenas.

:class:`ShmVector` is a growable ``array``-alike whose payload lives in a
named ``multiprocessing.shared_memory`` segment instead of process-private
heap memory.  The plan arena uses it (behind ``arena_mode="shm"``, see
:mod:`repro.plans.arena`) for its cost and id columns, which makes a parked
session's bulk state *addressable by name*: pickling a shared vector encodes
``(segment name, typecode, length)`` — a few dozen bytes — and unpickling in
another process attaches to the very same pages.  Migrating a parked session
across worker shards therefore serializes no column data at all.

The vector keeps the subset of the ``array`` API the cost-matrix and kernel
layers actually use: ``append``/``extend``/``__len__``/``__getitem__``/
``__setitem__``/iteration/``tolist``, plus the two duck-typing hooks the
kernel backends look for — ``buffer_info()`` (raw address + length, consumed
by the native backend) and ``memory()`` (a memoryview of the used prefix,
consumed by ``numpy.frombuffer``; pure-Python loops from the buffer protocol
cannot be implemented on a plain class, which is why the numpy backend
duck-types instead of calling ``frombuffer(col)`` directly).

Lifecycle.  POSIX shared memory is kernel-persistent: a segment outlives the
process unless somebody unlinks it.  Ownership is explicit — the creating
vector owns its segment and unlinks it on :meth:`release` (with a
``weakref.finalize`` backstop so a dropped arena cannot leak ``/dev/shm``
entries), attached vectors only close their mapping.  :meth:`disown` /
:meth:`adopt` transfer that responsibility across a migration: the exporting
process disowns before handing the segment name over, the importer adopts.

The stdlib ``resource_tracker`` registers a segment name on every create and
attach, and its exit sweep unlinks whatever is still registered — which is
exactly wrong for a process that merely *attached* to (or disowned) a
segment now owned elsewhere.  This module therefore keeps each process's
tracker registration aligned with *ownership*: the owner's single eventual
``unlink()`` balances its registration, ``disown``/``adopt`` move the
registration between the two processes of a migration, and a non-owning
process drops its attach-time registration when its mapping dies.  The
tracker's exit sweep then remains what it should be: a last-resort cleanup
for segments whose owner crashed.
"""

from __future__ import annotations

import ctypes
import os
import secrets
import weakref
from array import array
from multiprocessing import resource_tracker, shared_memory
from typing import Iterator, Sequence, Set, Tuple

#: Prefix of every segment this module creates; the CI leak check greps
#: ``/dev/shm`` for it after the service test suites.
SEGMENT_PREFIX = "repro_shm_"

#: Minimum segment capacity, in elements.  Small enough that empty columns
#: stay cheap, large enough that the doubling growth schedule settles fast.
MIN_CAPACITY = 256

_TYPECODES = ("d", "b", "q")


def _new_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid():x}_{secrets.token_hex(6)}"


# Segment names this *process* currently owns (create or adopt).  The stdlib
# resource tracker registers a name on every create and attach, but only the
# owner's eventual unlink() unregisters it — so this set is what lets the
# non-owning side drop its registration without erasing a same-process
# owner's entry.  Pid-guarded: a forked child inherits the parent's vectors
# but owns none of them.
_OWNED: Set[str] = set()
_OWNED_PID = os.getpid()


def _owned() -> Set[str]:
    global _OWNED, _OWNED_PID
    pid = os.getpid()
    if pid != _OWNED_PID:  # pragma: no cover - fork-inheritance guard
        _OWNED = set()
        _OWNED_PID = pid
    return _OWNED


def _tracker_register(name: str) -> None:
    try:
        resource_tracker.register(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by platform
        pass


def _tracker_unregister(name: str) -> None:
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by platform
        pass


def _segment_exists(name: str) -> bool:
    """Whether the named segment is still linked (POSIX: a /dev/shm entry).

    Non-owner cleanup consults this before unregistering: if the owner (in
    this same process) already unlinked the segment, its unlink performed the
    tracker unregister too, and a second one would make the tracker process
    log a KeyError.
    """
    return os.path.exists(f"/dev/shm/{name}")


def _finalize_mapping(
    view: memoryview, shm: shared_memory.SharedMemory, owner: bool, pid: int
) -> None:
    """GC backstop for a vector dropped without :meth:`ShmVector.release`.

    Releasing the exported view before closing is mandatory — otherwise
    ``SharedMemory.close`` (and its ``__del__``) raises ``BufferError`` at
    interpreter shutdown.  The unlink is pid-guarded so a forked child
    collecting inherited vector objects can never unlink segments its parent
    still uses (closing the child's own mapping is always safe).
    """
    view.release()
    shm.close()
    if owner:
        if os.getpid() == pid:
            _owned().discard(shm.name)
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
    elif shm.name not in _owned() and _segment_exists(shm.name):
        # A non-owning attach in a process that owns nothing of this segment:
        # drop this process's tracker registration so its exit sweep cannot
        # unlink a segment that is owned (and still in use) elsewhere.
        _tracker_unregister(shm.name)


class ShmVector:
    """A growable typed vector backed by a named shared-memory segment."""

    __slots__ = (
        "typecode",
        "itemsize",
        "_shm",
        "_view",
        "_address",
        "_length",
        "_owner",
        "_finalizer",
        "__weakref__",
    )

    def __init__(self, typecode: str, values: Sequence = ()):
        if typecode not in _TYPECODES:
            raise ValueError(
                f"unsupported shared-memory typecode {typecode!r}; "
                f"expected one of {_TYPECODES}"
            )
        self.typecode = typecode
        self.itemsize = array(typecode).itemsize
        self._length = 0
        self._attach_segment(
            shared_memory.SharedMemory(
                create=True, size=MIN_CAPACITY * self.itemsize, name=_new_name()
            ),
            owner=True,
        )
        if values:
            self.extend(values)

    # ------------------------------------------------------------------
    # Segment plumbing
    # ------------------------------------------------------------------
    def _attach_segment(
        self, shm: shared_memory.SharedMemory, owner: bool
    ) -> None:
        self._shm = shm
        self._view = memoryview(shm.buf).cast(self.typecode)
        # Raw base address for the native kernel's pointer-passing calls.
        # The transient c_char releases its buffer export immediately, so
        # close() stays possible later.
        self._address = ctypes.addressof(ctypes.c_char.from_buffer(shm.buf))
        self._owner = owner
        if owner:
            _owned().add(shm.name)
        self._finalizer = weakref.finalize(
            self, _finalize_mapping, self._view, shm, owner, os.getpid()
        )

    @classmethod
    def _attach(cls, name: str, typecode: str, length: int) -> "ShmVector":
        """Rebuild (attach, not copy) from a pickled ``(name, tc, len)``."""
        vector = cls.__new__(cls)
        vector.typecode = typecode
        vector.itemsize = array(typecode).itemsize
        vector._length = length
        vector._attach_segment(
            shared_memory.SharedMemory(name=name), owner=False
        )
        return vector

    def __reduce__(self):
        return (ShmVector._attach, (self.name, self.typecode, self._length))

    @property
    def name(self) -> str:
        """The segment name (the cross-process address of the payload)."""
        return self._shm.name

    @property
    def is_owner(self) -> bool:
        return self._owner

    @property
    def allocated_bytes(self) -> int:
        """Exact size of the backing segment (page-rounded by the kernel)."""
        return self._shm.size

    @property
    def capacity(self) -> int:
        return self._shm.size // self.itemsize

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def _reserve(self, elements: int) -> None:
        if elements <= self.capacity:
            return
        target = max(elements, self.capacity * 2)
        fresh = shared_memory.SharedMemory(
            create=True, size=target * self.itemsize, name=_new_name()
        )
        used = self._length * self.itemsize
        fresh.buf[:used] = self._shm.buf[:used]
        was_owner = self._owner
        self._release_segment(unlink=was_owner)
        # A grown segment is always owned here: growing an attached vector
        # forks its storage away from the original segment by design.
        self._attach_segment(fresh, owner=True)

    def _release_segment(self, unlink: bool) -> None:
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        name = self._shm.name
        self._view.release()
        self._shm.close()
        if unlink:
            _owned().discard(name)
            self._shm.unlink()
        elif name not in _owned() and _segment_exists(name):
            _tracker_unregister(name)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def release(self) -> None:
        """Close the mapping; unlink the segment if this vector owns it.

        Idempotent.  After release the vector is unusable.
        """
        if self._shm is None:
            return
        self._release_segment(unlink=self._owner)
        self._shm = None
        self._view = None
        self._owner = False

    def _set_owner(self, owner: bool) -> None:
        if self._finalizer is not None:
            self._finalizer.detach()
        self._owner = owner
        self._finalizer = weakref.finalize(
            self, _finalize_mapping, self._view, self._shm, owner, os.getpid()
        )

    def disown(self) -> None:
        """Stop owning the segment (the importing process will adopt it).

        Drops this process's resource-tracker registration along with unlink
        responsibility: after a migration the exporting shard may exit long
        before the importer is done, and its tracker's exit sweep must not
        unlink segments the importer now owns.
        """
        if not self._owner:
            return
        _owned().discard(self.name)
        _tracker_unregister(self.name)
        self._set_owner(False)

    def adopt(self) -> None:
        """Take ownership of an attached segment (completes a migration)."""
        if self._owner:
            return
        _tracker_register(self.name)
        _owned().add(self.name)
        self._set_owner(True)

    # ------------------------------------------------------------------
    # array-alike surface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int):
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("shm vector index out of range")
        return self._view[index]

    def __setitem__(self, index: int, value) -> None:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("shm vector assignment index out of range")
        self._view[index] = value

    def __iter__(self) -> Iterator:
        view = self._view
        for i in range(self._length):
            yield view[i]

    def append(self, value) -> None:
        self._reserve(self._length + 1)
        self._view[self._length] = value
        self._length += 1

    def extend(self, values) -> None:
        if isinstance(values, array) and values.typecode == self.typecode:
            data = values
        else:
            data = array(self.typecode, values)
        count = len(data)
        if not count:
            return
        self._reserve(self._length + count)
        self._view[self._length : self._length + count] = memoryview(data)
        self._length += count

    def tolist(self) -> list:
        return self._view[: self._length].tolist()

    def buffer_info(self) -> Tuple[int, int]:
        """(base address, element count) — the native kernel's pointer hook."""
        return (self._address, self._length)

    def memory(self) -> memoryview:
        """Memoryview of the used prefix — the numpy backend's buffer hook."""
        return self._view[: self._length]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ShmVector({self.typecode!r}, len={self._length}, "
            f"segment={self.name!r}, owner={self._owner})"
        )


class ShmStorage:
    """Column factory selecting shared-memory storage for a cost matrix."""

    def vector(self, typecode: str, values: Sequence = ()) -> ShmVector:
        return ShmVector(typecode, values)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "ShmStorage()"


def active_segments() -> Tuple[str, ...]:
    """Names of this module's segments currently present in ``/dev/shm``.

    Best-effort (POSIX only); the CI leak check uses it to prove the service
    suites release every arena segment they created.
    """
    root = "/dev/shm"
    try:
        entries = os.listdir(root)
    except OSError:  # pragma: no cover - non-POSIX platform
        return ()
    return tuple(sorted(e for e in entries if e.startswith(SEGMENT_PREFIX)))
