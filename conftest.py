"""Repository-wide pytest configuration: the tier marker taxonomy.

Every collected test carries exactly one *tier* marker:

* ``tier1``  — fast unit/integration tests (the default for ``tests/``),
* ``slow``   — correct but heavy tests (multi-process, long property runs);
  opt in per-module/test with ``pytest.mark.slow``,
* ``bench``  — figure/table-regenerating benchmark targets (the default for
  ``benchmarks/``).

Modules and tests are auto-marked by location; an explicit marker overrides
the location default.  Collection fails loudly if a test ends up with zero or
multiple tier markers, so the taxonomy cannot silently rot as the suite
grows.  The markers never deselect anything by default — the canonical
verify command (``pytest -x -q``) still runs the full suite; use ``-m`` for
targeted lanes, e.g. ``pytest -m "tier1"`` or ``pytest -m "not bench"``.
"""

from __future__ import annotations

import pytest

TIER_MARKERS = ("tier1", "slow", "bench")


def _location_default(item: pytest.Item) -> str:
    path = str(item.path)
    if "/benchmarks/" in path or path.endswith("benchmarks"):
        return "bench"
    return "tier1"


def pytest_collection_modifyitems(config, items):
    for item in items:
        explicit = [name for name in TIER_MARKERS if item.get_closest_marker(name)]
        if not explicit:
            item.add_marker(getattr(pytest.mark, _location_default(item)))
        tiers = [name for name in TIER_MARKERS if item.get_closest_marker(name)]
        if len(tiers) != 1:
            raise pytest.UsageError(
                f"{item.nodeid}: tests must carry exactly one tier marker "
                f"({'/'.join(TIER_MARKERS)}), found {tiers or 'none'}"
            )
