#!/usr/bin/env python3
"""Approximate query processing: trading result precision for execution time.

Example 2 of the paper: "In approximate query processing, there is a tradeoff
between execution time and result precision since sampling can be used to
reduce execution time."  This script optimizes a lineitem-heavy TPC-H block
under the paper's three-metric cost model -- through the unified planner API
-- and then answers questions a user hand-tuning a recurring analytical query
would ask:

* What is the fastest exact plan (no sampling, precision loss 0)?
* How much faster can the query get if 5% / 25% precision loss is acceptable?
* How do those answers change when only a single core may be reserved?

It also contrasts IAMA's frontier against the registry's ``single_objective``
planner, which can only produce one point of the tradeoff space.

Run with:  python examples/approximate_query_processing.py
(Scale via REPRO_BENCH_SCALE=tiny|smoke|paper; default smoke.)
"""

import os

from repro.api import OptimizeRequest, open_session
from repro.costs.pareto import pareto_filter

TINY = os.environ.get("REPRO_BENCH_SCALE", "").strip().lower() == "tiny"
LEVELS = 3 if TINY else 8


def fastest_within(frontier, metric_set, max_precision_loss, max_cores=None):
    """Cheapest execution time among plans meeting the precision/core limits."""
    time_index = metric_set.index_of("execution_time")
    loss_index = metric_set.index_of("precision_loss")
    cores_index = metric_set.index_of("reserved_cores")
    admissible = [
        summary
        for summary in frontier
        if summary.cost[loss_index] <= max_precision_loss + 1e-12
        and (max_cores is None or summary.cost[cores_index] <= max_cores)
    ]
    if not admissible:
        return None
    return min(admissible, key=lambda summary: summary.cost[time_index])


def main() -> None:
    # Multi-objective anytime optimization through the unified API.
    request = OptimizeRequest(
        workload="tpch:q14", algorithm="iama", levels=LEVELS, precision="fine"
    )
    session = open_session(request)
    print(
        f"Approximate query processing on {session.query.name}: "
        f"{sorted(session.query.tables)}\n"
    )
    result = session.run()
    metric_set = session.driver.factory.metric_set
    frontier = result.frontier
    non_dominated = pareto_filter([summary.cost for summary in frontier])
    print(
        f"IAMA explored {result.plans_generated} plans and kept "
        f"{len(frontier)} tradeoffs ({len(non_dominated)} non-dominated).\n"
    )

    time_index = metric_set.index_of("execution_time")
    scenarios = [
        ("exact result", 0.0, None),
        ("5% precision loss allowed", 0.05, None),
        ("25% precision loss allowed", 0.25, None),
        ("25% loss, single core only", 0.25, 1),
    ]
    exact = fastest_within(frontier, metric_set, 0.0)
    print("What sampling buys, according to the Pareto frontier:")
    for label, loss, cores in scenarios:
        best = fastest_within(frontier, metric_set, loss, cores)
        if best is None:
            print(f"  {label:32s}: no qualifying plan")
            continue
        speedup = exact.cost[time_index] / best.cost[time_index] if exact else 1.0
        described = ", ".join(
            f"{name}={value:.3g}" for name, value in metric_set.describe(best.cost).items()
        )
        print(f"  {label:32s}: {described}  ({speedup:.1f}x vs exact)")
        print(f"    {best.render}")

    # Classical single-objective optimization sees only one point; it is just
    # another planner in the registry.
    single = open_session(
        request.with_overrides(algorithm="single_objective", objective="execution_time")
    ).run()
    fastest = single.frontier[0]
    print(
        "\nSingle-objective planner (execution time only) returns a single plan:\n"
        f"  {fastest.render}\n"
        f"  cost: "
        + ", ".join(
            f"{name}={value:.3g}"
            for name, value in metric_set.describe(fastest.cost).items()
        )
    )
    print(
        "\nIt cannot answer 'how much precision do I give up for that speed?' --\n"
        "the Pareto frontier above is exactly that answer."
    )


if __name__ == "__main__":
    main()
