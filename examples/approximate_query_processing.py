#!/usr/bin/env python3
"""Approximate query processing: trading result precision for execution time.

Example 2 of the paper: "In approximate query processing, there is a tradeoff
between execution time and result precision since sampling can be used to
reduce execution time."  This script optimizes a lineitem-heavy TPC-H block
under the paper's three-metric cost model and then answers questions a user
hand-tuning a recurring analytical query would ask:

* What is the fastest exact plan (no sampling, precision loss 0)?
* How much faster can the query get if 5% / 25% precision loss is acceptable?
* How do those answers change when only a single core may be reserved?

It also contrasts IAMA's frontier against classical single-objective
optimization, which can only produce one point of the tradeoff space.

Run with:  python examples/approximate_query_processing.py
"""

from repro import (
    AnytimeMOQO,
    CardinalityEstimator,
    MultiObjectiveCostModel,
    PlanFactory,
    ResolutionSchedule,
    SingleObjectiveOptimizer,
    default_operator_registry,
    paper_metric_set,
)
from repro.costs.pareto import pareto_filter
from repro.workloads import tpch_queries, tpch_statistics


def build_factory(query, metric_set):
    return PlanFactory(
        estimator=CardinalityEstimator(tpch_statistics(), query.join_graph),
        cost_model=MultiObjectiveCostModel(metric_set),
        operators=default_operator_registry(),
    )


def fastest_within(frontier, metric_set, max_precision_loss, max_cores=None):
    """Cheapest execution time among plans meeting the precision/core limits."""
    time_index = metric_set.index_of("execution_time")
    loss_index = metric_set.index_of("precision_loss")
    cores_index = metric_set.index_of("reserved_cores")
    admissible = [
        point
        for point in frontier
        if point.cost[loss_index] <= max_precision_loss + 1e-12
        and (max_cores is None or point.cost[cores_index] <= max_cores)
    ]
    if not admissible:
        return None
    return min(admissible, key=lambda point: point.cost[time_index])


def main() -> None:
    query = next(q for q in tpch_queries() if q.name == "tpch_q14")
    metric_set = paper_metric_set()
    print(f"Approximate query processing on {query.name}: {sorted(query.tables)}\n")

    # Multi-objective anytime optimization.
    factory = build_factory(query, metric_set)
    schedule = ResolutionSchedule(levels=8, target_precision=1.005, precision_step=0.1)
    loop = AnytimeMOQO(query, factory, schedule)
    results = loop.run_resolution_sweep()
    frontier = results[-1].frontier
    non_dominated = pareto_filter([p.cost for p in frontier])
    print(
        f"IAMA explored {factory.counters.total_plans_built} plans and kept "
        f"{len(frontier)} tradeoffs ({len(non_dominated)} non-dominated).\n"
    )

    time_index = metric_set.index_of("execution_time")
    scenarios = [
        ("exact result", 0.0, None),
        ("5% precision loss allowed", 0.05, None),
        ("25% precision loss allowed", 0.25, None),
        ("25% loss, single core only", 0.25, 1),
    ]
    exact = fastest_within(frontier, metric_set, 0.0)
    print("What sampling buys, according to the Pareto frontier:")
    for label, loss, cores in scenarios:
        best = fastest_within(frontier, metric_set, loss, cores)
        if best is None:
            print(f"  {label:32s}: no qualifying plan")
            continue
        speedup = exact.cost[time_index] / best.cost[time_index] if exact else 1.0
        described = ", ".join(
            f"{name}={value:.3g}" for name, value in metric_set.describe(best.cost).items()
        )
        print(f"  {label:32s}: {described}  ({speedup:.1f}x vs exact)")
        print(f"    {best.plan.render()}")

    # Classical single-objective optimization sees only one point.
    single = SingleObjectiveOptimizer(query, build_factory(query, metric_set), "execution_time")
    fastest = single.optimize()
    print(
        "\nSingle-objective optimizer (execution time only) returns a single plan:\n"
        f"  {fastest.render()}\n"
        f"  cost: "
        + ", ".join(
            f"{name}={value:.3g}"
            for name, value in metric_set.describe(fastest.cost).items()
        )
    )
    print(
        "\nIt cannot answer 'how much precision do I give up for that speed?' --\n"
        "the Pareto frontier above is exactly that answer."
    )


if __name__ == "__main__":
    main()
