#!/usr/bin/env python3
"""Quickstart: the unified planner API on a TPC-H join block.

One :class:`repro.api.OptimizeRequest` names everything an optimization needs
-- a workload spec (``tpch:q03`` or ``gen:star:6:42``), an algorithm from the
planner registry (``iama``, ``memoryless``, ``oneshot``, ``exhaustive``,
``single_objective``), the anytime configuration (resolution levels and
precision), and an optional budget.  ``open_session`` returns a session that
streams one typed ``FrontierUpdate`` per optimizer invocation -- the
programmatic equivalent of the progressively refined visualization of
Figure 1 -- and finishes with a uniform ``OptimizationResult`` whose
``to_dict()`` form is stable, versioned JSON (``from_dict`` round-trips it).

Run with:  python examples/quickstart.py
(Scale via REPRO_BENCH_SCALE=tiny|smoke|paper; default smoke.)
"""

from repro.api import OptimizeRequest, open_session
from repro.costs.pareto import pareto_filter


def main() -> None:
    # 1. Describe the optimization: the TPC-H Q3 join block
    #    (customer/orders/lineitem), the paper's three cost metrics, five
    #    resolution levels refining alpha = 1.06 down to 1.01.
    request = OptimizeRequest(workload="tpch:q03", algorithm="iama", levels=5)

    # 2. Open a session.  The workload spec is resolved, the plan factory and
    #    resolution schedule are built, and the algorithm is looked up in the
    #    planner registry.
    session = open_session(request)
    query = session.query
    schedule = session.driver.schedule
    print(f"Optimizing {query.name} joining {sorted(query.tables)}\n")
    print(
        "Resolution levels and precision factors:",
        [f"{alpha:.3f}" for alpha in schedule.factors()],
    )
    print(
        f"Worst-case guarantee at the final level: "
        f"{schedule.guaranteed_precision(query.table_count):.3f}\n"
    )

    # 3. Stream the anytime refinement.  Each update carries the invocation
    #    report and the visualized frontier; a user (or steering code) could
    #    react between updates -- see cloud_tradeoff_exploration.py.
    for update in session.updates():
        frontier = pareto_filter(update.frontier_costs)
        print(
            f"invocation {update.invocation.index}: "
            f"resolution {update.invocation.resolution}, "
            f"{update.invocation.duration_seconds * 1000:6.1f} ms, "
            f"{len(update.frontier):4d} stored tradeoffs, "
            f"{len(frontier):3d} non-dominated"
        )

    # 4. The uniform result: finish reason, per-invocation reports, frontier.
    result = session.result()
    print(
        f"\nSession finished ({result.finish_reason}): "
        f"{result.plans_generated} plans generated, "
        f"{result.frontier_size} tradeoffs on the final frontier."
    )

    # 5. Inspect the final frontier: the best plan per metric.
    metric_set = session.driver.factory.metric_set
    print("\nBest plan per metric at the final resolution:")
    for index, name in enumerate(metric_set.names):
        best = min(result.frontier, key=lambda summary: summary.cost[index])
        values = ", ".join(
            f"{metric}={value:.3g}"
            for metric, value in metric_set.describe(best.cost).items()
        )
        print(f"  minimal {name:16s}: {values}")
        print(f"    plan: {best.render}")

    # 6. The result is stable, versioned JSON -- ready for caches and tools.
    payload = result.to_dict()
    print(
        f"\nresult.to_dict(): schema_version {payload['schema_version']}, "
        f"{len(payload['invocations'])} invocations, "
        f"{len(payload['frontier'])} frontier entries"
    )


if __name__ == "__main__":
    main()
