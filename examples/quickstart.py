#!/usr/bin/env python3
"""Quickstart: anytime multi-objective optimization of a TPC-H join block.

This example runs the incremental anytime optimizer (IAMA) on one TPC-H join
block with the paper's three cost metrics (execution time, reserved cores,
result precision loss), printing the approximation of the Pareto-optimal cost
tradeoffs after every resolution level -- the programmatic equivalent of the
progressively refined visualization of Figure 1.

Run with:  python examples/quickstart.py
"""

from repro import (
    AnytimeMOQO,
    CardinalityEstimator,
    MultiObjectiveCostModel,
    PlanFactory,
    ResolutionSchedule,
    default_operator_registry,
    paper_metric_set,
)
from repro.costs.pareto import pareto_filter
from repro.workloads import tpch_queries, tpch_statistics


def main() -> None:
    # 1. Pick a workload query: the TPC-H Q3 join block (customer/orders/lineitem).
    query = next(q for q in tpch_queries() if q.name == "tpch_q03")
    print(f"Optimizing {query.name} joining {sorted(query.tables)}\n")

    # 2. Assemble the optimizer substrate: statistics, cost model, operators.
    metric_set = paper_metric_set()
    factory = PlanFactory(
        estimator=CardinalityEstimator(tpch_statistics(), query.join_graph),
        cost_model=MultiObjectiveCostModel(metric_set),
        operators=default_operator_registry(),
    )

    # 3. Configure the anytime behaviour: five resolution levels refining the
    #    approximation from alpha = 1.06 down to the target precision 1.01.
    schedule = ResolutionSchedule(levels=5, target_precision=1.01, precision_step=0.05)
    print(
        "Resolution levels and precision factors:",
        [f"{alpha:.3f}" for alpha in schedule.factors()],
    )
    print(
        f"Worst-case guarantee at the final level: "
        f"{schedule.guaranteed_precision(query.table_count):.3f}\n"
    )

    # 4. Run the main control loop without user interaction.
    loop = AnytimeMOQO(query, factory, schedule)
    for result in loop.run_resolution_sweep():
        frontier = pareto_filter([point.cost for point in result.frontier])
        print(
            f"iteration {result.iteration}: resolution {result.resolution}, "
            f"{result.report.duration_seconds * 1000:6.1f} ms, "
            f"{len(result.frontier):4d} stored tradeoffs, "
            f"{len(frontier):3d} non-dominated"
        )

    # 5. Inspect the final frontier: the best plan per metric.
    final = loop.history[-1]
    print("\nBest plan per metric at the final resolution:")
    for index, name in enumerate(metric_set.names):
        best = min(final.frontier, key=lambda point: point.cost[index])
        values = ", ".join(
            f"{metric}={value:.3g}"
            for metric, value in metric_set.describe(best.cost).items()
        )
        print(f"  minimal {name:16s}: {values}")
        print(f"    plan: {best.plan.render()}")


if __name__ == "__main__":
    main()
