#!/usr/bin/env python3
"""The concurrent planning service: many anytime sessions, one process.

The paper's Algorithm 1 is *anytime*: every cheap invocation refines a usable
Pareto frontier.  The planning service (``repro.service``) turns that into a
multi-tenant mechanism — many concurrent queries share one process by
interleaving invocations, each getting a frontier early and a better one the
longer it stays admitted.  This example drives the in-process façade directly
(the HTTP wire layer, ``repro-moqo serve`` / ``submit``, exposes exactly the
same verbs):

1. submit a burst of generated workloads under the ``alpha_greedy`` policy
   (each timeslice goes where the expected precision gain is largest),
2. stream one job's frontier updates as they arrive,
3. resubmit the same workloads: every request is answered from the
   cross-request frontier cache by replay, re-running zero invocations,
4. warm-start: a request that previously stopped at a coarse frontier is
   resumed, computing only the missing refinement steps.

Run with:  python examples/planning_service.py
(Scale via REPRO_BENCH_SCALE=tiny|smoke|paper; default smoke.)
"""

from repro.api import Budget, OptimizeRequest
from repro.interactive import format_stream_line
from repro.service import PlanningService

WORKLOADS = [
    "gen:chain:4:0",
    "gen:star:4:0",
    "gen:cycle:4:0",
    "gen:clique:4:0",
    "gen:star:5:1",
]


def main() -> None:
    with PlanningService(policy="alpha_greedy", workers=2, max_sessions=4) as service:
        # 1. A burst of concurrent submissions.
        print(f"submitting {len(WORKLOADS)} workloads ...")
        tickets = {
            spec: service.submit(OptimizeRequest(workload=spec, levels=3))
            for spec in WORKLOADS
        }

        # 2. Stream one job's refinement while the others run concurrently.
        spec, ticket = next(iter(tickets.items()))
        print(f"\nstreaming {spec} ({ticket}):")
        for update in service.stream(ticket):
            print(format_stream_line(update))

        for spec, ticket in tickets.items():
            result = service.result(ticket, timeout=600.0)
            status = service.poll(ticket)
            print(
                f"  {spec:>16}: {status['cache_status']:>4} cache, "
                f"{len(result.invocations)} invocations, "
                f"{result.frontier_size} tradeoffs, {result.finish_reason}"
            )
        cold_invocations = service.scheduler.invocations_run
        print(
            f"\ncold phase: {cold_invocations} optimizer invocations, "
            f"peak {service.scheduler.max_live_seen} concurrently live sessions"
        )

        # 3. The same requests again: pure cache replay.
        print("\nresubmitting the same workloads ...")
        for spec in WORKLOADS:
            ticket = service.submit(OptimizeRequest(workload=spec, levels=3))
            service.result(ticket, timeout=600.0)
            print(f"  {spec:>16}: {service.poll(ticket)['cache_status']}")
        replayed = service.scheduler.invocations_run - cold_invocations
        print(f"warm phase re-ran {replayed} invocations (expected 0)")

        # 4. Warm start: a coarse run first, then the full refinement resumes
        #    from the parked session instead of starting over.
        coarse = OptimizeRequest(
            workload="gen:cycle:5:2", levels=4, budget=Budget(max_invocations=1)
        )
        service.result(service.submit(coarse), timeout=600.0)
        full = coarse.with_overrides(budget=Budget())
        before = service.scheduler.invocations_run
        ticket = service.submit(full)
        result = service.result(ticket, timeout=600.0)
        resumed = service.scheduler.invocations_run - before
        print(
            f"\nwarm start on {full.workload}: cache "
            f"{service.poll(ticket)['cache_status']}, "
            f"{len(result.invocations)} invocations reported, "
            f"only {resumed} newly computed"
        )

        cache = service.stats()["cache"]
        print(
            f"\nfrontier cache: {cache['hits']} hits, "
            f"{cache['warm_starts']} warm starts, {cache['misses']} misses, "
            f"{cache['bytes_in_use']} bytes resident"
        )


if __name__ == "__main__":
    main()
