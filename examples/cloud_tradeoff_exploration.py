#!/usr/bin/env python3
"""Cloud scenario: interactively trading execution time against monetary fees.

Example 1 of the paper: "In cloud computing, there is a tradeoff between
execution time and fees as buying more resources can speed up execution."
This script simulates the interactive session of Figure 1 on a TPC-H block
with the two-metric cloud cost model, steering a unified-API planner session
the way a user would drive the visual interface:

* the optimizer quickly shows a coarse frontier (one ``FrontierUpdate`` per
  invocation),
* the "user" reacts to the streamed updates by twice tightening the
  execution-time bound (dragging the bound line to the left),
* the resolution resets after every bound change and then refines again,
* finally the user selects the cheapest plan that meets the deadline, ending
  the session with ``finish_reason == "selected"``.

The frontier is rendered as an ASCII scatter plot at the end.

Run with:  python examples/cloud_tradeoff_exploration.py
(Scale via REPRO_BENCH_SCALE=tiny|smoke|paper; default smoke.)
"""

import os

from repro.api import Budget, OptimizeRequest, open_session
from repro.core.control import ChangeBounds
from repro.interactive import ascii_scatter, weighted_sum_chooser

TINY = os.environ.get("REPRO_BENCH_SCALE", "").strip().lower() == "tiny"
QUERY = "tpch:q03" if TINY else "tpch:q10"
LEVELS = 3 if TINY else 6


def main() -> None:
    request = OptimizeRequest(
        workload=QUERY,
        algorithm="iama",
        levels=LEVELS,
        metrics=("execution_time", "monetary_fees"),
        budget=Budget(max_invocations=12),
    )
    session = open_session(request)
    metric_set = session.driver.factory.metric_set
    print(f"Interactive cloud optimization of {session.query.name}: "
          f"{sorted(session.query.tables)}")
    print(f"Metrics: {metric_set.names}\n")

    time_index = metric_set.index_of("execution_time")
    chooser = weighted_sum_chooser(metric_set, {"monetary_fees": 1.0})
    changes = 0
    for update in session.updates():
        action = "Continue"
        if update.frontier and update.invocation.index % 2 == 0 and changes < 2:
            # Drag the execution-time bound to the left: first to the 80th
            # percentile of the visualized times, then down to the fastest
            # visualized plan (which therefore stays within bounds).
            times = sorted(c[time_index] for c in update.frontier_costs)
            bound = times[int(0.8 * (len(times) - 1))] if changes == 0 else times[0]
            session.steer(ChangeBounds(
                update.invocation.bounds.with_component(time_index, bound)
            ))
            changes += 1
            action = f"ChangeBounds(time <= {bound:.3g})"
        elif changes >= 2 and update.frontier:
            # Deadline satisfied twice over: take the cheapest qualifying plan.
            session.select(chooser=chooser)
            action = "SelectPlan"
        print(
            f"invocation {update.invocation.index}: "
            f"resolution {update.invocation.resolution}, "
            f"{update.invocation.duration_seconds * 1000:6.1f} ms, "
            f"{len(update.frontier):4d} tradeoffs shown, "
            f"user action: {action}"
        )

    final = session.last_update
    print(f"\nSession finished: {session.finish_reason}")
    print("\nFinal visualized frontier (time vs fees):")
    print(
        ascii_scatter(
            list(final.frontier_costs),
            x_label="execution time",
            y_label="monetary fees",
            bounds=final.invocation.bounds,
        )
    )
    selected = session.selected_plan
    if selected is not None:
        described = ", ".join(
            f"{name}={value:.3g}"
            for name, value in metric_set.describe(selected.cost).items()
        )
        print(f"\nUser selected: {selected.render()}")
        print(f"  cost: {described}")
    else:
        print("\nNo plan selected within the invocation budget.")


if __name__ == "__main__":
    main()
