#!/usr/bin/env python3
"""Cloud scenario: interactively trading execution time against monetary fees.

Example 1 of the paper: "In cloud computing, there is a tradeoff between
execution time and fees as buying more resources can speed up execution."
This script simulates the interactive session of Figure 1 on a TPC-H block
with the two-metric cloud cost model:

* the optimizer quickly shows a coarse frontier,
* a scripted user keeps tightening the execution-time bound (dragging the
  bound line to the left),
* the resolution resets after every bound change and then refines again,
* finally the user selects the cheapest plan that meets the deadline.

The frontier is rendered as an ASCII scatter plot after every iteration.

Run with:  python examples/cloud_tradeoff_exploration.py
"""

from repro import (
    CardinalityEstimator,
    MultiObjectiveCostModel,
    PlanFactory,
    ResolutionSchedule,
    default_operator_registry,
)
from repro.costs.metrics import cloud_metric_set
from repro.interactive import (
    BoundTighteningUser,
    InteractiveSession,
    PlanSelectingUser,
    ascii_scatter,
    weighted_sum_chooser,
)
from repro.interactive.user_models import UserModel
from repro.core.control import Continue, InvocationResult, SelectPlan, UserAction
from repro.workloads import tpch_queries, tpch_statistics


class CloudUser(UserModel):
    """Tightens the time bound twice, then picks the cheapest qualifying plan."""

    def __init__(self, metric_set):
        self._tightener = BoundTighteningUser(
            metric_set, "execution_time", tighten_every=2, factor=0.6
        )
        self._metric_set = metric_set
        self._changes = 0

    def react(self, result: InvocationResult) -> UserAction:
        if self._changes < 2:
            action = self._tightener.react(result)
            if not isinstance(action, Continue):
                self._changes += 1
            return action
        if result.frontier:
            chooser = weighted_sum_chooser(self._metric_set, {"monetary_fees": 1.0})
            return SelectPlan(chooser=chooser)
        return Continue()


def main() -> None:
    query = next(q for q in tpch_queries() if q.name == "tpch_q10")
    metric_set = cloud_metric_set()
    print(f"Interactive cloud optimization of {query.name}: {sorted(query.tables)}")
    print(f"Metrics: {metric_set.names}\n")

    factory = PlanFactory(
        estimator=CardinalityEstimator(tpch_statistics(), query.join_graph),
        cost_model=MultiObjectiveCostModel(metric_set),
        operators=default_operator_registry(),
    )
    schedule = ResolutionSchedule(levels=6, target_precision=1.01, precision_step=0.05)
    session = InteractiveSession(
        query, factory, schedule, user=CloudUser(metric_set)
    )
    selected = session.run(max_iterations=12)

    for entry in session.timeline:
        print(
            f"iteration {entry.iteration}: resolution {entry.resolution}, "
            f"{entry.invocation_seconds * 1000:6.1f} ms, "
            f"{entry.snapshot.size:4d} tradeoffs shown, "
            f"user action: {type(entry.action).__name__}"
        )
    final = session.timeline[-1].snapshot
    print("\nFinal visualized frontier (time vs fees):")
    print(
        ascii_scatter(
            list(final.costs),
            x_label="execution time",
            y_label="monetary fees",
            bounds=final.bounds,
        )
    )
    if selected is not None:
        described = ", ".join(
            f"{name}={value:.3g}"
            for name, value in metric_set.describe(selected.cost).items()
        )
        print(f"\nUser selected: {selected.render()}")
        print(f"  cost: {described}")
    else:
        print("\nNo plan selected within the iteration budget.")


if __name__ == "__main__":
    main()
