#!/usr/bin/env python3
"""Algorithm comparison on TPC-H: why incrementality matters interactively.

This example reproduces, at example scale, the core experimental comparison of
Section 6 -- the incremental anytime algorithm (IAMA) against the memoryless
and one-shot baselines -- but drives every algorithm through the *same*
planner-registry session API, which is the point: one surface, five
algorithms.  It reports

* the time of every optimizer invocation in a resolution sweep,
* how long a user waits for the *first* visualized frontier,
* the total number of plans each algorithm had to construct,
* what happens when the user changes cost bounds mid-session (only IAMA
  reuses previously generated plans).

Run with:  python examples/tpch_interactive_session.py
(Scale via REPRO_BENCH_SCALE=tiny|smoke|paper; default smoke.)
"""

import os
import time

from repro.api import OptimizeRequest, open_session
from repro.core.control import ChangeBounds

TINY = os.environ.get("REPRO_BENCH_SCALE", "").strip().lower() == "tiny"
QUERY = "tpch:q03" if TINY else "tpch:q10"
LEVELS = 3 if TINY else 6


def fresh_session(algorithm: str):
    request = OptimizeRequest(workload=QUERY, algorithm=algorithm, levels=LEVELS)
    return open_session(request)


def main() -> None:
    session = fresh_session("iama")
    query = session.query
    print(f"Comparing algorithms on {query.name} ({query.table_count} tables), "
          f"{LEVELS} resolution levels\n")

    # ------------------------------------------------------------------
    # The same drain loop serves every algorithm: open, run, read the result.
    # ------------------------------------------------------------------
    results = {"iama": session.run()}
    for algorithm in ("memoryless", "oneshot"):
        results[algorithm] = fresh_session(algorithm).run()

    iama = results["iama"]
    print("IAMA invocation times      :",
          " ".join(f"{t * 1000:7.1f}ms" for t in iama.durations_seconds))
    print(f"  first frontier after     : {iama.durations_seconds[0] * 1000:.1f} ms "
          f"({iama.invocations[0].frontier_size} tradeoffs)")
    print(f"  plans constructed        : {iama.plans_generated}")

    memo = results["memoryless"]
    print("\nMemoryless invocation times:",
          " ".join(f"{t * 1000:7.1f}ms" for t in memo.durations_seconds))
    print(f"  plans constructed        : {memo.plans_generated}")

    oneshot = results["oneshot"]
    print(f"\nOne-shot single invocation : "
          f"{oneshot.durations_seconds[0] * 1000:7.1f}ms "
          f"(user sees nothing until it finishes)")
    print(f"  plans constructed        : {oneshot.plans_generated}")

    avg_iama = sum(iama.durations_seconds) / len(iama.durations_seconds)
    avg_memo = sum(memo.durations_seconds) / len(memo.durations_seconds)
    print(f"\nAverage time per invocation: IAMA {avg_iama * 1000:.1f} ms, "
          f"memoryless {avg_memo * 1000:.1f} ms "
          f"-> {avg_memo / avg_iama:.1f}x faster on average")

    # ------------------------------------------------------------------
    # Mid-session bound change: incrementality pays off.  The IAMA session is
    # exhausted, so open a fresh one, drain it, then steer it with new bounds.
    # ------------------------------------------------------------------
    print("\nUser drags the execution-time bound to the median of the frontier...")
    session = fresh_session("iama")
    metric_set = session.driver.factory.metric_set
    time_index = metric_set.index_of("execution_time")
    for update in session.updates():
        if update.invocation.resolution == session.driver.schedule.max_resolution:
            # React to the final frontier: tighten the time bound.
            times = sorted(c[time_index] for c in update.frontier_costs)
            median_time = times[len(times) // 2]
            session.steer(ChangeBounds(
                update.invocation.bounds.with_component(time_index, median_time)
            ))
            break

    built_before = session.driver.factory.counters.total_plans_built
    started = time.perf_counter()
    session.apply()                       # adopt the queued bound change
    bounded = session.step()              # re-invoke under the new bounds
    refined = session.step()              # one refinement under the new bounds
    elapsed = time.perf_counter() - started
    built_after = session.driver.factory.counters.total_plans_built
    print(f"  IAMA handled the change in {elapsed * 1000:.1f} ms and built "
          f"{built_after - built_before} new plans "
          f"(frontier now {len(refined.frontier)} tradeoffs within bounds).")

    new_bounds = bounded.invocation.bounds
    started = time.perf_counter()
    restart = fresh_session("memoryless")
    restart.apply(ChangeBounds(new_bounds))  # a restart begins at the new bounds
    restart.step()
    restart.step()
    elapsed = time.perf_counter() - started
    print(f"  A memoryless optimizer starts over and needs {elapsed * 1000:.1f} ms "
          f"and {restart.driver.factory.counters.total_plans_built} plans "
          "for the same two steps.")


if __name__ == "__main__":
    main()
