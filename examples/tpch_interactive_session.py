#!/usr/bin/env python3
"""Algorithm comparison on TPC-H: why incrementality matters interactively.

This example reproduces, at example scale, the core experimental comparison of
Section 6: the incremental anytime algorithm (IAMA) against the memoryless and
one-shot baselines on a TPC-H join block.  It reports

* the time of every optimizer invocation in a resolution sweep,
* how long a user waits for the *first* visualized frontier,
* the total number of plans each algorithm had to construct,
* what happens when the user changes cost bounds mid-session (only IAMA
  reuses previously generated plans).

Run with:  python examples/tpch_interactive_session.py
(Use a smaller block or fewer levels if your machine is slow.)
"""

import time

from repro import (
    AnytimeMOQO,
    CardinalityEstimator,
    ChangeBounds,
    MemorylessAnytimeOptimizer,
    MultiObjectiveCostModel,
    OneShotOptimizer,
    PlanFactory,
    ResolutionSchedule,
    paper_metric_set,
)
from repro.plans.operators import OperatorRegistry
from repro.workloads import tpch_queries, tpch_statistics

QUERY_NAME = "tpch_q10"     # 4-table block: customer, orders, lineitem, nation
LEVELS = 6


def build_factory(query, metric_set):
    registry = OperatorRegistry(
        parallelism_levels=(1, 2),
        sampling_rates=(0.5, 0.1),
        join_algorithms=("hash_join", "nested_loop_join"),
    )
    return PlanFactory(
        estimator=CardinalityEstimator(tpch_statistics(), query.join_graph),
        cost_model=MultiObjectiveCostModel(metric_set),
        operators=registry,
    )


def main() -> None:
    query = next(q for q in tpch_queries() if q.name == QUERY_NAME)
    metric_set = paper_metric_set()
    schedule = ResolutionSchedule(levels=LEVELS, target_precision=1.01, precision_step=0.05)
    print(f"Comparing algorithms on {query.name} ({query.table_count} tables), "
          f"{LEVELS} resolution levels\n")

    # ------------------------------------------------------------------
    # Incremental anytime (IAMA)
    # ------------------------------------------------------------------
    factory = build_factory(query, metric_set)
    loop = AnytimeMOQO(query, factory, schedule)
    iama_results = loop.run_resolution_sweep()
    iama_times = [r.duration_seconds for r in iama_results]
    print("IAMA invocation times      :",
          " ".join(f"{t * 1000:7.1f}ms" for t in iama_times))
    print(f"  first frontier after     : {iama_times[0] * 1000:.1f} ms "
          f"({len(iama_results[0].frontier)} tradeoffs)")
    print(f"  plans constructed        : {factory.counters.total_plans_built}")

    # ------------------------------------------------------------------
    # Memoryless anytime baseline
    # ------------------------------------------------------------------
    factory = build_factory(query, metric_set)
    memoryless = MemorylessAnytimeOptimizer(query, factory, schedule)
    memo_reports = memoryless.run_resolution_sweep()
    memo_times = [r.duration_seconds for r in memo_reports]
    print("\nMemoryless invocation times:",
          " ".join(f"{t * 1000:7.1f}ms" for t in memo_times))
    print(f"  plans constructed        : {factory.counters.total_plans_built}")

    # ------------------------------------------------------------------
    # One-shot baseline
    # ------------------------------------------------------------------
    factory = build_factory(query, metric_set)
    oneshot = OneShotOptimizer(query, factory, schedule)
    one_report = oneshot.optimize()
    print(f"\nOne-shot single invocation : {one_report.duration_seconds * 1000:7.1f}ms "
          f"(user sees nothing until it finishes)")
    print(f"  plans constructed        : {factory.counters.total_plans_built}")

    avg_iama = sum(iama_times) / len(iama_times)
    avg_memo = sum(memo_times) / len(memo_times)
    print(f"\nAverage time per invocation: IAMA {avg_iama * 1000:.1f} ms, "
          f"memoryless {avg_memo * 1000:.1f} ms "
          f"-> {avg_memo / avg_iama:.1f}x faster on average")

    # ------------------------------------------------------------------
    # Mid-session bound change: incrementality pays off
    # ------------------------------------------------------------------
    print("\nUser drags the execution-time bound to the median of the frontier...")
    final_frontier = iama_results[-1].frontier
    time_index = metric_set.index_of("execution_time")
    median_time = sorted(p.cost[time_index] for p in final_frontier)[len(final_frontier) // 2]
    bounds = metric_set.unbounded_vector().with_component(time_index, median_time)

    built_before = loop.optimizer.factory.counters.total_plans_built
    started = time.perf_counter()
    bounded_result = loop.step(ChangeBounds(bounds))
    loop_step = loop.step()  # one refinement under the new bounds
    elapsed = time.perf_counter() - started
    built_after = loop.optimizer.factory.counters.total_plans_built
    print(f"  IAMA handled the change in {elapsed * 1000:.1f} ms and built "
          f"{built_after - built_before} new plans "
          f"(frontier now {len(loop_step.frontier)} tradeoffs within bounds).")

    started = time.perf_counter()
    factory = build_factory(query, metric_set)
    restart = MemorylessAnytimeOptimizer(query, factory, schedule)
    restart.step(bounds=bounds, resolution=0)
    restart.step(bounds=bounds, resolution=1)
    elapsed = time.perf_counter() - started
    print(f"  A memoryless optimizer starts over and needs {elapsed * 1000:.1f} ms "
          f"and {factory.counters.total_plans_built} plans for the same two steps.")


if __name__ == "__main__":
    main()
