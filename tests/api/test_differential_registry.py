"""Differential tests: the registry path must equal the legacy entry points.

The unified planner API is a façade, not a reimplementation: for every
registered algorithm, opening a session through the :class:`PlannerRegistry`
must produce *bit-identical* frontier costs to driving the legacy optimizer
class directly — per algorithm, join-graph topology and generator seed.
"""

import pytest

from repro.api import OptimizeRequest, open_session, resolve_request
from repro.baselines.exhaustive import ExhaustiveParetoOptimizer
from repro.baselines.memoryless import MemorylessAnytimeOptimizer
from repro.baselines.oneshot import OneShotOptimizer
from repro.baselines.single_objective import SingleObjectiveOptimizer
from repro.core.control import AnytimeMOQO

TOPOLOGIES = ("chain", "star", "cycle", "clique")
SEEDS = (0, 1)
LEVELS = 3
TABLES = 3


def request_for(algorithm, topology, seed):
    return OptimizeRequest(
        workload=f"gen:{topology}:{TABLES}:{seed}",
        algorithm=algorithm,
        scale="tiny",
        levels=LEVELS,
    )


def registry_frontier(algorithm, topology, seed):
    """Frontier costs via the unified API."""
    result = open_session(request_for(algorithm, topology, seed)).run()
    return [tuple(summary.cost) for summary in result.frontier]


def legacy_parts(algorithm, topology, seed):
    """A fresh (query, factory, schedule) triple identical to the API's."""
    resolved = resolve_request(request_for(algorithm, topology, seed))
    return resolved.query, resolved.factory, resolved.schedule


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("topology", TOPOLOGIES)
class TestRegistryEqualsLegacy:
    def test_iama(self, topology, seed):
        query, factory, schedule = legacy_parts("iama", topology, seed)
        loop = AnytimeMOQO(query, factory, schedule)
        results = loop.run_resolution_sweep()
        legacy = [tuple(point.cost) for point in results[-1].frontier]
        assert registry_frontier("iama", topology, seed) == legacy

    def test_memoryless(self, topology, seed):
        query, factory, schedule = legacy_parts("memoryless", topology, seed)
        optimizer = MemorylessAnytimeOptimizer(query, factory, schedule)
        optimizer.run_resolution_sweep()
        legacy = [tuple(plan.cost) for plan in optimizer.frontier()]
        assert registry_frontier("memoryless", topology, seed) == legacy

    def test_oneshot(self, topology, seed):
        query, factory, schedule = legacy_parts("oneshot", topology, seed)
        optimizer = OneShotOptimizer(query, factory, schedule)
        optimizer.optimize()
        legacy = [tuple(plan.cost) for plan in optimizer.frontier()]
        assert registry_frontier("oneshot", topology, seed) == legacy

    def test_exhaustive(self, topology, seed):
        query, factory, schedule = legacy_parts("exhaustive", topology, seed)
        optimizer = ExhaustiveParetoOptimizer(query, factory)
        optimizer.optimize()
        legacy = [tuple(plan.cost) for plan in optimizer.frontier()]
        assert registry_frontier("exhaustive", topology, seed) == legacy

    def test_single_objective(self, topology, seed):
        query, factory, schedule = legacy_parts("single_objective", topology, seed)
        optimizer = SingleObjectiveOptimizer(query, factory)
        legacy = [tuple(optimizer.optimize().cost)]
        assert registry_frontier("single_objective", topology, seed) == legacy
