"""Regression tests: infinite cost components through the arena and the schema.

Plans whose first cost component is ``+inf`` are legal (the plan index parks
them in a dedicated sentinel bucket above every finite bucket) and unbounded
cost bounds are vectors of infinities, yet JSON has no infinity literal --
:mod:`repro.api.schema` encodes them as the string ``"inf"``.  These tests pin
the whole chain for *arena* cost rows: an arena row containing ``inf`` must
survive CostVector round-trips, plan-summary serialization, real ``json``
dumps/loads, pruning at every resolution of a schedule, and the full
``OptimizationResult`` payload of a session run under unbounded bounds.
"""

import json
import math

import pytest

from repro import kernel
from repro.api import OptimizationResult, OptimizeRequest, open_session
from repro.api.schema import (
    PlanSummary,
    SchemaError,
    cost_from_jsonable,
    cost_to_jsonable,
    decode_float,
    encode_float,
)
from repro.core.index import INFINITE_BUCKET, PlanIndex
from repro.core.pruning import PruneOutcome, prune_all_ids
from repro.core.resolution import ResolutionSchedule
from repro.costs.vector import CostVector
from repro.plans.arena import PlanArena
from repro.plans.operators import ScanOperator

try:
    import numpy  # noqa: F401

    BACKENDS = ("python", "numpy")
except ImportError:  # pragma: no cover - depends on environment
    BACKENDS = ("python",)

INF = math.inf


def inf_arena():
    """An arena holding one finite and one infinite-first-cost scan plan."""
    arena = PlanArena(3)
    finite = arena.allocate_scan(
        "t", ScanOperator("seq_scan"), CostVector([5.0, 1.0, 0.0])
    )
    infinite = arena.allocate_scan(
        "t", ScanOperator("seq_scan"), CostVector([INF, 1.0, 0.0])
    )
    return arena, finite, infinite


class TestSchemaEncoding:
    def test_arena_cost_row_round_trips_through_json(self):
        arena, _, infinite = inf_arena()
        cost = arena.cost_of(infinite)
        payload = json.loads(json.dumps(cost_to_jsonable(cost)))
        assert payload[0] == "inf"
        assert cost_from_jsonable(payload) == cost

    def test_plan_summary_round_trips_inf_cost(self):
        arena, _, infinite = inf_arena()
        summary = PlanSummary.from_plan(arena.plan(infinite))
        restored = PlanSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert restored == summary
        assert math.isinf(restored.cost[0])

    def test_negative_infinity_is_sign_aware(self):
        assert encode_float(-INF) == "-inf"
        assert decode_float("-inf") == -INF
        assert decode_float("inf") == INF
        with pytest.raises(SchemaError):
            decode_float("infinity")


class TestIndexSentinelBucket:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_infinite_plan_lands_in_sentinel_bucket(self, backend):
        with kernel.use_backend(backend):
            arena, finite, infinite = inf_arena()
            index = PlanIndex()
            index.insert_id(finite, 0, arena)
            index.insert_id(infinite, 0, arena)
            unbounded = CostVector([INF, INF, INF])
            assert index.retrieve_ids(unbounded, 0) == [finite, infinite]
            # Finite bounds exclude the sentinel plan but keep the finite one.
            assert index.retrieve_ids(CostVector([10.0, 10.0, 10.0]), 0) == [finite]
            assert index._bucket_of(arena.cost_row(infinite)) == INFINITE_BUCKET

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pruning_inf_rows_at_every_schedule_resolution(self, backend):
        """An inf-cost arena row survives Prune across a whole schedule.

        Under unbounded bounds the sentinel plan must be INSERTED (nothing
        dominates it; the bounds are infinite); under finite bounds it must be
        parked OUT_OF_BOUNDS -- at every resolution, with the alpha-scaled
        row (``alpha * inf == inf``) never tripping the kernel comparisons.
        """
        schedule = ResolutionSchedule(levels=3)
        with kernel.use_backend(backend):
            for resolution in schedule.resolutions():
                alpha = schedule.alpha(resolution)
                # Alone (no finite plan that could approximate it), the
                # sentinel plan must be inserted under unbounded bounds.
                arena, _, infinite = inf_arena()
                results, candidates = PlanIndex(), PlanIndex()
                outcomes = prune_all_ids(
                    results,
                    candidates,
                    CostVector([INF, INF, INF]),
                    resolution,
                    alpha,
                    schedule.max_resolution,
                    arena,
                    [infinite],
                )
                assert outcomes == [PruneOutcome.INSERTED]
                assert results.retrieve_ids(CostVector([INF] * 3), resolution) == [
                    infinite
                ]

                # With a finite plan inserted first, the finite plan
                # approximates the alpha-scaled infinite row (alpha * inf is
                # still inf), so the sentinel plan is deferred -- or
                # discarded once the maximal resolution is reached.
                arena, finite, infinite = inf_arena()
                results, candidates = PlanIndex(), PlanIndex()
                outcomes = prune_all_ids(
                    results,
                    candidates,
                    CostVector([INF, INF, INF]),
                    resolution,
                    alpha,
                    schedule.max_resolution,
                    arena,
                    [finite, infinite],
                )
                expected = (
                    PruneOutcome.DEFERRED_TO_HIGHER_RESOLUTION
                    if resolution < schedule.max_resolution
                    else PruneOutcome.DISCARDED
                )
                assert outcomes == [PruneOutcome.INSERTED, expected]

                # Under finite bounds the sentinel plan is parked as an
                # out-of-bounds candidate at the current resolution.
                arena, finite, infinite = inf_arena()
                results, candidates = PlanIndex(), PlanIndex()
                outcomes = prune_all_ids(
                    results,
                    candidates,
                    CostVector([100.0, 100.0, 100.0]),
                    resolution,
                    alpha,
                    schedule.max_resolution,
                    arena,
                    [infinite, finite],
                )
                assert outcomes == [
                    PruneOutcome.OUT_OF_BOUNDS,
                    PruneOutcome.INSERTED,
                ]
                assert candidates.retrieve_ids(CostVector([INF] * 3), resolution) == [
                    infinite
                ]


class TestSessionPayloadWithUnboundedBounds:
    def test_optimization_result_round_trips_inf_bounds(self):
        result = open_session(
            OptimizeRequest(
                workload="gen:chain:3:0", algorithm="iama", scale="tiny", levels=2
            )
        ).run()
        payload = result.to_dict()
        # The default bounds are unbounded: every invocation serializes them
        # with the inf token, through a real JSON round trip.
        encoded = json.dumps(payload)
        assert '"inf"' in encoded
        restored = OptimizationResult.from_dict(json.loads(encoded))
        assert restored.to_dict() == payload
        assert all(
            math.isinf(component)
            for invocation in restored.invocations
            for component in invocation.bounds
        )
