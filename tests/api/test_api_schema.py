"""Round-trip and validation tests for the versioned API schema."""

import json
import math

import pytest

from repro.api.schema import (
    SCHEMA_VERSION,
    FrontierUpdate,
    InvocationSummary,
    OptimizationResult,
    PlanSummary,
    SchemaError,
    cost_from_jsonable,
    cost_to_jsonable,
    frontier_summaries,
)
from repro.costs.vector import CostVector
from tests.conftest import build_chain_query, build_factory


def make_plan():
    query = build_chain_query(("customers", "orders"))
    factory = build_factory(query)
    scans = {t: factory.scan_plans(t)[0] for t in ("customers", "orders")}
    return factory.join_plan(
        scans["customers"], scans["orders"], factory.join_operators()[0]
    )


class TestCostEncoding:
    def test_round_trips_finite_vectors(self):
        cost = CostVector([1.5, 0.0, 2.384e-05])
        assert cost_from_jsonable(cost_to_jsonable(cost)) == cost

    def test_infinity_is_encoded_as_string(self):
        bounds = CostVector([math.inf, 3.0])
        encoded = cost_to_jsonable(bounds)
        assert encoded == ["inf", 3.0]
        # The encoding must survive a strict JSON round trip.
        assert cost_from_jsonable(json.loads(json.dumps(encoded))) == bounds

    def test_rejects_garbage(self):
        with pytest.raises(SchemaError):
            cost_from_jsonable([])
        with pytest.raises(SchemaError):
            cost_from_jsonable(["not-a-number"])

    def test_negative_infinity_never_flips_sign(self):
        # CostVector forbids negative components, so a decoded "-inf" must
        # surface as that validation error -- never as a silent +inf bound.
        from repro.api.schema import decode_float, encode_float

        assert encode_float(float("-inf")) == "-inf"
        assert decode_float("-inf") == float("-inf")
        with pytest.raises(ValueError, match="non-negative"):
            cost_from_jsonable(["-inf", 1.0])


class TestPlanSummary:
    def test_from_plan_and_round_trip(self):
        plan = make_plan()
        summary = PlanSummary.from_plan(plan)
        assert summary.tables == tuple(sorted(plan.tables))
        assert summary.cost == plan.cost
        assert summary.render == plan.render()
        restored = PlanSummary.from_dict(json.loads(json.dumps(summary.to_dict())))
        assert restored == summary

    def test_rejects_wrong_kind_and_version(self):
        plan = make_plan()
        payload = PlanSummary.from_plan(plan).to_dict()
        with pytest.raises(SchemaError, match="kind"):
            InvocationSummary.from_dict(payload)
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="schema_version"):
            PlanSummary.from_dict(payload)


class TestInvocationSummary:
    def test_round_trip_preserves_details(self):
        summary = InvocationSummary(
            index=3,
            resolution=1,
            alpha=1.035,
            bounds=CostVector([math.inf, math.inf]),
            duration_seconds=0.0123,
            frontier_size=7,
            details={"pairs_enumerated": 12, "delta_mode": True},
        )
        restored = InvocationSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert restored == summary


class TestFrontierUpdate:
    def test_live_plans_are_excluded_from_equality_and_json(self):
        plan = make_plan()
        summary = InvocationSummary(
            index=1,
            resolution=0,
            alpha=1.05,
            bounds=CostVector([math.inf] * len(plan.cost)),
            duration_seconds=0.001,
            frontier_size=1,
        )
        update = FrontierUpdate(
            algorithm="iama",
            invocation=summary,
            frontier=frontier_summaries([plan]),
            elapsed_seconds=0.002,
            plans=(plan,),
            native=object(),
        )
        payload = json.loads(json.dumps(update.to_dict()))
        restored = FrontierUpdate.from_dict(payload)
        assert restored == update
        assert restored.plans == ()
        assert restored.native is None


class TestOptimizationResult:
    def test_full_round_trip(self):
        plan = make_plan()
        summary = frontier_summaries([plan])
        invocation = InvocationSummary(
            index=1,
            resolution=0,
            alpha=1.01,
            bounds=CostVector([math.inf] * len(plan.cost)),
            duration_seconds=0.5,
            frontier_size=1,
            details={"plans_generated": 10},
        )
        result = OptimizationResult(
            algorithm="oneshot",
            query_name="shop_chain",
            table_count=2,
            metric_names=("execution_time", "reserved_cores", "precision_loss"),
            invocations=(invocation,),
            frontier=summary,
            finish_reason="exhausted",
            total_seconds=0.5,
            plans_generated=10,
            selected_plan=summary[0],
        )
        payload = json.loads(json.dumps(result.to_dict()))
        restored = OptimizationResult.from_dict(payload)
        assert restored == result
        assert restored.to_dict() == result.to_dict()

    def test_payload_flows_unchanged_through_the_cell_cache(self, tmp_path):
        from repro.api import OptimizeRequest, open_session
        from repro.bench.cache import ResultCache
        from repro.bench.config import tiny_config
        from repro.bench.registry import Cell

        result = open_session(
            OptimizeRequest(workload="gen:chain:2:0", scale="tiny", levels=2)
        ).run()
        cache = ResultCache(tmp_path)
        cell = Cell.make("api_smoke", workload="gen:chain:2:0")
        config = tiny_config()
        cache.store(cell, config, result.to_dict())
        loaded = cache.load(cell, config)
        assert OptimizationResult.from_dict(loaded) == result

    def test_payload_flows_unchanged_through_the_json_exporter(self, tmp_path):
        from repro.api import OptimizeRequest, open_session
        from repro.bench.experiments import ExperimentResult
        from repro.bench.export import load_json, write_json

        result = open_session(
            OptimizeRequest(workload="gen:chain:2:1", scale="tiny", levels=2)
        ).run()
        rows = ExperimentResult(
            name="api_export", description="", rows=[result.to_dict()]
        )
        loaded = load_json(write_json(rows, tmp_path / "api_export.json"))
        assert OptimizationResult.from_dict(loaded.rows[0]) == result

    def test_rejects_unknown_finish_reason(self):
        plan = make_plan()
        result = OptimizationResult(
            algorithm="iama",
            query_name="q",
            table_count=2,
            metric_names=("execution_time",),
            invocations=(),
            frontier=frontier_summaries([plan]),
            finish_reason="exhausted",
            total_seconds=0.0,
            plans_generated=0,
        )
        payload = result.to_dict()
        payload["finish_reason"] = "crashed"
        with pytest.raises(SchemaError, match="finish_reason"):
            OptimizationResult.from_dict(payload)
