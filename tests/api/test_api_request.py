"""Tests for requests, budgets, and workload-spec resolution."""

import json
import math

import pytest

from repro.api.request import (
    Budget,
    OptimizeRequest,
    metric_set_from_names,
    parse_generated_spec,
    resolve_request,
    resolve_workload,
)
from repro.costs.vector import CostVector
from repro.workloads.generator import generated_workload


class TestWorkloadSpecs:
    def test_tpch_block_by_all_spellings(self):
        for spec in ("tpch_q03", "q03", "tpch:q03"):
            resolved = resolve_workload(spec)
            assert resolved.query.name == "tpch_q03"

    def test_generated_spec_matches_the_generator(self):
        resolved = resolve_workload("gen:star:4:42")
        reference = generated_workload(42, 4, "star")
        # The resolved query is bit-identical to a direct generator call.
        assert resolved.query.table_count == 4
        assert resolved.query.name == reference.query.name
        assert resolved.query.tables == reference.query.tables
        for table in sorted(resolved.query.tables):
            assert (
                resolved.statistics.row_count(table)
                == reference.statistics.row_count(table)
            )

    def test_parse_generated_spec(self):
        assert parse_generated_spec("gen:star:6:42") == ("star", 6, 42)

    @pytest.mark.parametrize(
        "spec",
        ["gen:star:6", "gen:star:6:42:9", "gen:mesh:3:1", "gen:star:x:1", "gen:star:0:1"],
    )
    def test_malformed_generated_specs_fail(self, spec):
        with pytest.raises(ValueError):
            resolve_workload(spec)

    def test_unknown_block_fails_with_hint(self):
        with pytest.raises(ValueError, match="unknown query"):
            resolve_workload("q99")


class TestBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(deadline_seconds=-1)
        with pytest.raises(ValueError):
            Budget(max_invocations=0)
        with pytest.raises(ValueError):
            Budget(target_alpha=0.5)
        assert Budget().unlimited
        assert not Budget(max_invocations=3).unlimited

    def test_round_trip(self):
        budget = Budget(deadline_seconds=1.5, max_invocations=3, target_alpha=1.01)
        assert Budget.from_dict(json.loads(json.dumps(budget.to_dict()))) == budget
        assert Budget.from_dict(Budget().to_dict()) == Budget()


class TestOptimizeRequest:
    def test_defaults_and_round_trip(self):
        request = OptimizeRequest(workload="tpch:q03")
        restored = OptimizeRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        assert restored == request

    def test_from_dict_defaults_every_optional_field(self):
        minimal = {
            "schema_version": 1,
            "kind": "optimize_request",
            "workload": "tpch:q03",
        }
        assert OptimizeRequest.from_dict(minimal) == OptimizeRequest(workload="tpch:q03")

    def test_full_round_trip_with_bounds_and_budget(self):
        request = OptimizeRequest(
            workload="gen:star:3:7",
            algorithm="memoryless",
            scale="tiny",
            levels=3,
            precision="fine",
            metrics=("execution_time", "monetary_fees"),
            bounds=CostVector([1000.0, math.inf]),
            budget=Budget(max_invocations=2),
            objective="execution_time",
        )
        restored = OptimizeRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        assert restored == request

    def test_validation(self):
        with pytest.raises(ValueError):
            OptimizeRequest(workload="q03", levels=0)
        with pytest.raises(ValueError):
            OptimizeRequest(workload="q03", precision="ultra")
        with pytest.raises(ValueError):
            OptimizeRequest(workload="q03", scale="huge")
        with pytest.raises(ValueError):
            OptimizeRequest(workload="q03", metrics=("no_such_metric",))

    def test_metric_selection(self):
        metric_set = metric_set_from_names(("execution_time", "energy"))
        assert metric_set.names == ["execution_time", "energy"]
        with pytest.raises(ValueError, match="unknown metrics"):
            metric_set_from_names(("bogus",))


class TestResolveRequest:
    def test_resolves_workload_metrics_and_schedule(self):
        request = OptimizeRequest(
            workload="gen:chain:3:0",
            scale="tiny",
            levels=3,
            metrics=("execution_time", "monetary_fees"),
        )
        resolved = resolve_request(request)
        assert resolved.query.table_count == 3
        assert resolved.metric_set.names == ["execution_time", "monetary_fees"]
        assert resolved.schedule.levels == 3
        assert resolved.bounds == resolved.metric_set.unbounded_vector()
        assert resolved.factory.metric_set is resolved.metric_set

    def test_bounds_must_match_metric_dimensions(self):
        request = OptimizeRequest(
            workload="gen:chain:2:0",
            scale="tiny",
            metrics=("execution_time", "monetary_fees"),
            bounds=CostVector([1.0, 2.0, 3.0]),
        )
        with pytest.raises(ValueError, match="components"):
            resolve_request(request)

    def test_query_and_statistics_must_come_together(self):
        request = OptimizeRequest(workload="gen:chain:2:0", scale="tiny")
        resolved = resolve_request(request)
        with pytest.raises(ValueError, match="together"):
            resolve_request(request, query=resolved.query)
