"""Tests for the planner session: streaming, steering, budgets."""

import math

import pytest

from repro.api import Budget, OptimizeRequest, open_session, planner_registry
from repro.api.schema import (
    FINISH_DEADLINE,
    FINISH_EXHAUSTED,
    FINISH_INVOCATION_CAP,
    FINISH_SELECTED,
    FINISH_TARGET_ALPHA,
)
from repro.core.control import ChangeBounds, Continue, SelectPlan
from repro.core.resolution import ResolutionSchedule
from repro.costs.dominance import dominates
from tests.conftest import build_chain_query, build_factory


def make_session(algorithm="iama", levels=3, budget=None, bounds=None, continuous=False):
    query = build_chain_query()
    factory = build_factory(query)
    schedule = ResolutionSchedule(levels=levels, target_precision=1.05, precision_step=0.3)
    return planner_registry().open(
        algorithm,
        query=query,
        factory=factory,
        schedule=schedule,
        budget=budget,
        bounds=bounds,
        continuous=continuous,
    )


class TestStreaming:
    def test_full_sweep_streams_one_update_per_level(self):
        session = make_session(levels=3)
        updates = list(session.updates())
        assert [u.invocation.resolution for u in updates] == [0, 1, 2]
        assert [u.invocation.index for u in updates] == [1, 2, 3]
        assert session.finish_reason == FINISH_EXHAUSTED
        assert all(u.algorithm == "iama" for u in updates)

    def test_frontier_never_shrinks_for_passive_consumer(self):
        session = make_session(levels=4)
        sizes = [len(u.frontier) for u in session.updates()]
        assert sizes == sorted(sizes)

    def test_frontier_refinement_is_monotone(self):
        # Every tradeoff visualized at a coarser resolution stays dominated by
        # (or equal to) something in the finer frontier.
        session = make_session(levels=3)
        updates = list(session.updates())
        for earlier, later in zip(updates, updates[1:]):
            for cost in earlier.frontier_costs:
                assert any(
                    dominates(other, cost) for other in later.frontier_costs
                )

    def test_advance_after_finish_raises(self):
        session = make_session(levels=1)
        session.run()
        with pytest.raises(RuntimeError, match="finished"):
            session.advance()

    def test_single_invocation_planners_finish_after_one_update(self):
        for algorithm in ("oneshot", "exhaustive", "single_objective"):
            session = make_session(algorithm=algorithm, levels=3)
            updates = list(session.updates())
            assert len(updates) == 1
            assert session.finish_reason == FINISH_EXHAUSTED

    def test_elapsed_seconds_is_monotone(self):
        session = make_session(levels=3)
        elapsed = [u.elapsed_seconds for u in session.updates()]
        assert elapsed == sorted(elapsed)

    def test_continuous_session_keeps_refining_at_max_resolution(self):
        # Algorithm 1 taken literally: r <- min(r_M, r + 1), the loop only
        # ends on selection or budget -- interactive sessions use this mode.
        session = make_session(levels=2, continuous=True)
        for _ in range(5):
            update = session.step()
        assert not session.finished
        assert update.invocation.resolution == 1
        assert session.iteration == 5


class TestBudgets:
    def test_zero_deadline_still_admits_one_invocation(self):
        session = make_session(levels=5, budget=Budget(deadline_seconds=0.0))
        result = session.run()
        assert len(result.invocations) == 1
        assert result.finish_reason == FINISH_DEADLINE
        assert result.frontier_size > 0

    def test_invocation_cap(self):
        session = make_session(levels=5, budget=Budget(max_invocations=2))
        result = session.run()
        assert len(result.invocations) == 2
        assert result.finish_reason == FINISH_INVOCATION_CAP

    def test_target_alpha_stops_the_refinement_early(self):
        session = make_session(levels=5, budget=Budget(target_alpha=1.2))
        result = session.run()
        assert result.finish_reason == FINISH_TARGET_ALPHA
        assert result.invocations[-1].alpha <= 1.2
        assert len(result.invocations) < 5

    def test_target_alpha_defers_to_a_queued_bound_change(self):
        # Reaching the target precision under the OLD bounds must not end the
        # session when the user just changed them: the new bounds have no
        # frontier at any precision yet.
        session = make_session(levels=2, budget=Budget(target_alpha=2.0))
        first = session.advance()
        assert first.invocation.alpha <= 2.0
        bound = sorted(c[0] for c in first.frontier_costs)[-1]
        session.apply(ChangeBounds(first.invocation.bounds.with_component(0, bound)))
        assert not session.finished
        session.step()  # optimized under the new bounds; now alpha may finish it
        assert session.finish_reason == FINISH_TARGET_ALPHA

    def test_exhaustion_is_not_relabelled_by_budget_limits(self):
        # levels=2 with a cap of exactly 2: the sweep completes at the same
        # apply() that hits the cap; the sweep's own reason wins.
        session = make_session(levels=2, budget=Budget(max_invocations=2))
        result = session.run()
        assert result.finish_reason == FINISH_EXHAUSTED

    def test_selection_wins_over_budget(self):
        session = make_session(levels=3, budget=Budget(max_invocations=1))
        update = session.advance()
        session.apply(SelectPlan(plan=update.plans[0]))
        assert session.finish_reason == FINISH_SELECTED
        assert session.selected_plan is update.plans[0]


class TestSteering:
    def test_change_bounds_resets_the_resolution(self):
        session = make_session(levels=3)
        first = session.advance()
        time_bound = sorted(c[0] for c in first.frontier_costs)[-1]
        session.apply(ChangeBounds(first.invocation.bounds.with_component(0, time_bound)))
        assert session.resolution == 0
        second = session.advance()
        assert second.invocation.resolution == 0
        assert all(cost[0] <= time_bound for cost in second.frontier_costs)

    def test_steer_queues_for_the_next_apply(self):
        session = make_session(levels=3)
        collected = []
        for update in session.updates():
            collected.append(update)
            if update.invocation.index == 1:
                session.select(chooser=lambda plans: plans[0])
        assert session.finish_reason == FINISH_SELECTED
        assert session.selected_plan is collected[0].plans[0]

    def test_explicit_action_discards_a_queued_steer(self):
        # steer() carries a reaction to "the next apply"; an explicit action
        # supersedes it, so the stale steer must not fire iterations later.
        session = make_session(levels=4)
        first = session.advance()
        tight = sorted(c[0] for c in first.frontier_costs)[0]
        session.steer(ChangeBounds(first.invocation.bounds.with_component(0, tight)))
        session.apply(Continue())           # the user reconsidered
        assert session.resolution == 1      # refined, bounds unchanged
        session.step()                      # plain step: queue must be empty
        assert session.resolution == 2
        assert session.bounds == first.invocation.bounds  # bounds untouched

    def test_bounds_with_wrong_dimensionality_are_rejected(self):
        from repro.costs.vector import CostVector

        session = make_session(levels=2)
        session.advance()
        with pytest.raises(ValueError, match="components"):
            session.apply(ChangeBounds(CostVector([1.0])))

    def test_bound_change_lets_single_invocation_planners_reoptimize(self):
        session = make_session(algorithm="oneshot", levels=2)
        first = session.advance()
        tight = sorted(c[0] for c in first.frontier_costs)[0]
        session.apply(ChangeBounds(first.invocation.bounds.with_component(0, tight)))
        assert not session.finished
        second = session.step()
        assert all(cost[0] <= tight for cost in second.frontier_costs)
        assert session.finish_reason == FINISH_EXHAUSTED


class TestResult:
    def test_result_reflects_the_session(self):
        session = make_session(levels=2)
        result = session.run()
        assert result.algorithm == "iama"
        assert result.query_name == session.query.name
        assert result.table_count == 3
        assert len(result.invocations) == 2
        assert result.total_seconds == sum(result.durations_seconds)
        assert result.plans_generated > 0
        assert result.frontier_size == result.invocations[-1].frontier_size

    def test_open_session_resolves_requests_end_to_end(self):
        request = OptimizeRequest(
            workload="gen:star:3:5",
            algorithm="memoryless",
            scale="tiny",
            levels=2,
        )
        result = open_session(request).run()
        assert result.algorithm == "memoryless"
        assert result.table_count == 3
        assert result.finish_reason == FINISH_EXHAUSTED
        assert math.isinf(result.invocations[0].bounds[0])

    def test_single_objective_respects_the_requested_objective(self):
        request = OptimizeRequest(
            workload="gen:chain:3:0",
            algorithm="single_objective",
            scale="tiny",
            levels=1,
            objective="monetary_fees",
            metrics=("execution_time", "monetary_fees"),
        )
        session = open_session(request)
        result = session.run()
        assert session.driver.optimizer.metric_name == "monetary_fees"
        assert result.frontier_size == 1
