"""Regression tests: budget deadlines run on the monotonic clock.

Sessions under the planning service's scheduler can be parked, resumed, and
timesliced across threads; if the deadline accounting read wall-clock
``time.time()``, an NTP step or DST adjustment would make sessions over- or
under-run their budget.  The session module therefore measures all elapsed
time through ``repro.api.session._now`` (= ``time.monotonic``), and these
tests pin that contract down with fake clocks.
"""

from __future__ import annotations

import inspect

import pytest

import repro.api.session as session_module
from repro.api import Budget, OptimizeRequest, open_session
from repro.api.schema import FINISH_DEADLINE, FINISH_EXHAUSTED


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self, start: float = 1_000.0):
        self.value = start

    def __call__(self) -> float:
        return self.value

    def advance(self, seconds: float) -> None:
        self.value += seconds


@pytest.fixture()
def fake_clock(monkeypatch):
    clock = FakeClock()
    monkeypatch.setattr(session_module, "_now", clock)
    return clock


def _session(deadline: float, levels: int = 5):
    request = OptimizeRequest(
        workload="gen:chain:3:0",
        levels=levels,
        scale="tiny",
        budget=Budget(deadline_seconds=deadline),
    )
    return open_session(request)


class TestMonotonicDeadlines:
    def test_deadline_fires_on_monotonic_elapsed_time(self, fake_clock):
        session = _session(deadline=10.0)
        session.step()
        assert not session.finished
        fake_clock.advance(10.0)
        session.step()
        assert session.finished
        assert session.finish_reason == FINISH_DEADLINE

    def test_wall_clock_jumps_do_not_affect_the_deadline(
        self, fake_clock, monkeypatch
    ):
        import time as time_module

        session = _session(deadline=60.0, levels=3)
        # A wall clock jumping hours backwards and forwards between
        # invocations must be invisible: only the fake monotonic clock
        # (which stands still here) feeds the deadline accounting.
        jumps = iter([-7200.0, 7200.0, -86400.0, 86400.0, 0.0, 0.0])
        real_time = time_module.time

        def jumping_wall_clock():
            return real_time() + next(jumps, 0.0)

        monkeypatch.setattr(time_module, "time", jumping_wall_clock)
        result = session.run()
        assert result.finish_reason == FINISH_EXHAUSTED  # never the deadline

    def test_deadline_zero_still_admits_one_invocation(self, fake_clock):
        session = _session(deadline=0.0)
        update = session.step()
        assert update.invocation.index == 1
        assert session.finish_reason == FINISH_DEADLINE

    def test_resume_restarts_deadline_accounting(self, fake_clock):
        session = _session(deadline=10.0, levels=6)
        session.step()
        fake_clock.advance(10.0)
        session.step()
        assert session.finish_reason == FINISH_DEADLINE
        # Parked for a long time, then resumed: the new budget pays for new
        # work only — the parked hours must not count against it.
        fake_clock.advance(3600.0)
        session.resume(Budget(deadline_seconds=10.0))
        assert not session.finished
        session.step()
        assert not session.finished
        fake_clock.advance(10.0)
        session.step()
        assert session.finish_reason == FINISH_DEADLINE

    def test_session_module_never_reads_the_wall_clock(self):
        # AST-level check: no call or reference to time.time/time.perf_counter
        # anywhere in the session module (comments may mention them).
        import ast

        tree = ast.parse(inspect.getsource(session_module))
        offenders = [
            node.attr
            for node in ast.walk(tree)
            if isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "time"
            and node.attr in ("time", "perf_counter")
        ]
        assert not offenders, f"session module reads non-monotonic clocks: {offenders}"


class TestResumeHook:
    def test_resume_clears_budget_finish_reasons(self):
        request = OptimizeRequest(
            workload="gen:chain:3:0",
            levels=3,
            scale="tiny",
            budget=Budget(max_invocations=1),
        )
        session = open_session(request)
        session.step()
        assert session.finish_reason == "invocation_cap"
        assert session.resumable
        session.resume(Budget())
        result = session.run()
        assert result.finish_reason == FINISH_EXHAUSTED
        # Bit-identical to an uncapped serial run.
        serial = open_session(request.with_overrides(budget=Budget())).run()
        assert [tuple(s.cost) for s in result.frontier] == [
            tuple(s.cost) for s in serial.frontier
        ]

    def test_resume_rejects_terminal_finish_reasons(self):
        request = OptimizeRequest(workload="gen:chain:3:0", levels=2, scale="tiny")
        session = open_session(request)
        session.run()
        assert session.finish_reason == FINISH_EXHAUSTED
        assert not session.resumable
        with pytest.raises(RuntimeError):
            session.resume(Budget())

    def test_resume_before_finishing_just_swaps_the_budget(self):
        request = OptimizeRequest(workload="gen:chain:3:0", levels=3, scale="tiny")
        session = open_session(request)
        session.step()
        session.resume(Budget(max_invocations=2))
        result = session.run()
        assert result.finish_reason == "invocation_cap"
        assert len(result.invocations) == 2
