"""Tests for the planner registry: built-ins, aliases, plugins."""

import pytest

from repro.api.planners import DriverStep, PlannerDriver
from repro.api.registry import (
    PlannerRegistry,
    planner_registry,
    register_planner,
)
from repro.core.resolution import ResolutionSchedule
from tests.conftest import build_chain_query, build_factory

BUILTINS = ("exhaustive", "iama", "memoryless", "oneshot", "single_objective")


class TestDefaultRegistry:
    def test_all_builtin_planners_are_registered(self):
        assert tuple(planner_registry().names()) == BUILTINS

    def test_bench_algorithm_values_resolve_as_aliases(self):
        from repro.bench.runner import AlgorithmName

        registry = planner_registry()
        assert registry.get("incremental_anytime").name == "iama"
        assert registry.get("one_shot").name == "oneshot"
        for algorithm in AlgorithmName:
            assert algorithm.value in registry
            assert algorithm.planner in BUILTINS

    def test_lookup_normalizes_separators_and_case(self):
        registry = planner_registry()
        assert registry.get("Single-Objective").name == "single_objective"
        assert registry.get(" IAMA ").name == "iama"

    def test_unknown_planner_lists_the_registered_names(self):
        with pytest.raises(KeyError, match="iama.*memoryless.*oneshot"):
            planner_registry().get("quantum")

    def test_describe_returns_summaries(self):
        described = planner_registry().describe()
        assert set(described) == set(BUILTINS)
        assert all(described[name] for name in BUILTINS)


class StubDriver(PlannerDriver):
    """A degenerate planner: empty frontier, zero-cost invocations."""

    name = "stub"
    refines = False

    def invoke(self, bounds, resolution):
        return DriverStep(
            alpha=1.0, duration_seconds=0.0, plans=[], native=None
        )


class TestPluginRegistration:
    def make_registry(self):
        registry = PlannerRegistry()
        registry.register("stub", StubDriver, summary="degenerate")
        return registry

    def test_registered_plugin_opens_sessions(self):
        registry = self.make_registry()
        query = build_chain_query(("customers", "orders"))
        factory = build_factory(query)
        session = registry.open(
            "stub", query=query, factory=factory,
            schedule=ResolutionSchedule(levels=1, target_precision=1.01),
        )
        result = session.run()
        assert result.algorithm == "stub"
        assert result.finish_reason == "exhausted"
        assert result.frontier_size == 0

    def test_duplicate_names_are_rejected_without_replace(self):
        registry = self.make_registry()
        with pytest.raises(ValueError, match="already registered"):
            registry.register("stub", StubDriver)
        registry.register("stub", StubDriver, replace=True)  # explicit override

    def test_invalid_names_are_rejected(self):
        registry = PlannerRegistry()
        with pytest.raises(ValueError, match="invalid planner name"):
            registry.register("", StubDriver)
        with pytest.raises(ValueError, match="invalid planner name"):
            registry.register("has space", StubDriver)

    def test_decorator_registers_into_a_custom_registry(self):
        registry = PlannerRegistry()

        @register_planner("stub2", summary="also degenerate", registry=registry)
        class Another(StubDriver):
            name = "stub2"

        assert registry.get("stub2").factory is Another
        # The default registry is untouched.
        assert "stub2" not in planner_registry()

    def test_aliases_resolve_to_the_canonical_planner(self):
        registry = PlannerRegistry()
        registry.register("stub", StubDriver, aliases=("degenerate",))
        assert registry.get("degenerate").name == "stub"
        assert registry.names() == ["stub"]
        assert registry.names(include_aliases=True) == ["degenerate", "stub"]

    def test_registration_is_canonicalized_like_lookup(self):
        # A mixed-case or dash-separated registration must be reachable.
        registry = PlannerRegistry()
        registry.register("My-Algo", StubDriver, aliases=("My-Alias",))
        assert registry.get("my_algo").factory is StubDriver
        assert registry.get("MY-ALIAS").name == "my_algo"
        assert registry.names() == ["my_algo"]

    def test_replace_promotes_an_alias_to_a_planner(self):
        # Replacing a name that was an alias must drop the stale alias entry;
        # otherwise get() would keep resolving to the old canonical planner.
        registry = PlannerRegistry()
        registry.register("stub", StubDriver, aliases=("degenerate",))

        class Promoted(StubDriver):
            name = "degenerate"

        registry.register("degenerate", Promoted, replace=True)
        assert registry.get("degenerate").factory is Promoted
        assert registry.get("stub").factory is StubDriver
