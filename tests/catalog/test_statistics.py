"""Unit tests for :mod:`repro.catalog.statistics`."""

import pytest

from repro.catalog.statistics import ColumnStatistics, StatisticsCatalog, TableStatistics


class TestStatisticsValues:
    def test_column_statistics_validation(self):
        with pytest.raises(ValueError):
            ColumnStatistics(distinct_values=0)
        with pytest.raises(ValueError):
            ColumnStatistics(distinct_values=10, null_fraction=1.0)

    def test_table_statistics_validation(self):
        with pytest.raises(ValueError):
            TableStatistics(row_count=0, page_count=1)
        with pytest.raises(ValueError):
            TableStatistics(row_count=1, page_count=0)


class TestStatisticsCatalog:
    def test_row_counts_come_from_schema(self, small_schema):
        catalog = StatisticsCatalog(small_schema)
        assert catalog.row_count("orders") == 20_000

    def test_page_counts_come_from_schema(self, small_schema):
        catalog = StatisticsCatalog(small_schema)
        assert catalog.page_count("orders") == small_schema.table("orders").page_count

    def test_declared_distinct_values_are_used(self, small_schema):
        catalog = StatisticsCatalog(small_schema)
        assert catalog.distinct_values("orders", "customer_id") == 1_000

    def test_missing_distinct_values_fall_back_to_fraction(self, small_schema):
        catalog = StatisticsCatalog(small_schema, default_distinct_fraction=0.5)
        # The "segment" column of customers declares 5 distinct values, so use
        # a column without declaration by overriding the schema lookup path:
        # the items.payload-like case is simulated by the fallback fraction.
        from repro.catalog.schema import Column, Table, Schema

        table = Table("plain", [Column("data")], row_count=100)
        catalog = StatisticsCatalog(Schema("s", [table]), default_distinct_fraction=0.5)
        assert catalog.distinct_values("plain", "data") == 50

    def test_invalid_default_fraction(self, small_schema):
        with pytest.raises(ValueError):
            StatisticsCatalog(small_schema, default_distinct_fraction=0.0)

    def test_table_override(self, small_schema):
        catalog = StatisticsCatalog(small_schema)
        catalog.override_table("orders", TableStatistics(row_count=5, page_count=1))
        assert catalog.row_count("orders") == 5

    def test_column_override(self, small_schema):
        catalog = StatisticsCatalog(small_schema)
        catalog.override_column(
            "orders", "customer_id", ColumnStatistics(distinct_values=7)
        )
        assert catalog.distinct_values("orders", "customer_id") == 7

    def test_override_unknown_table_raises(self, small_schema):
        catalog = StatisticsCatalog(small_schema)
        with pytest.raises(KeyError):
            catalog.override_table("missing", TableStatistics(row_count=1, page_count=1))

    def test_override_unknown_column_raises(self, small_schema):
        catalog = StatisticsCatalog(small_schema)
        with pytest.raises(KeyError):
            catalog.override_column("orders", "missing", ColumnStatistics(distinct_values=1))
