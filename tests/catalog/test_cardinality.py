"""Unit tests for :mod:`repro.catalog.cardinality`."""

import pytest

from repro.catalog.cardinality import CardinalityEstimator, JoinGraph, JoinPredicate
from repro.catalog.statistics import StatisticsCatalog


@pytest.fixture
def chain_graph():
    return JoinGraph(
        tables=["customers", "orders", "items"],
        predicates=[
            JoinPredicate("orders", "customer_id", "customers", "id"),
            JoinPredicate("items", "order_id", "orders", "id"),
        ],
        base_selectivities={"customers": 0.5},
    )


@pytest.fixture
def estimator(small_statistics, chain_graph):
    return CardinalityEstimator(small_statistics, chain_graph)


class TestJoinPredicate:
    def test_self_join_predicate_rejected(self):
        with pytest.raises(ValueError):
            JoinPredicate("t", "a", "t", "b")

    def test_invalid_selectivity_rejected(self):
        with pytest.raises(ValueError):
            JoinPredicate("a", "x", "b", "y", selectivity=0.0)

    def test_connects(self):
        predicate = JoinPredicate("a", "x", "b", "y")
        assert predicate.connects({"a"}, {"b"})
        assert predicate.connects({"b"}, {"a"})
        assert not predicate.connects({"a"}, {"c"})

    def test_tables_property(self):
        assert JoinPredicate("a", "x", "b", "y").tables == frozenset({"a", "b"})


class TestJoinGraph:
    def test_duplicate_tables_rejected(self):
        with pytest.raises(ValueError):
            JoinGraph(tables=["a", "a"])

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            JoinGraph(tables=[])

    def test_predicate_outside_graph_rejected(self):
        with pytest.raises(ValueError):
            JoinGraph(tables=["a"], predicates=[JoinPredicate("a", "x", "b", "y")])

    def test_selectivity_for_unknown_table_rejected(self):
        with pytest.raises(ValueError):
            JoinGraph(tables=["a"], base_selectivities={"b": 0.5})

    def test_selectivity_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            JoinGraph(tables=["a"], base_selectivities={"a": 0.0})

    def test_base_selectivity_defaults_to_one(self, chain_graph):
        assert chain_graph.base_selectivity("orders") == 1.0
        assert chain_graph.base_selectivity("customers") == 0.5

    def test_predicates_within(self, chain_graph):
        inner = chain_graph.predicates_within({"customers", "orders"})
        assert len(inner) == 1
        assert chain_graph.predicates_within({"customers", "items"}) == []

    def test_predicates_between(self, chain_graph):
        between = chain_graph.predicates_between({"customers"}, {"orders", "items"})
        assert len(between) == 1

    def test_connectivity(self, chain_graph):
        assert chain_graph.is_connected({"customers", "orders"})
        assert chain_graph.is_connected({"customers", "orders", "items"})
        assert not chain_graph.is_connected({"customers", "items"})
        assert chain_graph.is_connected({"items"})
        assert not chain_graph.is_connected([])

    def test_neighbors(self, chain_graph):
        assert chain_graph.neighbors("orders") == ["customers", "items"]
        assert chain_graph.neighbors("customers") == ["orders"]


class TestCardinalityEstimator:
    def test_base_cardinality_applies_selectivity(self, estimator):
        assert estimator.base_cardinality("customers") == pytest.approx(500.0)
        assert estimator.base_cardinality("orders") == pytest.approx(20_000.0)

    def test_predicate_selectivity_uses_max_distinct(self, estimator):
        predicate = estimator.join_graph.predicates[0]
        # customers.id has 1000 distinct values, orders.customer_id 1000.
        assert estimator.predicate_selectivity(predicate) == pytest.approx(1 / 1000)

    def test_explicit_selectivity_wins(self, small_statistics):
        graph = JoinGraph(
            tables=["customers", "orders"],
            predicates=[
                JoinPredicate("orders", "customer_id", "customers", "id", selectivity=0.01)
            ],
        )
        estimator = CardinalityEstimator(small_statistics, graph)
        assert estimator.predicate_selectivity(graph.predicates[0]) == pytest.approx(0.01)

    def test_single_table_cardinality(self, estimator):
        assert estimator.cardinality({"orders"}) == pytest.approx(20_000.0)

    def test_two_table_join_cardinality(self, estimator):
        # 500 customers x 20000 orders x 1/1000 = 10000
        assert estimator.cardinality({"customers", "orders"}) == pytest.approx(10_000.0)

    def test_three_table_join_cardinality(self, estimator):
        expected = 500 * 20_000 * 100_000 * (1 / 1000) * (1 / 20_000)
        assert estimator.cardinality({"customers", "orders", "items"}) == pytest.approx(expected)

    def test_join_cardinality_requires_disjoint_operands(self, estimator):
        with pytest.raises(ValueError):
            estimator.join_cardinality({"orders"}, {"orders", "items"})

    def test_join_cardinality_equals_union_cardinality(self, estimator):
        assert estimator.join_cardinality({"customers"}, {"orders"}) == estimator.cardinality(
            {"customers", "orders"}
        )

    def test_unknown_table_raises(self, estimator):
        with pytest.raises(KeyError):
            estimator.cardinality({"unknown"})

    def test_empty_set_raises(self, estimator):
        with pytest.raises(ValueError):
            estimator.cardinality(set())

    def test_cardinality_is_at_least_one(self, small_statistics):
        graph = JoinGraph(
            tables=["customers", "orders"],
            predicates=[
                JoinPredicate(
                    "orders", "customer_id", "customers", "id", selectivity=1e-12
                )
            ],
        )
        estimator = CardinalityEstimator(small_statistics, graph)
        assert estimator.cardinality({"customers", "orders"}) >= 1.0

    def test_cache_and_clear(self, estimator):
        first = estimator.cardinality({"customers", "orders"})
        estimator.clear_cache()
        assert estimator.cardinality({"customers", "orders"}) == first

    def test_cross_product_without_predicate(self, small_statistics):
        graph = JoinGraph(tables=["customers", "items"])
        estimator = CardinalityEstimator(small_statistics, graph)
        assert estimator.cardinality({"customers", "items"}) == pytest.approx(
            1_000 * 100_000
        )

    def test_page_count_passthrough(self, estimator, small_statistics):
        assert estimator.page_count("orders") == small_statistics.page_count("orders")
