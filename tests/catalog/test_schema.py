"""Unit tests for :mod:`repro.catalog.schema`."""

import pytest

from repro.catalog.schema import Column, ForeignKey, Schema, Table


def make_table(name="t", rows=100):
    return Table(name, [Column("id", "int", distinct_values=rows)], row_count=rows)


class TestColumn:
    def test_valid_column(self):
        column = Column("id", "int", distinct_values=10)
        assert column.name == "id"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Column("")

    def test_non_positive_distinct_values_rejected(self):
        with pytest.raises(ValueError):
            Column("id", distinct_values=0)

    def test_distinct_values_optional(self):
        assert Column("payload").distinct_values is None


class TestTable:
    def test_column_lookup(self):
        table = make_table()
        assert table.column("id").name == "id"

    def test_unknown_column_raises_with_hint(self):
        with pytest.raises(KeyError, match="id"):
            make_table().column("missing")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [Column("id"), Column("id")], row_count=10)

    def test_table_needs_columns(self):
        with pytest.raises(ValueError):
            Table("t", [], row_count=10)

    def test_row_count_must_be_positive(self):
        with pytest.raises(ValueError):
            make_table(rows=0)

    def test_page_count_rounds_up(self):
        table = Table("t", [Column("id")], row_count=101, page_size_rows=100)
        assert table.page_count == 2

    def test_page_count_is_at_least_one(self):
        table = Table("t", [Column("id")], row_count=5, page_size_rows=100)
        assert table.page_count == 1

    def test_equality_is_by_name(self):
        assert make_table("a") == make_table("a")
        assert make_table("a") != make_table("b")

    def test_has_column(self):
        assert make_table().has_column("id")
        assert not make_table().has_column("other")


class TestForeignKey:
    def test_reversed(self):
        fk = ForeignKey("orders", "customer_id", "customers", "id")
        reverse = fk.reversed()
        assert reverse.from_table == "customers"
        assert reverse.to_column == "customer_id"


class TestSchema:
    def _make_schema(self):
        customers = Table("customers", [Column("id")], row_count=10)
        orders = Table("orders", [Column("id"), Column("customer_id")], row_count=100)
        return Schema(
            "shop",
            [customers, orders],
            [ForeignKey("orders", "customer_id", "customers", "id")],
        )

    def test_table_lookup(self):
        schema = self._make_schema()
        assert schema.table("orders").row_count == 100

    def test_unknown_table_raises(self):
        with pytest.raises(KeyError):
            self._make_schema().table("missing")

    def test_contains_and_len(self):
        schema = self._make_schema()
        assert "orders" in schema
        assert "missing" not in schema
        assert len(schema) == 2

    def test_duplicate_tables_rejected(self):
        table = Table("t", [Column("id")], row_count=1)
        with pytest.raises(ValueError):
            Schema("s", [table, table])

    def test_foreign_key_endpoints_validated(self):
        customers = Table("customers", [Column("id")], row_count=10)
        with pytest.raises(KeyError):
            Schema("s", [customers], [ForeignKey("orders", "x", "customers", "id")])
        orders = Table("orders", [Column("id")], row_count=10)
        with pytest.raises(ValueError):
            Schema(
                "s",
                [customers, orders],
                [ForeignKey("orders", "customer_id", "customers", "id")],
            )

    def test_foreign_keys_between(self):
        schema = self._make_schema()
        assert len(schema.foreign_keys_between("orders", "customers")) == 1
        assert len(schema.foreign_keys_between("customers", "orders")) == 1
        assert schema.foreign_keys_between("orders", "orders") == []

    def test_iteration(self):
        schema = self._make_schema()
        assert {table.name for table in schema} == {"customers", "orders"}
