"""Unit tests for :mod:`repro.costs.pareto`."""

import pytest

from repro.costs.pareto import (
    ParetoSet,
    approximation_error,
    hypervolume_2d,
    is_alpha_cover,
    is_pareto_optimal,
    pareto_filter,
)
from repro.costs.vector import CostVector


def vectors(*tuples):
    return [CostVector(t) for t in tuples]


class TestParetoSet:
    def _make(self):
        return ParetoSet(cost_of=lambda cost: cost)

    def test_insert_into_empty_set(self):
        frontier = self._make()
        assert frontier.insert(CostVector([1, 2]))
        assert len(frontier) == 1

    def test_dominated_insert_is_rejected(self):
        frontier = self._make()
        frontier.insert(CostVector([1, 1]))
        assert not frontier.insert(CostVector([2, 2]))
        assert len(frontier) == 1

    def test_duplicate_cost_is_rejected(self):
        frontier = self._make()
        frontier.insert(CostVector([1, 1]))
        assert not frontier.insert(CostVector([1, 1]))

    def test_insert_evicts_dominated_items(self):
        frontier = self._make()
        frontier.insert(CostVector([3, 3]))
        frontier.insert(CostVector([4, 1]))
        assert frontier.insert(CostVector([1, 1]))
        costs = set(frontier.costs())
        assert CostVector([3, 3]) not in costs
        assert CostVector([4, 1]) not in costs
        assert CostVector([1, 1]) in costs

    def test_incomparable_items_coexist(self):
        frontier = self._make()
        frontier.insert(CostVector([1, 3]))
        frontier.insert(CostVector([3, 1]))
        assert len(frontier) == 2

    def test_insert_all_counts_acceptances(self):
        frontier = self._make()
        accepted = frontier.insert_all(vectors((1, 3), (3, 1), (4, 4)))
        assert accepted == 2

    def test_dominated_by_any(self):
        frontier = self._make()
        frontier.insert(CostVector([1, 1]))
        assert frontier.dominated_by_any(CostVector([2, 2]))
        assert not frontier.dominated_by_any(CostVector([0.5, 0.5]))

    def test_covers_with_alpha(self):
        frontier = self._make()
        frontier.insert(CostVector([1.05, 1.05]))
        assert not frontier.covers(CostVector([1.0, 1.0]), alpha=1.0)
        assert frontier.covers(CostVector([1.0, 1.0]), alpha=1.1)

    def test_items_returns_copy(self):
        frontier = self._make()
        frontier.insert(CostVector([1, 1]))
        items = frontier.items()
        items.clear()
        assert len(frontier) == 1


class TestParetoFilter:
    def test_removes_strictly_dominated(self):
        frontier = pareto_filter(vectors((1, 1), (2, 2), (1, 3)))
        assert CostVector([2, 2]) not in frontier
        assert CostVector([1, 1]) in frontier

    def test_keeps_incomparable_points(self):
        frontier = pareto_filter(vectors((1, 3), (3, 1)))
        assert len(frontier) == 2

    def test_collapses_duplicates(self):
        frontier = pareto_filter(vectors((1, 1), (1, 1)))
        assert len(frontier) == 1

    def test_empty_input(self):
        assert pareto_filter([]) == []

    def test_is_pareto_optimal(self):
        universe = vectors((1, 3), (3, 1), (2, 2))
        assert is_pareto_optimal(CostVector([2, 2]), universe)
        assert not is_pareto_optimal(CostVector([4, 4]), universe)


class TestAlphaCover:
    def test_exact_cover(self):
        universe = vectors((1, 2), (2, 1))
        assert is_alpha_cover(universe, universe, alpha=1.0)

    def test_partial_cover_fails(self):
        candidate = vectors((1, 2))
        universe = vectors((1, 2), (2, 1))
        assert not is_alpha_cover(candidate, universe, alpha=1.0)

    def test_alpha_relaxation_enables_cover(self):
        candidate = vectors((1.2, 1.2))
        universe = vectors((1.0, 1.0))
        assert not is_alpha_cover(candidate, universe, alpha=1.0)
        assert is_alpha_cover(candidate, universe, alpha=1.3)

    def test_bounded_cover_ignores_out_of_bounds_plans(self):
        candidate = vectors((1, 1))
        universe = vectors((1, 1), (100, 100))
        bounds = CostVector([10, 10])
        assert is_alpha_cover(candidate, universe, alpha=1.0, bounds=bounds)


class TestApproximationError:
    def test_perfect_candidate_has_error_one(self):
        universe = vectors((1, 2), (2, 1))
        assert approximation_error(universe, universe) == pytest.approx(1.0)

    def test_empty_candidate_has_infinite_error(self):
        assert approximation_error([], vectors((1, 1))) == float("inf")

    def test_empty_universe_has_error_one(self):
        assert approximation_error(vectors((1, 1)), []) == pytest.approx(1.0)

    def test_error_matches_worst_ratio(self):
        candidate = vectors((1.2, 1.0))
        universe = vectors((1.0, 1.0))
        assert approximation_error(candidate, universe) == pytest.approx(1.2)

    def test_bounded_error_ignores_out_of_bounds(self):
        candidate = vectors((1.0, 1.0))
        universe = vectors((1.0, 1.0), (0.1, 0.1))
        bounds = CostVector([0.5, 0.5])
        # Only the (0.1, 0.1) point is within bounds, so the error is 10.
        assert approximation_error(candidate, universe, bounds=bounds) == pytest.approx(10.0)

    def test_error_is_consistent_with_cover_check(self):
        candidate = vectors((1.3, 0.9))
        universe = vectors((1.0, 1.0), (0.8, 1.5))
        error = approximation_error(candidate, universe)
        assert is_alpha_cover(candidate, universe, alpha=error + 1e-9)


class TestHypervolume:
    def test_single_point(self):
        volume = hypervolume_2d(vectors((1, 1)), reference=(2, 2))
        assert volume == pytest.approx(1.0)

    def test_dominating_point_adds_area(self):
        sparse = hypervolume_2d(vectors((1, 1)), reference=(4, 4))
        rich = hypervolume_2d(vectors((1, 1), (0.5, 3)), reference=(4, 4))
        assert rich > sparse

    def test_points_outside_reference_are_ignored(self):
        volume = hypervolume_2d(vectors((5, 5)), reference=(2, 2))
        assert volume == 0.0

    def test_empty_input(self):
        assert hypervolume_2d([], reference=(1, 1)) == 0.0

    def test_requires_two_dimensions(self):
        with pytest.raises(ValueError):
            hypervolume_2d(vectors((1, 2, 3)), reference=(1, 1))
