"""Unit tests for :mod:`repro.costs.aggregation`."""

import pytest

from repro.costs.aggregation import (
    MaxAggregation,
    MinAggregation,
    PipelineMaxAggregation,
    PrecisionLossAggregation,
    ScaledSumAggregation,
    SumAggregation,
    combine_many,
)


class TestSumAggregation:
    def test_combines_by_addition(self):
        assert SumAggregation().combine(1.0, 2.0, 0.5) == pytest.approx(3.5)

    def test_is_monotone(self):
        assert SumAggregation().is_monotone()


class TestMaxAggregation:
    def test_combines_by_maximum(self):
        assert MaxAggregation().combine(1.0, 4.0, 2.0) == pytest.approx(4.0)

    def test_local_cost_can_dominate(self):
        assert MaxAggregation().combine(1.0, 2.0, 7.0) == pytest.approx(7.0)

    def test_is_monotone(self):
        assert MaxAggregation().is_monotone()


class TestPipelineMaxAggregation:
    def test_combines_max_plus_local(self):
        assert PipelineMaxAggregation().combine(3.0, 5.0, 2.0) == pytest.approx(7.0)

    def test_is_monotone(self):
        assert PipelineMaxAggregation().is_monotone()


class TestMinAggregation:
    def test_combines_min_plus_local(self):
        assert MinAggregation().combine(3.0, 5.0, 1.0) == pytest.approx(4.0)

    def test_is_not_monotone(self):
        # min aggregation may produce a value below one of the inputs, which
        # breaks the monotone-cost-aggregation assumption of Theorem 2.
        assert not MinAggregation().is_monotone()
        assert MinAggregation().combine(3.0, 5.0, 0.0) < 5.0


class TestScaledSumAggregation:
    def test_scales_operands(self):
        aggregation = ScaledSumAggregation(scale_left=2.0, scale_right=3.0)
        assert aggregation.combine(1.0, 1.0, 0.5) == pytest.approx(5.5)

    def test_monotone_only_with_scales_at_least_one(self):
        assert ScaledSumAggregation(1.0, 1.5).is_monotone()
        assert not ScaledSumAggregation(0.5, 1.0).is_monotone()

    def test_rejects_non_positive_scales(self):
        with pytest.raises(ValueError):
            ScaledSumAggregation(scale_left=0.0)


class TestPrecisionLossAggregation:
    def test_no_loss_inputs_produce_no_loss(self):
        assert PrecisionLossAggregation().combine(0.0, 0.0, 0.0) == pytest.approx(0.0)

    def test_single_lossy_input_propagates(self):
        assert PrecisionLossAggregation().combine(0.5, 0.0, 0.0) == pytest.approx(0.5)

    def test_losses_combine_multiplicatively(self):
        combined = PrecisionLossAggregation().combine(0.5, 0.5, 0.0)
        assert combined == pytest.approx(0.75)

    def test_result_stays_in_unit_interval(self):
        assert PrecisionLossAggregation().combine(1.0, 1.0, 1.0) <= 1.0

    def test_is_monotone(self):
        aggregation = PrecisionLossAggregation()
        assert aggregation.is_monotone()
        assert aggregation.combine(0.3, 0.2, 0.0) >= 0.3


class TestCombineMany:
    def test_folds_over_values(self):
        assert combine_many(SumAggregation(), [1.0, 2.0, 3.0], local=0.5) == pytest.approx(6.5)

    def test_empty_values_return_local(self):
        assert combine_many(SumAggregation(), [], local=2.0) == pytest.approx(2.0)

    def test_single_value(self):
        assert combine_many(MaxAggregation(), [4.0], local=1.0) == pytest.approx(4.0)
