"""Unit tests for :mod:`repro.costs.dominance`."""

import pytest

from repro.costs.dominance import (
    approximately_dominates,
    dominates,
    exceeds_bounds,
    incomparable,
    strictly_dominates,
    within_bounds,
)
from repro.costs.vector import CostVector


class TestDominates:
    def test_equal_vectors_dominate_each_other(self):
        a = CostVector([1, 2])
        assert dominates(a, a)

    def test_lower_vector_dominates(self):
        assert dominates(CostVector([1, 2]), CostVector([2, 2]))

    def test_higher_component_prevents_domination(self):
        assert not dominates(CostVector([3, 1]), CostVector([2, 2]))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            dominates(CostVector([1]), CostVector([1, 2]))

    def test_infinite_bound_dominated_by_everything(self):
        assert dominates(CostVector([5, 5]), CostVector.infinite(2))


class TestStrictDominance:
    def test_requires_strict_improvement_somewhere(self):
        assert not strictly_dominates(CostVector([1, 2]), CostVector([1, 2]))

    def test_strictly_better_on_one_metric(self):
        assert strictly_dominates(CostVector([1, 1]), CostVector([1, 2]))

    def test_not_strict_when_worse_somewhere(self):
        assert not strictly_dominates(CostVector([1, 3]), CostVector([2, 2]))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            strictly_dominates(CostVector([1]), CostVector([1, 2]))


class TestApproximateDominance:
    def test_alpha_one_equals_dominance(self):
        a, b = CostVector([1, 2]), CostVector([1, 2])
        assert approximately_dominates(a, b, 1.0) == dominates(a, b)

    def test_alpha_relaxes_comparison(self):
        worse = CostVector([1.05, 1.05])
        better = CostVector([1.0, 1.0])
        assert not dominates(worse, better)
        assert approximately_dominates(worse, better, 1.1)

    def test_alpha_below_one_is_rejected(self):
        with pytest.raises(ValueError):
            approximately_dominates(CostVector([1]), CostVector([1]), 0.9)

    def test_zero_target_needs_zero_candidate(self):
        assert approximately_dominates(CostVector([0.0]), CostVector([0.0]), 1.5)
        assert not approximately_dominates(CostVector([0.1]), CostVector([0.0]), 1.5)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            approximately_dominates(CostVector([1]), CostVector([1, 2]), 1.5)


class TestBounds:
    def test_within_bounds(self):
        assert within_bounds(CostVector([1, 2]), CostVector([2, 2]))

    def test_exceeds_bounds(self):
        assert exceeds_bounds(CostVector([3, 1]), CostVector([2, 2]))

    def test_infinite_bounds_never_exceeded(self):
        assert within_bounds(CostVector([1e12, 1e12]), CostVector.infinite(2))


class TestIncomparability:
    def test_incomparable_tradeoffs(self):
        assert incomparable(CostVector([1, 3]), CostVector([3, 1]))

    def test_dominating_pair_is_comparable(self):
        assert not incomparable(CostVector([1, 1]), CostVector([2, 2]))

    def test_equal_vectors_are_comparable(self):
        a = CostVector([1, 1])
        assert not incomparable(a, a)
