"""Unit tests for :mod:`repro.costs.metrics`."""

import pytest

from repro.costs.metrics import (
    EXECUTION_TIME,
    MONETARY_FEES,
    RESERVED_CORES,
    RESULT_PRECISION_LOSS,
    Metric,
    MetricSet,
    cloud_metric_set,
    extended_metric_set,
    paper_metric_set,
)
from repro.costs.aggregation import MinAggregation, SumAggregation
from repro.costs.vector import CostVector


class TestMetricSetConstruction:
    def test_paper_metric_set_has_three_metrics(self):
        metric_set = paper_metric_set()
        assert metric_set.dimensions == 3
        assert metric_set.names == [
            "execution_time",
            "reserved_cores",
            "precision_loss",
        ]

    def test_cloud_metric_set_has_two_metrics(self):
        assert cloud_metric_set().names == ["execution_time", "monetary_fees"]

    def test_empty_metric_set_is_rejected(self):
        with pytest.raises(ValueError):
            MetricSet([])

    def test_duplicate_names_are_rejected(self):
        with pytest.raises(ValueError):
            MetricSet([EXECUTION_TIME, EXECUTION_TIME])

    def test_extended_metric_set_sizes(self):
        for count in range(1, 8):
            assert extended_metric_set(count).dimensions == count

    def test_extended_metric_set_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            extended_metric_set(0)
        with pytest.raises(ValueError):
            extended_metric_set(8)

    def test_equality_and_hash(self):
        assert paper_metric_set() == paper_metric_set()
        assert hash(paper_metric_set()) == hash(paper_metric_set())
        assert paper_metric_set() != cloud_metric_set()


class TestMetricSetLookups:
    def test_index_of(self):
        metric_set = paper_metric_set()
        assert metric_set.index_of("reserved_cores") == 1

    def test_index_of_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            paper_metric_set().index_of("latency")

    def test_contains(self):
        assert paper_metric_set().contains("precision_loss")
        assert not paper_metric_set().contains("monetary_fees")

    def test_iteration_and_getitem(self):
        metric_set = paper_metric_set()
        assert list(metric_set)[0] is metric_set[0]


class TestVectorHelpers:
    def test_vector_from_named_components(self):
        metric_set = paper_metric_set()
        vector = metric_set.vector(execution_time=5.0, reserved_cores=2.0)
        assert vector == CostVector([5.0, 2.0, 0.0])

    def test_vector_rejects_unknown_names(self):
        with pytest.raises(KeyError):
            paper_metric_set().vector(latency=1.0)

    def test_zero_and_unbounded_vectors(self):
        metric_set = paper_metric_set()
        assert metric_set.zero_vector() == CostVector([0, 0, 0])
        assert not metric_set.unbounded_vector().is_finite()

    def test_component_extraction(self):
        metric_set = paper_metric_set()
        vector = metric_set.vector(reserved_cores=4.0)
        assert metric_set.component(vector, "reserved_cores") == 4.0

    def test_describe(self):
        metric_set = cloud_metric_set()
        described = metric_set.describe(CostVector([1.0, 2.0]))
        assert described == {"execution_time": 1.0, "monetary_fees": 2.0}


class TestCombine:
    def test_combine_uses_each_metric_aggregation(self):
        metric_set = paper_metric_set()
        left = metric_set.vector(execution_time=4, reserved_cores=2, precision_loss=0.0)
        right = metric_set.vector(execution_time=6, reserved_cores=1, precision_loss=0.5)
        local = metric_set.vector(execution_time=1, reserved_cores=4, precision_loss=0.0)
        combined = metric_set.combine(left, right, local)
        # execution_time: max(4, 6) + 1; cores: max(2, 1, 4); precision: 1-(1-0)(1-.5)
        assert combined[0] == pytest.approx(7.0)
        assert combined[1] == pytest.approx(4.0)
        assert combined[2] == pytest.approx(0.5)

    def test_combine_rejects_mismatched_vectors(self):
        metric_set = paper_metric_set()
        with pytest.raises(ValueError):
            metric_set.combine(CostVector([1, 2]), CostVector([1, 2, 3]), CostVector([1, 2, 3]))

    def test_metric_combine_shortcut(self):
        assert MONETARY_FEES.combine(1.0, 2.0, 3.0) == pytest.approx(6.0)
        assert RESERVED_CORES.combine(1.0, 2.0, 3.0) == pytest.approx(3.0)


class TestGuaranteeValidation:
    def test_paper_metrics_pass_validation(self):
        paper_metric_set().validate_for_guarantees()

    def test_non_monotone_metric_fails_validation(self):
        bad_metric = Metric("availability", "prob", MinAggregation())
        metric_set = MetricSet([EXECUTION_TIME, bad_metric])
        with pytest.raises(ValueError, match="availability"):
            metric_set.validate_for_guarantees()
