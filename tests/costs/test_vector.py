"""Unit tests for :mod:`repro.costs.vector`."""

import math

import pytest

from repro.costs.vector import CostVector


class TestConstruction:
    def test_values_are_stored_as_floats(self):
        vector = CostVector([1, 2, 3])
        assert vector.values == (1.0, 2.0, 3.0)

    def test_empty_vector_is_rejected(self):
        with pytest.raises(ValueError):
            CostVector([])

    def test_negative_component_is_rejected(self):
        with pytest.raises(ValueError):
            CostVector([1.0, -0.5])

    def test_nan_component_is_rejected(self):
        with pytest.raises(ValueError):
            CostVector([1.0, float("nan")])

    def test_infinite_components_are_allowed(self):
        vector = CostVector([float("inf"), 1.0])
        assert math.isinf(vector[0])

    def test_zeros_constructor(self):
        assert CostVector.zeros(3).values == (0.0, 0.0, 0.0)

    def test_infinite_constructor(self):
        assert all(math.isinf(v) for v in CostVector.infinite(2))

    def test_uniform_constructor(self):
        assert CostVector.uniform(4, 2.5).values == (2.5,) * 4


class TestSequenceProtocol:
    def test_len(self):
        assert len(CostVector([1, 2])) == 2

    def test_dimensions(self):
        assert CostVector([1, 2, 3]).dimensions == 3

    def test_iteration(self):
        assert list(CostVector([3, 1])) == [3.0, 1.0]

    def test_indexing(self):
        assert CostVector([3, 1])[1] == 1.0

    def test_as_list_returns_copy(self):
        vector = CostVector([1, 2])
        values = vector.as_list()
        values[0] = 99
        assert vector[0] == 1.0


class TestEqualityAndHashing:
    def test_equal_vectors(self):
        assert CostVector([1, 2]) == CostVector([1.0, 2.0])

    def test_unequal_vectors(self):
        assert CostVector([1, 2]) != CostVector([2, 1])

    def test_hash_consistency(self):
        assert hash(CostVector([1, 2])) == hash(CostVector([1, 2]))

    def test_comparison_with_other_types(self):
        assert CostVector([1]) != (1.0,)

    def test_usable_in_sets(self):
        assert len({CostVector([1, 2]), CostVector([1, 2]), CostVector([2, 1])}) == 2


class TestArithmetic:
    def test_addition(self):
        assert CostVector([1, 2]) + CostVector([3, 4]) == CostVector([4, 6])

    def test_addition_requires_same_dimensions(self):
        with pytest.raises(ValueError):
            CostVector([1]) + CostVector([1, 2])

    def test_componentwise_max(self):
        result = CostVector([1, 5]).componentwise_max(CostVector([3, 2]))
        assert result == CostVector([3, 5])

    def test_componentwise_min(self):
        result = CostVector([1, 5]).componentwise_min(CostVector([3, 2]))
        assert result == CostVector([1, 2])

    def test_scaling(self):
        assert CostVector([1, 2]).scaled(1.5) == CostVector([1.5, 3])

    def test_scaling_by_operator(self):
        assert 2 * CostVector([1, 2]) == CostVector([2, 4])
        assert CostVector([1, 2]) * 2 == CostVector([2, 4])

    def test_negative_scaling_is_rejected(self):
        with pytest.raises(ValueError):
            CostVector([1]).scaled(-1.0)

    def test_with_component(self):
        assert CostVector([1, 2]).with_component(0, 9) == CostVector([9, 2])


class TestHelpers:
    def test_is_finite(self):
        assert CostVector([1, 2]).is_finite()
        assert not CostVector([1, float("inf")]).is_finite()

    def test_distance(self):
        assert CostVector([0, 0]).distance_to(CostVector([3, 4])) == pytest.approx(5.0)

    def test_dominates_shortcut(self):
        assert CostVector([1, 1]).dominates(CostVector([2, 2]))
        assert not CostVector([3, 1]).dominates(CostVector([2, 2]))

    def test_strictly_dominates_shortcut(self):
        assert CostVector([1, 1]).strictly_dominates(CostVector([1, 2]))
        assert not CostVector([1, 2]).strictly_dominates(CostVector([1, 2]))

    def test_repr_mentions_values(self):
        assert "1" in repr(CostVector([1, 2]))
