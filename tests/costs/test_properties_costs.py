"""Property-based tests for the cost substrate (hypothesis).

The key invariants verified here underpin the paper's formal analysis:

* dominance is a partial order and approximate dominance relaxes it,
* every shipped metric's aggregation is monotone (Theorem 2's assumption),
* the Principle of Near-Optimality (Definition 1) holds for the shipped metric
  sets: scaling both sub-plan cost vectors by ``alpha`` scales the combined
  cost by at most ``alpha``.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.costs.dominance import (
    approximately_dominates,
    dominates,
    incomparable,
    strictly_dominates,
)
from repro.costs.metrics import extended_metric_set, paper_metric_set
from repro.costs.pareto import approximation_error, is_alpha_cover, pareto_filter
from repro.costs.vector import CostVector

finite_costs = st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False)


def cost_vectors(dimensions: int):
    return st.lists(finite_costs, min_size=dimensions, max_size=dimensions).map(CostVector)


# Precision-loss components must live in [0, 1]; build metric-set-compatible
# vectors with the last component (precision loss) bounded accordingly.
def paper_vectors():
    return st.tuples(
        finite_costs,
        finite_costs,
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ).map(lambda t: CostVector(list(t)))


alphas = st.floats(min_value=1.0, max_value=10.0, allow_nan=False, allow_infinity=False)


class TestDominanceProperties:
    @given(cost_vectors(3))
    def test_dominance_is_reflexive(self, vector):
        assert dominates(vector, vector)

    @given(cost_vectors(3), cost_vectors(3))
    def test_dominance_is_antisymmetric_up_to_equality(self, a, b):
        if dominates(a, b) and dominates(b, a):
            assert a == b

    @given(cost_vectors(3), cost_vectors(3), cost_vectors(3))
    def test_dominance_is_transitive(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)

    @given(cost_vectors(3), cost_vectors(3))
    def test_strict_dominance_implies_dominance(self, a, b):
        if strictly_dominates(a, b):
            assert dominates(a, b)
            assert not dominates(b, a)

    @given(cost_vectors(2), cost_vectors(2))
    def test_exactly_one_relation_holds(self, a, b):
        relations = [
            a == b,
            strictly_dominates(a, b),
            strictly_dominates(b, a),
            incomparable(a, b),
        ]
        assert sum(1 for r in relations if r) == 1

    @given(cost_vectors(3), cost_vectors(3), alphas)
    def test_dominance_implies_approximate_dominance(self, a, b, alpha):
        if dominates(a, b):
            assert approximately_dominates(a, b, alpha)

    @given(cost_vectors(3), alphas, alphas)
    def test_approximate_dominance_is_monotone_in_alpha(self, a, alpha1, alpha2):
        b = a.scaled(1.0)  # same vector
        low, high = sorted((alpha1, alpha2))
        if approximately_dominates(a, b, low):
            assert approximately_dominates(a, b, high)

    @given(cost_vectors(3), st.floats(min_value=1.0, max_value=5.0))
    def test_scaling_preserves_dominance(self, a, factor):
        assert dominates(a, a.scaled(factor))


class TestParetoProperties:
    @given(st.lists(cost_vectors(2), min_size=1, max_size=20))
    def test_pareto_filter_covers_every_point(self, costs):
        frontier = pareto_filter(costs)
        assert is_alpha_cover(frontier, costs, alpha=1.0)

    @given(st.lists(cost_vectors(2), min_size=1, max_size=20))
    def test_pareto_filter_is_mutually_non_dominated(self, costs):
        frontier = pareto_filter(costs)
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not strictly_dominates(a, b)

    @given(st.lists(cost_vectors(2), min_size=1, max_size=15))
    def test_approximation_error_of_frontier_is_one(self, costs):
        frontier = pareto_filter(costs)
        assert approximation_error(frontier, costs) <= 1.0 + 1e-9

    @given(st.lists(paper_vectors(), min_size=1, max_size=15), alphas)
    def test_error_bounds_certify_cover(self, costs, alpha):
        frontier = pareto_filter(costs)
        error = approximation_error(frontier, costs)
        assert is_alpha_cover(frontier, costs, alpha=max(error, alpha))


class TestAggregationProperties:
    @given(paper_vectors(), paper_vectors(), paper_vectors())
    def test_paper_metrics_aggregate_monotonically(self, left, right, local):
        metric_set = paper_metric_set()
        combined = metric_set.combine(left, right, local)
        for index in range(len(combined)):
            assert combined[index] >= left[index] - 1e-9
            assert combined[index] >= right[index] - 1e-9

    @given(
        paper_vectors(),
        paper_vectors(),
        paper_vectors(),
        st.floats(min_value=1.0, max_value=3.0),
    )
    @settings(max_examples=200)
    def test_pono_holds_for_paper_metrics(self, left, right, local, alpha):
        """Definition 1: scaled sub-plan costs yield an at-most-scaled plan cost."""
        metric_set = paper_metric_set()
        combined = metric_set.combine(left, right, local)
        combined_scaled_inputs = metric_set.combine(
            left.scaled(alpha), right.scaled(alpha), local
        )
        # The tiny relative slack absorbs floating-point rounding (1 - (1 - 2x)
        # versus 2 * x differ by an ulp); the mathematical property is strict.
        assert approximately_dominates(
            combined_scaled_inputs, combined, alpha * (1 + 1e-9)
        )

    @given(
        st.integers(min_value=2, max_value=7),
        st.data(),
    )
    def test_pono_holds_for_extended_metric_sets(self, dimensions, data):
        metric_set = extended_metric_set(dimensions)
        vector_strategy = st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=dimensions,
            max_size=dimensions,
        ).map(CostVector)
        left = data.draw(vector_strategy)
        right = data.draw(vector_strategy)
        local = data.draw(vector_strategy)
        alpha = data.draw(st.floats(min_value=1.0, max_value=2.0))
        combined = metric_set.combine(left, right, local)
        combined_scaled = metric_set.combine(left.scaled(alpha), right.scaled(alpha), local)
        assert approximately_dominates(combined_scaled, combined, alpha * (1 + 1e-9))
