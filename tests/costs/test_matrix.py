"""Unit tests for :mod:`repro.costs.matrix`."""

import pytest

from repro.costs.matrix import CostMatrix
from repro.costs.vector import CostVector


def fill(matrix, *rows):
    return [matrix.append(row) for row in rows]


class TestBookkeeping:
    def test_needs_at_least_one_metric(self):
        with pytest.raises(ValueError):
            CostMatrix(0)

    def test_append_returns_consecutive_slots(self):
        matrix = CostMatrix(2)
        assert fill(matrix, (1, 2), (3, 4)) == [0, 1]
        assert len(matrix) == 2
        assert matrix.slot_count == 2

    def test_append_rejects_wrong_dimensionality(self):
        matrix = CostMatrix(2)
        with pytest.raises(ValueError):
            matrix.append((1, 2, 3))

    def test_row_round_trips_cost_vectors(self):
        matrix = CostMatrix(3)
        slot = matrix.append(CostVector([1.5, 2.5, float("inf")]))
        assert matrix.row(slot) == CostVector([1.5, 2.5, float("inf")])

    def test_kill_and_alive_accounting(self):
        matrix = CostMatrix(2)
        slots = fill(matrix, (1, 1), (2, 2), (3, 3))
        matrix.kill(slots[1])
        assert len(matrix) == 2
        assert matrix.dead_count == 1
        assert matrix.alive_slots() == [slots[0], slots[2]]
        assert not matrix.is_alive(slots[1])
        with pytest.raises(KeyError):
            matrix.kill(slots[1])

    def test_compact_preserves_order_and_reports_kept_slots(self):
        matrix = CostMatrix(2)
        slots = fill(matrix, (1, 1), (2, 2), (3, 3), (4, 4))
        matrix.kill(slots[0])
        matrix.kill(slots[2])
        kept = matrix.compact()
        assert kept == [1, 3]
        assert matrix.rows() == [CostVector([2, 2]), CostVector([4, 4])]
        assert matrix.dead_count == 0

    def test_from_vectors_and_clear(self):
        matrix = CostMatrix.from_vectors([(1, 2), (3, 4)])
        assert matrix.dimensions == 2
        assert len(matrix) == 2
        matrix.clear()
        assert len(matrix) == 0
        with pytest.raises(ValueError):
            CostMatrix.from_vectors([])
        assert len(CostMatrix.from_vectors([], dimensions=2)) == 0


class TestDominanceOps:
    def test_dominated_slots_filters_rows_within_bounds(self):
        matrix = CostMatrix.from_vectors([(1, 1), (5, 1), (1, 5), (6, 6)])
        assert matrix.dominated_slots((5, 5)) == [0, 1, 2]

    def test_dominated_slots_skips_tombstones(self):
        matrix = CostMatrix.from_vectors([(1, 1), (2, 2)])
        matrix.kill(0)
        assert matrix.dominated_slots((5, 5)) == [1]

    def test_dominated_mask_is_over_live_rows(self):
        matrix = CostMatrix.from_vectors([(1, 1), (9, 9), (2, 2)])
        matrix.kill(0)
        assert matrix.dominated_mask((5, 5)) == [False, True]

    def test_infinite_bounds_admit_everything(self):
        inf = float("inf")
        matrix = CostMatrix.from_vectors([(1, 1), (inf, 2)])
        assert matrix.dominated_slots((inf, inf)) == [0, 1]

    def test_any_and_first_dominating(self):
        matrix = CostMatrix.from_vectors([(3, 3), (1, 1), (2, 2)])
        assert matrix.any_dominating((2, 2))
        assert matrix.first_dominating((2, 2)) == 1
        assert not matrix.any_dominating((0.5, 0.5))
        assert matrix.first_dominating((0.5, 0.5)) == -1

    def test_dominated_by_slots(self):
        matrix = CostMatrix.from_vectors([(1, 1), (3, 3), (2, 0.5)])
        assert matrix.dominated_by_slots((2, 2)) == [1]

    def test_dimension_mismatch_raises(self):
        matrix = CostMatrix(2)
        with pytest.raises(ValueError):
            matrix.dominated_slots((1, 2, 3))


class TestParetoMask:
    def test_marks_only_non_dominated_rows(self):
        matrix = CostMatrix.from_vectors([(2, 2), (1, 3), (3, 1), (3, 3)])
        assert matrix.pareto_mask() == [True, True, True, False]

    def test_duplicates_keep_exactly_one_representative(self):
        matrix = CostMatrix.from_vectors([(1, 1), (1, 1), (1, 1)])
        assert matrix.pareto_mask() == [True, False, False]

    def test_mask_is_over_live_rows_in_slot_order(self):
        matrix = CostMatrix.from_vectors([(5, 5), (1, 1), (0.5, 9)])
        matrix.kill(1)
        # Without the (1, 1) row, (5, 5) and (0.5, 9) are incomparable.
        assert matrix.pareto_mask() == [True, True]


class TestScaling:
    def test_scaled_rows_multiplies_each_component(self):
        matrix = CostMatrix.from_vectors([(1, 2), (3, 4)])
        assert matrix.scaled_rows(2.0) == [CostVector([2, 4]), CostVector([6, 8])]

    def test_scaled_rows_matches_cost_vector_scaled(self):
        values = (1.37, 2.113, 0.009)
        matrix = CostMatrix.from_vectors([values])
        assert matrix.scaled_rows(1.01) == [CostVector(values).scaled(1.01)]

    def test_scale_returns_compacted_matrix(self):
        matrix = CostMatrix.from_vectors([(1, 1), (2, 2)])
        matrix.kill(0)
        scaled = matrix.scale(3.0)
        assert scaled.rows() == [CostVector([6, 6])]
        assert scaled.slot_count == 1

    def test_negative_factor_rejected(self):
        matrix = CostMatrix.from_vectors([(1, 1)])
        with pytest.raises(ValueError):
            matrix.scaled_rows(-1.0)
