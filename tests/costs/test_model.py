"""Unit tests for :mod:`repro.costs.model`."""

import pytest

from repro.costs.metrics import extended_metric_set, paper_metric_set
from repro.costs.model import CostModelConfig, MultiObjectiveCostModel


@pytest.fixture
def model():
    return MultiObjectiveCostModel(paper_metric_set())


class TestConfigValidation:
    def test_default_config_is_valid(self):
        CostModelConfig()

    def test_negative_costs_are_rejected(self):
        with pytest.raises(ValueError):
            CostModelConfig(seq_page_cost=-1.0)

    def test_parallel_efficiency_range(self):
        with pytest.raises(ValueError):
            CostModelConfig(parallel_efficiency=0.0)
        with pytest.raises(ValueError):
            CostModelConfig(parallel_efficiency=1.5)

    def test_rows_per_buffer_page_must_be_positive(self):
        with pytest.raises(ValueError):
            CostModelConfig(rows_per_buffer_page=0)


class TestScanCost:
    def test_dimensionality_matches_metric_set(self, model):
        cost = model.scan_cost(row_count=1000, page_count=10)
        assert len(cost) == 3

    def test_full_scan_has_no_precision_loss(self, model):
        metric_set = model.metric_set
        cost = model.scan_cost(row_count=1000, page_count=10, sampling_rate=1.0)
        assert metric_set.component(cost, "precision_loss") == 0.0

    def test_sampling_reduces_time_but_loses_precision(self, model):
        metric_set = model.metric_set
        full = model.scan_cost(row_count=10_000, page_count=100, sampling_rate=1.0)
        sampled = model.scan_cost(row_count=10_000, page_count=100, sampling_rate=0.1)
        assert metric_set.component(sampled, "execution_time") < metric_set.component(
            full, "execution_time"
        )
        assert metric_set.component(sampled, "precision_loss") > 0.0

    def test_parallelism_reduces_time_but_reserves_cores(self, model):
        metric_set = model.metric_set
        serial = model.scan_cost(row_count=10_000, page_count=100, parallelism=1)
        parallel = model.scan_cost(row_count=10_000, page_count=100, parallelism=4)
        assert metric_set.component(parallel, "execution_time") < metric_set.component(
            serial, "execution_time"
        )
        assert metric_set.component(parallel, "reserved_cores") == 4.0

    def test_random_access_costs_more(self, model):
        metric_set = model.metric_set
        sequential = model.scan_cost(row_count=1000, page_count=100, random_access=False)
        random_access = model.scan_cost(row_count=1000, page_count=100, random_access=True)
        assert metric_set.component(random_access, "execution_time") > metric_set.component(
            sequential, "execution_time"
        )

    def test_invalid_sampling_rate(self, model):
        with pytest.raises(ValueError):
            model.scan_cost(row_count=10, page_count=1, sampling_rate=0.0)
        with pytest.raises(ValueError):
            model.scan_cost(row_count=10, page_count=1, sampling_rate=1.5)

    def test_negative_cardinalities_rejected(self, model):
        with pytest.raises(ValueError):
            model.scan_cost(row_count=-1, page_count=1)

    def test_costs_are_non_negative(self, model):
        cost = model.scan_cost(row_count=0, page_count=0)
        assert all(component >= 0 for component in cost)


class TestJoinCost:
    def test_supported_algorithms_produce_costs(self, model):
        for algorithm in ("hash_join", "sort_merge_join", "nested_loop_join"):
            cost = model.join_local_cost(1000, 1000, 500, algorithm=algorithm)
            assert len(cost) == 3
            assert all(component >= 0 for component in cost)

    def test_unknown_algorithm_is_rejected(self, model):
        with pytest.raises(ValueError):
            model.join_local_cost(10, 10, 10, algorithm="grace_join")

    def test_nested_loop_is_most_expensive_for_large_inputs(self, model):
        metric_set = model.metric_set
        hash_cost = model.join_local_cost(10_000, 10_000, 100, algorithm="hash_join")
        loop_cost = model.join_local_cost(10_000, 10_000, 100, algorithm="nested_loop_join")
        assert metric_set.component(loop_cost, "execution_time") > metric_set.component(
            hash_cost, "execution_time"
        )

    def test_join_parallelism_reduces_time(self, model):
        metric_set = model.metric_set
        serial = model.join_local_cost(10_000, 10_000, 100, parallelism=1)
        parallel = model.join_local_cost(10_000, 10_000, 100, parallelism=4)
        assert metric_set.component(parallel, "execution_time") < metric_set.component(
            serial, "execution_time"
        )

    def test_negative_cardinality_rejected(self, model):
        with pytest.raises(ValueError):
            model.join_local_cost(-1, 10, 10)

    def test_join_has_no_precision_loss(self, model):
        cost = model.join_local_cost(100, 100, 10)
        assert model.metric_set.component(cost, "precision_loss") == 0.0


class TestCombine:
    def test_combine_is_monotone(self, model):
        left = model.scan_cost(row_count=1000, page_count=10)
        right = model.scan_cost(row_count=2000, page_count=20)
        local = model.join_local_cost(1000, 2000, 500)
        combined = model.combine(left, right, local)
        for index in range(len(combined)):
            assert combined[index] >= left[index] - 1e-12
            assert combined[index] >= right[index] - 1e-12

    def test_extended_metric_set_produces_more_components(self):
        model = MultiObjectiveCostModel(extended_metric_set(6))
        cost = model.scan_cost(row_count=100, page_count=10)
        assert len(cost) == 6

    def test_fees_scale_with_parallelism(self):
        metric_set = extended_metric_set(4)  # includes monetary fees
        model = MultiObjectiveCostModel(metric_set)
        serial = model.scan_cost(row_count=100_000, page_count=1000, parallelism=1)
        parallel = model.scan_cost(row_count=100_000, page_count=1000, parallelism=4)
        # More cores cost more money for (almost) the same work.
        assert metric_set.component(parallel, "monetary_fees") > metric_set.component(
            serial, "monetary_fees"
        ) * 0.9
