"""Unit tests for the metrics registry and Prometheus text renderer."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_snapshot,
    render_snapshots,
)
from repro.obs.promcheck import check_text


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_increments_and_rejects_negative(self, registry):
        counter = registry.counter("repro_test_total", "help text")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_counter_tracks_series_independently(self, registry):
        counter = registry.counter(
            "repro_jobs_total", "jobs", labelnames=("outcome",)
        )
        counter.inc(outcome="finished")
        counter.inc(outcome="finished")
        counter.inc(outcome="failed")
        assert counter.value(outcome="finished") == 2
        assert counter.value(outcome="failed") == 1
        assert counter.value(outcome="cancelled") == 0

    def test_undeclared_label_is_rejected(self, registry):
        counter = registry.counter("repro_x_total", "x", labelnames=("a",))
        with pytest.raises(ValueError):
            counter.inc(b="nope")

    def test_gauge_set_inc_dec_and_callback(self, registry):
        gauge = registry.gauge("repro_live", "live things")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 3
        backing = [1, 2, 3]
        pulled = registry.gauge("repro_backing", "pulled")
        pulled.set_function(lambda: len(backing))
        assert pulled.value() == 3
        backing.append(4)
        assert pulled.value() == 4

    def test_histogram_buckets_are_cumulative(self, registry):
        histogram = registry.histogram(
            "repro_lat_seconds", "latency", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        (sample,) = histogram.samples()
        assert sample["bucket_counts"] == [1, 3, 4]  # le=.1,1,10
        assert sample["count"] == 5  # doubles as the +Inf bucket
        assert sample["sum"] == pytest.approx(56.05)

    def test_histogram_requires_increasing_bounds(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("repro_bad", "x", buckets=(1.0, 1.0))

    def test_get_or_create_returns_same_instrument(self, registry):
        first = registry.counter("repro_same_total", "x")
        second = registry.counter("repro_same_total", "x")
        assert first is second
        with pytest.raises(ValueError):
            registry.gauge("repro_same_total", "x")  # kind conflict


class TestRendering:
    def test_render_is_promcheck_clean(self, registry):
        registry.counter("repro_a_total", "a counter").inc()
        registry.gauge("repro_b", "a gauge").set(2)
        registry.histogram("repro_c_seconds", "a histogram").observe(0.2)
        text = registry.render()
        assert check_text(text) == []
        assert "# TYPE repro_a_total counter" in text
        assert "# TYPE repro_c_seconds histogram" in text
        assert 'repro_c_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_c_seconds_count 1" in text

    def test_special_float_values_render(self, registry):
        gauge = registry.gauge("repro_weird", "weird values")
        gauge.set(math.inf)
        assert "repro_weird +Inf" in registry.render()
        gauge.set(-math.inf)
        assert "repro_weird -Inf" in registry.render()
        gauge.set(math.nan)
        assert "repro_weird NaN" in registry.render()

    def test_label_values_are_escaped(self, registry):
        counter = registry.counter(
            "repro_esc_total", "escapes", labelnames=("path",)
        )
        counter.inc(path='a"b\\c\nd')
        text = registry.render()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert check_text(text) == []

    def test_extra_labels_apply_to_every_sample(self, registry):
        registry.counter("repro_lbl_total", "x").inc()
        text = render_snapshot(registry.snapshot(), {"shard": "shard-0"})
        assert 'repro_lbl_total{shard="shard-0"} 1' in text
        assert check_text(text) == []


class TestSnapshotMerge:
    def test_render_snapshots_merges_families_under_one_header(self):
        shard0, shard1 = MetricsRegistry(), MetricsRegistry()
        shard0.counter("repro_m_total", "m").inc()
        shard1.counter("repro_m_total", "m").inc(2)
        text = render_snapshots(
            [
                ({"shard": "shard-0"}, shard0.snapshot()),
                ({"shard": "shard-1"}, shard1.snapshot()),
            ]
        )
        assert text.count("# TYPE repro_m_total counter") == 1
        assert 'repro_m_total{shard="shard-0"} 1' in text
        assert 'repro_m_total{shard="shard-1"} 2' in text
        assert check_text(text) == []

    def test_conflicting_kinds_raise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_k_total", "k")
        b.gauge("repro_k_total", "k")
        with pytest.raises(ValueError):
            render_snapshots(
                [({"shard": "0"}, a.snapshot()), ({"shard": "1"}, b.snapshot())]
            )

    def test_snapshot_is_plain_data(self, registry):
        registry.histogram("repro_h_seconds", "h").observe(1.0)
        snapshot = registry.snapshot()
        import json

        json.dumps(snapshot)  # must be JSON/pickle-safe for the pipe
        assert snapshot["families"][0]["kind"] == "histogram"
