"""Unit tests for the in-repo Prometheus exposition grammar checker."""

from __future__ import annotations

from repro.obs.promcheck import check_text

VALID = """\
# HELP repro_a_total A counter.
# TYPE repro_a_total counter
repro_a_total 3
# HELP repro_b A gauge.
# TYPE repro_b gauge
repro_b{shard="shard-0"} 1.5
repro_b{shard="shard-1"} +Inf
# HELP repro_c_seconds A histogram.
# TYPE repro_c_seconds histogram
repro_c_seconds_bucket{le="0.1"} 1
repro_c_seconds_bucket{le="1"} 3
repro_c_seconds_bucket{le="+Inf"} 4
repro_c_seconds_sum 2.25
repro_c_seconds_count 4
"""


def test_valid_exposition_has_no_violations():
    assert check_text(VALID) == []


def test_missing_trailing_newline():
    assert any("newline" in v for v in check_text("repro_x 1"))


def test_bad_metric_name():
    violations = check_text("9bad_name 1\n")
    assert violations


def test_bad_value():
    violations = check_text("repro_x notanumber\n")
    assert any("value" in v for v in violations)


def test_duplicate_series_detected():
    text = 'repro_x{a="1"} 1\nrepro_x{a="1"} 2\n'
    assert any("duplicate" in v.lower() for v in check_text(text))


def test_duplicate_type_header_detected():
    text = (
        "# TYPE repro_x counter\nrepro_x 1\n"
        "# TYPE repro_x counter\nrepro_x 2\n"
    )
    assert check_text(text)


def test_samples_after_family_closed():
    text = (
        "# TYPE repro_x counter\nrepro_x_total 1\n"
        "# TYPE repro_y gauge\nrepro_y 1\n"
        "repro_x_total 2\n"
    )
    assert check_text(text)


def test_histogram_missing_inf_bucket():
    text = (
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="1"} 1\n'
        "repro_h_sum 1\n"
        "repro_h_count 1\n"
    )
    assert any("+Inf" in v for v in check_text(text))


def test_histogram_noncumulative_buckets():
    text = (
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="1"} 5\n'
        'repro_h_bucket{le="2"} 3\n'
        'repro_h_bucket{le="+Inf"} 5\n'
        "repro_h_sum 1\n"
        "repro_h_count 5\n"
    )
    assert any("cumulative" in v.lower() for v in check_text(text))


def test_histogram_inf_must_equal_count():
    text = (
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="+Inf"} 4\n'
        "repro_h_sum 1\n"
        "repro_h_count 5\n"
    )
    assert check_text(text)


def test_unescaped_label_quote_is_flagged():
    text = 'repro_x{a="un"escaped"} 1\n'
    assert check_text(text)
