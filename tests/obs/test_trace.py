"""Unit tests for the span tracer: nesting, ring bound, exporters."""

from __future__ import annotations

import json

import pytest

from repro import flags
from repro.obs import trace as trace_module
from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    chrome_trace,
    export_ndjson,
    summarize,
)


@pytest.fixture()
def tracer():
    return Tracer(capacity=16)


def _with_tracing(fn):
    with flags.overrides(tracing=True):
        return fn()


class TestSpans:
    def test_disabled_returns_the_shared_null_span(self, tracer):
        assert not flags.enabled("tracing")
        span = tracer.span("x", a=1)
        assert span is NULL_SPAN
        with span as inner:
            inner.set(b=2)  # must be a harmless no-op
        assert len(tracer) == 0

    def test_nesting_links_parent_and_child(self, tracer):
        def run():
            with tracer.span("parent", kind="outer"):
                with tracer.span("child") as child:
                    child.set(extra=3)

        _with_tracing(run)
        spans = tracer.snapshot()
        assert [s["name"] for s in spans] == ["child", "parent"]
        child, parent = spans
        assert child["trace_id"] == parent["trace_id"]
        assert child["parent_id"] == parent["span_id"]
        assert parent["parent_id"] is None
        assert child["attrs"]["extra"] == 3
        assert parent["attrs"]["kind"] == "outer"
        assert child["end"] >= child["start"]

    def test_sibling_spans_share_a_trace(self, tracer):
        def run():
            with tracer.span("root"):
                with tracer.span("a"):
                    pass
                with tracer.span("b"):
                    pass

        _with_tracing(run)
        trace_ids = {s["trace_id"] for s in tracer.snapshot()}
        assert len(trace_ids) == 1

    def test_exception_records_error_and_closes_the_span(self, tracer):
        def run():
            with pytest.raises(ValueError):
                with tracer.span("boom"):
                    raise ValueError("x")

        _with_tracing(run)
        (span,) = tracer.snapshot()
        assert span["attrs"]["error"] == "ValueError"
        assert span["end"] is not None

    def test_ring_is_bounded_and_counts_drops(self, tracer):
        def run():
            for index in range(20):
                with tracer.span(f"s{index}"):
                    pass

        _with_tracing(run)
        assert len(tracer) == 16
        assert tracer.dropped == 4
        names = [s["name"] for s in tracer.snapshot()]
        assert names[0] == "s4"  # oldest spans were overwritten

    def test_drain_empties_and_ingest_restores(self, tracer):
        with flags.overrides(tracing=True):
            with tracer.span("x"):
                pass
        drained = tracer.drain()
        assert len(drained) == 1
        assert len(tracer) == 0
        tracer.ingest(drained)
        assert tracer.snapshot() == drained


class TestContextPropagation:
    def test_current_context_inside_and_outside(self, tracer):
        assert tracer.current_context() is None

        def run():
            with tracer.span("outer"):
                ctx = tracer.current_context()
                assert set(ctx) == {"trace_id", "span_id"}
                return ctx

        ctx = _with_tracing(run)
        assert tracer.current_context() is None
        assert ctx["trace_id"]

    def test_activate_context_reroots_spans(self, tracer):
        remote = {"trace_id": "t" * 18, "span_id": "p" * 18}

        def run():
            with tracer.activate_context(remote):
                with tracer.span("local"):
                    pass

        _with_tracing(run)
        (span,) = tracer.snapshot()
        assert span["trace_id"] == remote["trace_id"]
        assert span["parent_id"] == remote["span_id"]

    def test_activate_none_is_a_noop(self, tracer):
        def run():
            with tracer.activate_context(None):
                with tracer.span("rootless"):
                    pass

        _with_tracing(run)
        (span,) = tracer.snapshot()
        assert span["parent_id"] is None


class TestExporters:
    def _spans(self, tracer):
        def run():
            with tracer.span("phase.outer", proc="front"):
                with tracer.span("phase.inner", n=1):
                    pass

        _with_tracing(run)
        return tracer.snapshot()

    def test_ndjson_round_trips(self, tracer, tmp_path):
        spans = self._spans(tracer)
        path = tmp_path / "spans.ndjson"
        text = export_ndjson(spans, path)
        assert path.read_text() == text
        lines = [json.loads(line) for line in text.splitlines()]
        assert [line["name"] for line in lines] == ["phase.inner", "phase.outer"]

    def test_chrome_trace_shape(self, tracer):
        spans = self._spans(tracer)
        payload = chrome_trace(spans)
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 2
        assert len(meta) == 1  # one process_name record per pid
        assert meta[0]["args"]["name"].startswith("pid ")
        for event in complete:
            assert event["cat"] == "phase"
            assert event["dur"] >= 0
            assert "span_id" in event["args"]

    def test_summarize_aggregates_by_name(self, tracer):
        def run():
            for _ in range(3):
                with tracer.span("a"):
                    pass
            with tracer.span("b"):
                pass

        _with_tracing(run)
        rows = summarize(tracer.snapshot())
        by_name = {row["name"]: row for row in rows}
        assert by_name["a"]["count"] == 3
        assert by_name["b"]["count"] == 1


class TestModuleLevelTracer:
    def test_module_wrappers_share_one_tracer(self):
        trace_module.clear()
        with flags.overrides(tracing=True):
            with trace_module.span("module.level"):
                assert trace_module.current_context() is not None
        assert len(trace_module.tracer()) == 1
        assert trace_module.snapshot()[0]["name"] == "module.level"
        trace_module.clear()
        assert trace_module.snapshot() == []
