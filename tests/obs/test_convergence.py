"""Unit tests for convergence telemetry over FrontierUpdate streams."""

from __future__ import annotations

import pytest

from repro.api import OptimizeRequest, open_session
from repro.obs.convergence import (
    render_series_table,
    series_from_updates,
    summarize_series,
)


def _mapping_update(index, alpha, elapsed, frontier=5):
    return {
        "invocation": {
            "index": index,
            "resolution": index - 1,
            "alpha": alpha,
            "frontier_size": frontier,
            "duration_seconds": 0.01,
        },
        "elapsed_seconds": elapsed,
    }


class TestSeries:
    def test_points_from_mapping_payloads(self):
        updates = [
            _mapping_update(1, 2.0, 0.1),
            _mapping_update(2, 1.4, 0.2),
            _mapping_update(3, 1.1, 0.3),
        ]
        series = series_from_updates(updates)
        assert [p["invocation"] for p in series] == [1, 2, 3]
        assert [p["alpha"] for p in series] == [2.0, 1.4, 1.1]

    def test_points_from_live_updates(self):
        session = open_session(
            OptimizeRequest(
                workload="gen:chain:3:0", algorithm="iama", levels=3, scale="tiny"
            )
        )
        updates = list(session.updates())
        series = series_from_updates(updates)
        assert len(series) == len(updates)
        assert series[0]["invocation"] == 1
        assert all(p["frontier_size"] > 0 for p in series)


class TestSummary:
    def test_monotone_series(self):
        series = series_from_updates(
            [_mapping_update(1, 2.0, 0.1), _mapping_update(2, 1.2, 0.2)]
        )
        summary = summarize_series(series)
        assert summary["alpha_monotone"]
        assert summary["alpha_first"] == 2.0
        assert summary["alpha_last"] == 1.2
        assert summary["seconds_to_alpha_1_5"] == 0.2
        assert summary["invocations"] == 2

    def test_non_monotone_series_is_flagged(self):
        series = series_from_updates(
            [_mapping_update(1, 1.2, 0.1), _mapping_update(2, 1.6, 0.2)]
        )
        assert not summarize_series(series)["alpha_monotone"]

    def test_threshold_never_reached(self):
        series = series_from_updates([_mapping_update(1, 3.0, 0.1)])
        assert summarize_series(series)["seconds_to_alpha_1_5"] is None

    def test_empty_series(self):
        summary = summarize_series([])
        assert summary["invocations"] == 0
        assert summary["alpha_first"] is None
        assert summary["alpha_monotone"]


class TestRendering:
    def test_table_has_one_line_per_point_plus_header(self):
        series = series_from_updates(
            [_mapping_update(1, 2.0, 0.1), _mapping_update(2, 1.2, 0.2)]
        )
        table = render_series_table(series, title="t")
        lines = table.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 2 + len(series)
        assert "alpha" in lines[1]
