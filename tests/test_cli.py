"""Tests for the command-line interface (:mod:`repro.cli`)."""

import pytest

from repro import cli


class TestWorkloadCommand:
    def test_lists_all_groups(self, capsys):
        assert cli.main(["workload"]) == 0
        output = capsys.readouterr().out
        for count in ("2", "3", "4", "5", "6", "8"):
            assert count in output
        assert "tpch_q08" in output


class TestOptimizeCommand:
    def test_optimizes_named_block(self, capsys):
        assert cli.main(["optimize", "tpch_q14", "--levels", "2", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "optimizing tpch_q14" in output
        assert "resolution 0" in output
        assert "final frontier" in output

    def test_accepts_short_query_names(self, capsys):
        assert cli.main(["optimize", "q14", "--levels", "1", "--scale", "smoke"]) == 0
        assert "tpch_q14" in capsys.readouterr().out

    def test_unknown_query_fails_with_hint(self):
        with pytest.raises(SystemExit, match="unknown query"):
            cli.main(["optimize", "q99", "--scale", "smoke"])


class TestCompareCommand:
    def test_compares_all_algorithms(self, capsys):
        assert cli.main(["compare", "tpch_q14", "--levels", "2", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "Incremental anytime" in output
        assert "Memoryless" in output
        assert "One-shot" in output
        assert "faster than" in output


class TestExperimentCommand:
    def test_runs_ablation_and_exports(self, capsys, tmp_path):
        csv_path = tmp_path / "rows.csv"
        json_path = tmp_path / "rows.json"
        exit_code = cli.main(
            [
                "experiment",
                "ablation-keep-dominated",
                "--scale",
                "smoke",
                "--csv",
                str(csv_path),
                "--json",
                str(json_path),
            ]
        )
        assert exit_code == 0
        assert csv_path.exists()
        assert json_path.exists()
        output = capsys.readouterr().out
        assert "ablation_keep_dominated" in output

    def test_unknown_experiment_fails(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            cli.main(["experiment", "figure99", "--scale", "smoke"])

    def test_unknown_scale_fails(self):
        with pytest.raises(SystemExit):
            cli.main(["optimize", "q14", "--scale", "huge"])


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_parser_builds(self):
        parser = cli.build_parser()
        assert parser.prog == "repro"
