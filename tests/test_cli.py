"""Tests for the command-line interface (:mod:`repro.cli`)."""

import json

import pytest

from repro import cli
from repro.api import OptimizationResult, planner_registry


class TestWorkloadCommand:
    def test_lists_all_groups(self, capsys):
        assert cli.main(["workload"]) == 0
        output = capsys.readouterr().out
        for count in ("2", "3", "4", "5", "6", "8"):
            assert count in output
        assert "tpch_q08" in output


class TestOptimizeCommand:
    def test_optimizes_named_block(self, capsys):
        assert cli.main(["optimize", "tpch_q14", "--levels", "2", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "optimizing tpch_q14" in output
        assert "resolution 0" in output
        assert "final frontier" in output

    def test_accepts_short_query_names(self, capsys):
        assert cli.main(["optimize", "q14", "--levels", "1", "--scale", "smoke"]) == 0
        assert "tpch_q14" in capsys.readouterr().out

    def test_unknown_query_fails_with_hint(self):
        with pytest.raises(SystemExit, match="unknown query"):
            cli.main(["optimize", "q99", "--scale", "smoke"])

    def test_generated_workload_spec(self, capsys):
        assert (
            cli.main(["optimize", "gen:star:4:42", "--levels", "2", "--scale", "tiny"])
            == 0
        )
        output = capsys.readouterr().out
        assert "4 tables" in output
        assert "final frontier" in output

    def test_malformed_generated_spec_fails_with_hint(self):
        with pytest.raises(SystemExit, match="gen:<topology>:<tables>:<seed>"):
            cli.main(["optimize", "gen:star:oops", "--scale", "tiny"])

    @pytest.mark.parametrize(
        "algorithm",
        ["iama", "memoryless", "oneshot", "exhaustive", "single_objective"],
    )
    def test_every_registered_planner_is_selectable(self, capsys, algorithm):
        argv = [
            "optimize", "gen:chain:3:0",
            "--algorithm", algorithm,
            "--levels", "2",
            "--scale", "tiny",
        ]
        assert cli.main(argv) == 0
        output = capsys.readouterr().out
        assert f"algorithm {algorithm}" in output

    def test_unknown_algorithm_fails_with_candidates(self):
        with pytest.raises(SystemExit, match="unknown planner"):
            cli.main(["optimize", "q14", "--algorithm", "quantum", "--scale", "tiny"])

    def test_json_output_round_trips_through_the_schema(self, capsys):
        argv = [
            "optimize", "gen:chain:3:1",
            "--algorithm", "oneshot",
            "--levels", "2",
            "--scale", "tiny",
            "--json",
        ]
        assert cli.main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        result = OptimizationResult.from_dict(payload)
        assert result.to_dict() == payload
        assert result.algorithm == "oneshot"
        assert result.finish_reason == "exhausted"
        assert result.frontier_size == len(payload["frontier"])

    def test_text_output_reports_arena_occupancy(self, capsys):
        argv = ["optimize", "gen:star:4:42", "--levels", "2", "--scale", "tiny"]
        assert cli.main(argv) == 0
        output = capsys.readouterr().out
        assert "plan arena:" in output
        assert "live plans" in output
        assert "tombstoned" in output

    def test_json_output_carries_arena_occupancy_stats(self, capsys):
        argv = [
            "optimize", "gen:star:4:42",
            "--algorithm", "iama",
            "--levels", "2",
            "--scale", "tiny",
            "--json",
        ]
        assert cli.main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        details = payload["invocations"][-1]["details"]
        assert details["arena_plans_live"] > 0
        assert details["arena_plans_tombstoned"] >= 0
        assert details["arena_peak_bytes"] > 0


class TestPlannersCommand:
    def test_lists_every_registered_planner(self, capsys):
        assert cli.main(["planners"]) == 0
        output = capsys.readouterr().out
        for name in planner_registry().names():
            assert name in output


class TestCompareCommand:
    def test_compares_all_algorithms(self, capsys):
        assert cli.main(["compare", "tpch_q14", "--levels", "2", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "Incremental anytime" in output
        assert "Memoryless" in output
        assert "One-shot" in output
        assert "faster than" in output

    def test_compare_accepts_planner_subset_and_gen_specs(self, capsys):
        argv = [
            "compare", "gen:cycle:3:2",
            "--algorithm", "iama",
            "--algorithm", "exhaustive",
            "--levels", "2",
            "--scale", "tiny",
        ]
        assert cli.main(argv) == 0
        output = capsys.readouterr().out
        assert "Incremental anytime" in output
        assert "exhaustive" in output
        assert "Memoryless" not in output

    def test_compare_json_emits_one_result_per_planner(self, capsys):
        argv = [
            "compare", "gen:chain:3:0",
            "--algorithm", "iama",
            "--algorithm", "oneshot",
            "--levels", "2",
            "--scale", "tiny",
            "--json",
        ]
        assert cli.main(argv) == 0
        payloads = json.loads(capsys.readouterr().out)
        assert [p["algorithm"] for p in payloads] == ["iama", "oneshot"]
        for payload in payloads:
            assert OptimizationResult.from_dict(payload).to_dict() == payload

    def test_compare_deduplicates_aliases_of_one_planner(self, capsys):
        argv = [
            "compare", "gen:chain:3:0",
            "--algorithm", "iama",
            "--algorithm", "incremental_anytime",
            "--levels", "2",
            "--scale", "tiny",
            "--json",
        ]
        assert cli.main(argv) == 0
        payloads = json.loads(capsys.readouterr().out)
        assert [p["algorithm"] for p in payloads] == ["iama"]

    def test_compare_unknown_algorithm_fails(self):
        with pytest.raises(SystemExit, match="unknown planner"):
            cli.main(["compare", "q14", "--algorithm", "quantum", "--scale", "tiny"])


class TestExperimentCommand:
    def test_runs_ablation_and_exports(self, capsys, tmp_path):
        csv_path = tmp_path / "rows.csv"
        json_path = tmp_path / "rows.json"
        exit_code = cli.main(
            [
                "experiment",
                "ablation-keep-dominated",
                "--scale",
                "smoke",
                "--csv",
                str(csv_path),
                "--json",
                str(json_path),
            ]
        )
        assert exit_code == 0
        assert csv_path.exists()
        assert json_path.exists()
        output = capsys.readouterr().out
        assert "ablation_keep_dominated" in output

    def test_unknown_experiment_fails(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            cli.main(["experiment", "figure99", "--scale", "smoke"])

    def test_unknown_scale_fails(self):
        with pytest.raises(SystemExit):
            cli.main(["optimize", "q14", "--scale", "huge"])


class TestBenchCommand:
    def _argv(self, out_dir, jobs="2"):
        return [
            "bench",
            "--experiment",
            "ablation-freshness",
            "--experiment",
            "metric-sweep",
            "--scale",
            "tiny",
            "--jobs",
            jobs,
            "--resume",
            "--out",
            str(out_dir),
        ]

    def test_parallel_resume_run_and_cache_hit_rerun(self, capsys, tmp_path):
        out_dir = tmp_path / "results"
        assert cli.main(self._argv(out_dir)) == 0
        first_output = capsys.readouterr().out
        assert "ablation_freshness: 2 cells (2 computed, 0 cached" in first_output
        assert "metric_sweep: 4 cells (4 computed, 0 cached" in first_output
        report_path = out_dir / "ablation_freshness.txt"
        assert report_path.exists()
        assert (out_dir / "metric_sweep.txt").exists()
        first_reports = {
            path.name: path.read_text() for path in out_dir.glob("*.txt")
        }
        cache_entries = sorted((out_dir / "cache").glob("*/*.json"))
        assert len(cache_entries) == 6

        # Second --resume run: every cell is a cache hit, nothing recomputed,
        # and the written reports are byte-identical.
        assert cli.main(self._argv(out_dir)) == 0
        second_output = capsys.readouterr().out
        assert "ablation_freshness: 2 cells (0 computed, 2 cached" in second_output
        assert "metric_sweep: 4 cells (0 computed, 4 cached" in second_output
        for path in out_dir.glob("*.txt"):
            assert path.read_text() == first_reports[path.name]

    def test_serial_and_sharded_reports_match_over_shared_cache(
        self, capsys, tmp_path
    ):
        serial_out = tmp_path / "serial"
        sharded_out = tmp_path / "sharded"
        cache_dir = tmp_path / "cache"
        base = [
            "bench",
            "--experiment",
            "metric-sweep",
            "--scale",
            "tiny",
            "--cache-dir",
            str(cache_dir),
        ]
        assert cli.main(base + ["--jobs", "1", "--out", str(serial_out)]) == 0
        assert (
            cli.main(
                base + ["--jobs", "2", "--resume", "--out", str(sharded_out)]
            )
            == 0
        )
        capsys.readouterr()
        serial_text = (serial_out / "metric_sweep.txt").read_text()
        sharded_text = (sharded_out / "metric_sweep.txt").read_text()
        assert serial_text == sharded_text

    def test_no_cache_flag_disables_the_store(self, capsys, tmp_path):
        out_dir = tmp_path / "results"
        argv = [
            "bench",
            "--experiment",
            "ablation-freshness",
            "--scale",
            "tiny",
            "--no-cache",
            "--out",
            str(out_dir),
        ]
        assert cli.main(argv) == 0
        assert not (out_dir / "cache").exists()
        assert "cell cache" not in capsys.readouterr().out

    def test_unknown_experiment_fails_with_candidates(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            cli.main(["bench", "--experiment", "figure99", "--scale", "tiny"])

    def test_no_cache_conflicts_with_resume_and_cache_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            cli.main(["bench", "--scale", "tiny", "--no-cache", "--resume"])
        with pytest.raises(SystemExit, match="mutually exclusive"):
            cli.main(
                [
                    "bench",
                    "--scale",
                    "tiny",
                    "--no-cache",
                    "--cache-dir",
                    str(tmp_path / "cache"),
                ]
            )


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_parser_builds(self):
        parser = cli.build_parser()
        assert parser.prog == "repro"
