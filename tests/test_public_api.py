"""Smoke tests of the top-level public API (the README quickstart path)."""

import pytest

import repro
from repro import (
    AnytimeMOQO,
    CardinalityEstimator,
    MultiObjectiveCostModel,
    OneShotOptimizer,
    PlanFactory,
    ResolutionSchedule,
    default_operator_registry,
    paper_metric_set,
)
from repro.workloads import tpch_queries, tpch_statistics


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_flow(self):
        query = min(tpch_queries(), key=lambda q: q.table_count)
        statistics = tpch_statistics()
        metric_set = paper_metric_set()
        factory = PlanFactory(
            CardinalityEstimator(statistics, query.join_graph),
            MultiObjectiveCostModel(metric_set),
            default_operator_registry(),
        )
        loop = AnytimeMOQO(query, factory, ResolutionSchedule(levels=3))
        results = loop.run_resolution_sweep()
        assert len(results) == 3
        assert len(results[-1].frontier) >= len(results[0].frontier) > 0

    def test_oneshot_baseline_from_public_api(self):
        query = min(tpch_queries(), key=lambda q: q.table_count)
        factory = PlanFactory(
            CardinalityEstimator(tpch_statistics(), query.join_graph),
            MultiObjectiveCostModel(paper_metric_set()),
            default_operator_registry(),
        )
        optimizer = OneShotOptimizer(query, factory, ResolutionSchedule(levels=3))
        report = optimizer.optimize()
        assert report.frontier_size > 0
