"""End-to-end integration tests across modules on real TPC-H blocks.

These tests wire the full stack together exactly as a downstream user would --
TPC-H statistics, the default cost model, the incremental optimizer, the
baselines and the interactive layer -- and check cross-cutting properties that
the per-module unit tests cannot see.
"""

import pytest

from repro import (
    AnytimeMOQO,
    CardinalityEstimator,
    ChangeBounds,
    ExhaustiveParetoOptimizer,
    MemorylessAnytimeOptimizer,
    MultiObjectiveCostModel,
    OneShotOptimizer,
    PlanFactory,
    ResolutionSchedule,
    paper_metric_set,
)
from repro.costs.pareto import approximation_error, pareto_filter
from repro.interactive import InteractiveSession, PlanSelectingUser, weighted_sum_chooser
from repro.plans.operators import OperatorRegistry
from repro.workloads import tpch_queries, tpch_statistics


def small_registry():
    return OperatorRegistry(
        parallelism_levels=(1, 2),
        sampling_rates=(0.1,),
        join_algorithms=("hash_join", "nested_loop_join"),
    )


def make_factory(query):
    return PlanFactory(
        estimator=CardinalityEstimator(tpch_statistics(), query.join_graph),
        cost_model=MultiObjectiveCostModel(paper_metric_set()),
        operators=small_registry(),
    )


def block(name):
    return next(q for q in tpch_queries() if q.name == name)


@pytest.fixture(scope="module")
def q03():
    return block("tpch_q03")


@pytest.fixture(scope="module")
def q10():
    return block("tpch_q10")


class TestTpchEndToEnd:
    def test_full_sweep_guarantee_on_q03(self, q03):
        schedule = ResolutionSchedule(levels=4, target_precision=1.02, precision_step=0.2)
        loop = AnytimeMOQO(q03, make_factory(q03), schedule)
        results = loop.run_resolution_sweep()
        frontier = [p.cost for p in results[-1].frontier]

        exact = ExhaustiveParetoOptimizer(q03, make_factory(q03))
        exact.optimize()
        exact_frontier = [p.cost for p in exact.frontier()]

        guarantee = schedule.guaranteed_precision(q03.table_count)
        assert approximation_error(frontier, exact_frontier) <= guarantee + 1e-9

    def test_frontier_contains_distinct_tradeoffs(self, q03):
        schedule = ResolutionSchedule(levels=3, target_precision=1.01, precision_step=0.05)
        loop = AnytimeMOQO(q03, make_factory(q03), schedule)
        results = loop.run_resolution_sweep()
        non_dominated = pareto_filter([p.cost for p in results[-1].frontier])
        # Sampling and parallelism must surface genuinely different tradeoffs.
        assert len(non_dominated) >= 3
        metric_set = paper_metric_set()
        precision_values = {
            metric_set.component(c, "precision_loss") for c in non_dominated
        }
        cores_values = {metric_set.component(c, "reserved_cores") for c in non_dominated}
        assert len(precision_values) > 1
        assert len(cores_values) > 1

    def test_all_algorithms_agree_within_guarantee_on_q10(self, q10):
        schedule = ResolutionSchedule(levels=3, target_precision=1.05, precision_step=0.3)
        guarantee = schedule.guaranteed_precision(q10.table_count)

        loop = AnytimeMOQO(q10, make_factory(q10), schedule)
        iama = [p.cost for p in loop.run_resolution_sweep()[-1].frontier]

        memoryless = MemorylessAnytimeOptimizer(q10, make_factory(q10), schedule)
        memoryless.run_resolution_sweep()
        memo = [p.cost for p in memoryless.frontier()]

        oneshot = OneShotOptimizer(q10, make_factory(q10), schedule)
        oneshot.optimize()
        shot = [p.cost for p in oneshot.frontier()]

        assert approximation_error(iama, memo) <= guarantee + 1e-9
        assert approximation_error(iama, shot) <= guarantee + 1e-9
        assert approximation_error(memo, iama) <= guarantee + 1e-9

    def test_incremental_reuse_across_bound_changes(self, q10):
        metric_set = paper_metric_set()
        schedule = ResolutionSchedule(levels=4, target_precision=1.02, precision_step=0.2)
        factory = make_factory(q10)
        loop = AnytimeMOQO(q10, factory, schedule)
        loop.step()
        loop.step()

        frontier = loop.history[-1].frontier
        time_index = metric_set.index_of("execution_time")
        median = sorted(p.cost[time_index] for p in frontier)[len(frontier) // 2]
        bounds = metric_set.unbounded_vector().with_component(time_index, median)
        # The change is applied after this iteration (Algorithm 1 order).
        loop.step(ChangeBounds(bounds))
        built_before = factory.counters.total_plans_built

        # The next invocation runs under the tightened bounds at resolution 0:
        # everything it needs was generated before, so no new plans are built
        # and the visualized frontier respects the new bound.
        bounded = loop.step()
        assert bounded.resolution == 0
        assert factory.counters.total_plans_built == built_before
        assert all(p.cost[time_index] <= median for p in bounded.frontier)

    def test_interactive_session_selects_a_plan_on_tpch(self, q03):
        metric_set = paper_metric_set()
        schedule = ResolutionSchedule(levels=4, target_precision=1.01, precision_step=0.05)
        # The precision weight must outweigh the execution-time scale (~1e5
        # time units for exact plans on this block) so that the user model
        # represents someone who insists on an exact result.
        chooser = weighted_sum_chooser(
            metric_set, {"execution_time": 1.0, "precision_loss": 1e7}
        )
        session = InteractiveSession(
            q03,
            make_factory(q03),
            schedule,
            user=PlanSelectingUser(chooser, min_resolution=1),
        )
        selected = session.run(max_iterations=6)
        assert selected is not None
        assert selected.tables == q03.tables
        # The heavy precision weight steers the choice towards exact plans.
        assert metric_set.component(selected.cost, "precision_loss") <= 0.5

    def test_factory_counters_are_consistent_after_everything(self, q03):
        factory = make_factory(q03)
        schedule = ResolutionSchedule(levels=3, target_precision=1.05, precision_step=0.3)
        loop = AnytimeMOQO(q03, factory, schedule)
        loop.run_resolution_sweep()
        counters = loop.optimizer.state.counters
        assert counters.plans_generated == factory.counters.total_plans_built
        assert counters.prune_calls >= counters.plans_generated
