"""Backend selection and environment resolution tests for :mod:`repro.kernel`.

Op-level parity across backends lives in ``test_backend_conformance.py``
(one parametrized property net over every available backend); this module
covers the selection machinery only: runtime switching, name normalization,
the ``REPRO_KERNEL_BACKEND`` environment lowering, and the native tier's
honest-failure contract (an explicit request without a C compiler must raise,
never silently downgrade).
"""

import pytest

from repro import kernel

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - depends on environment
    HAVE_NUMPY = False

HAVE_NATIVE = kernel.native_available()


class TestBackendSelection:
    def test_active_backend_has_a_known_name(self):
        assert kernel.backend_name() in ("python", "numpy", "native")

    def test_use_backend_switches_and_restores(self):
        original = kernel.backend_name()
        with kernel.use_backend("python"):
            assert kernel.backend_name() == "python"
        assert kernel.backend_name() == original

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError):
            kernel.set_backend("fortran")

    def test_rejection_lists_the_valid_names_and_keeps_the_backend(self):
        original = kernel.backend_name()
        with pytest.raises(ValueError, match=r"auto.*python.*numpy.*native"):
            kernel.set_backend("fortran")
        assert kernel.backend_name() == original

    def test_non_string_backend_is_rejected(self):
        with pytest.raises(ValueError, match="must be a string"):
            kernel.set_backend(None)

    def test_backend_names_are_normalized(self):
        # set_backend accepts the same spellings as the environment variable.
        original = kernel.backend_name()
        try:
            previous = kernel.set_backend("  Python\n")
            assert previous == original
            assert kernel.backend_name() == "python"
        finally:
            kernel.set_backend(original)

    def test_auto_prefers_numpy_and_never_native(self):
        # native is excluded from auto-selection even when it would build:
        # compiling at import time must stay opt-in.
        with kernel.use_backend("auto"):
            expected = "numpy" if HAVE_NUMPY else "python"
            assert kernel.backend_name() == expected

    def test_native_request_is_honest(self):
        """Either the native tier loads, or the request fails loudly."""
        if HAVE_NATIVE:
            with kernel.use_backend("native"):
                assert kernel.backend_name() == "native"
        else:  # pragma: no cover - depends on environment
            with pytest.raises(ImportError, match="compiler"):
                kernel.set_backend("native")
            # The failed request must not have clobbered the active backend.
            assert kernel.backend_name() in ("python", "numpy")

    def test_native_available_matches_resolution(self):
        if HAVE_NATIVE:
            from repro.kernel import native_backend

            assert native_backend.NAME == "native"
            assert native_backend.COMPILER


class TestEnvironmentResolution:
    """The ``REPRO_KERNEL_BACKEND`` resolution path must never fall through
    silently: unknown values fail at import time, naming the variable and the
    valid choices."""

    def test_unknown_value_is_rejected_with_candidates(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV_VAR, "bogus")
        with pytest.raises(ValueError, match=kernel.BACKEND_ENV_VAR):
            kernel._initial_backend()
        with pytest.raises(ValueError, match=r"auto.*python.*numpy.*native"):
            kernel._initial_backend()

    def test_case_and_whitespace_are_normalized(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV_VAR, "  PYTHON ")
        assert kernel._initial_backend().NAME == "python"

    def test_empty_value_means_auto(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV_VAR, "   ")
        expected = "numpy" if HAVE_NUMPY else "python"
        assert kernel._initial_backend().NAME == expected

    def test_native_value_resolves_when_available(self, monkeypatch):
        if not HAVE_NATIVE:
            pytest.skip("no C compiler on this machine")
        monkeypatch.setenv(kernel.BACKEND_ENV_VAR, "native")
        assert kernel._initial_backend().NAME == "native"

    def test_unknown_value_fails_at_import_time(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-c", "import repro.kernel"],
            capture_output=True,
            text=True,
            env={
                **__import__("os").environ,
                kernel.BACKEND_ENV_VAR: "fortran",
            },
        )
        assert completed.returncode != 0
        assert kernel.BACKEND_ENV_VAR in completed.stderr
        assert "fortran" in completed.stderr
