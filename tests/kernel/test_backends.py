"""Backend-parity and selection tests for :mod:`repro.kernel`.

The pure-Python backend is the reference implementation; the numpy backend
must produce bit-identical results on every operation, including ``+inf``
components and tombstoned rows.  A brute-force oracle over row tuples pins
down what "correct" means independently of either backend.
"""

from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro import kernel
from repro.kernel import python_backend

try:
    from repro.kernel import numpy_backend

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - depends on environment
    HAVE_NUMPY = False

BACKENDS = [python_backend] + ([numpy_backend] if HAVE_NUMPY else [])

finite_or_inf = st.one_of(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    st.just(float("inf")),
)


@st.composite
def matrices(draw, min_rows=0, max_rows=60, min_dims=1, max_dims=4):
    dims = draw(st.integers(min_value=min_dims, max_value=max_dims))
    rows = draw(
        st.lists(
            st.tuples(*([finite_or_inf] * dims)), min_size=min_rows, max_size=max_rows
        )
    )
    alive = draw(st.lists(st.booleans(), min_size=len(rows), max_size=len(rows)))
    vector = draw(st.tuples(*([finite_or_inf] * dims)))
    columns = [array("d", (row[k] for row in rows)) for k in range(dims)]
    alive_flags = array("b", (1 if flag else 0 for flag in alive))
    return columns, alive_flags, vector, rows, alive


def oracle_leq(rows, alive, vector):
    return [
        i
        for i, row in enumerate(rows)
        if alive[i] and all(x <= v for x, v in zip(row, vector))
    ]


def oracle_geq(rows, alive, vector):
    return [
        i
        for i, row in enumerate(rows)
        if alive[i] and all(x >= v for x, v in zip(row, vector))
    ]


class TestBackendParity:
    @settings(max_examples=200)
    @given(matrices())
    def test_leq_slots_match_oracle_on_every_backend(self, case):
        columns, alive_flags, vector, rows, alive = case
        expected = oracle_leq(rows, alive, vector)
        for backend in BACKENDS:
            assert backend.leq_slots(columns, alive_flags, vector) == expected

    @settings(max_examples=200)
    @given(matrices())
    def test_geq_slots_match_oracle_on_every_backend(self, case):
        columns, alive_flags, vector, rows, alive = case
        expected = oracle_geq(rows, alive, vector)
        for backend in BACKENDS:
            assert backend.geq_slots(columns, alive_flags, vector) == expected

    @settings(max_examples=200)
    @given(matrices())
    def test_first_leq_and_any_leq_match_oracle(self, case):
        columns, alive_flags, vector, rows, alive = case
        hits = oracle_leq(rows, alive, vector)
        expected_first = hits[0] if hits else -1
        for backend in BACKENDS:
            assert backend.first_leq(columns, alive_flags, vector) == expected_first
            assert backend.any_leq(columns, alive_flags, vector) == bool(hits)

    @settings(max_examples=100)
    @given(
        matrices(),
        st.floats(min_value=1.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    )
    def test_scale_columns_is_bit_identical_across_backends(self, case, factor):
        columns, _, _, rows, _ = case
        reference = python_backend.scale_columns(columns, factor)
        for backend in BACKENDS:
            scaled = backend.scale_columns(columns, factor)
            assert [col.tolist() for col in scaled] == [
                col.tolist() for col in reference
            ]

    def test_large_block_exercises_vectorised_path(self):
        # 64 rows is above the numpy backend's small-block cutoff.
        rows = [(float(i % 7), float(i % 5)) for i in range(64)]
        columns = [array("d", (r[k] for r in rows)) for k in range(2)]
        alive = array("b", [1] * len(rows))
        expected = oracle_leq(rows, alive, (3.0, 2.0))
        for backend in BACKENDS:
            assert backend.leq_slots(columns, alive, (3.0, 2.0)) == expected


class TestBackendSelection:
    def test_active_backend_has_a_known_name(self):
        assert kernel.backend_name() in ("python", "numpy")

    def test_use_backend_switches_and_restores(self):
        original = kernel.backend_name()
        with kernel.use_backend("python"):
            assert kernel.backend_name() == "python"
        assert kernel.backend_name() == original

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError):
            kernel.set_backend("fortran")

    def test_rejection_lists_the_valid_names_and_keeps_the_backend(self):
        original = kernel.backend_name()
        with pytest.raises(ValueError, match=r"auto.*python.*numpy"):
            kernel.set_backend("fortran")
        assert kernel.backend_name() == original

    def test_non_string_backend_is_rejected(self):
        with pytest.raises(ValueError, match="must be a string"):
            kernel.set_backend(None)

    def test_backend_names_are_normalized(self):
        # set_backend accepts the same spellings as the environment variable.
        original = kernel.backend_name()
        try:
            previous = kernel.set_backend("  Python\n")
            assert previous == original
            assert kernel.backend_name() == "python"
        finally:
            kernel.set_backend(original)

    def test_auto_prefers_numpy_when_available(self):
        with kernel.use_backend("auto"):
            expected = "numpy" if HAVE_NUMPY else "python"
            assert kernel.backend_name() == expected


class TestEnvironmentResolution:
    """The ``REPRO_KERNEL_BACKEND`` resolution path must never fall through
    silently: unknown values fail at import time, naming the variable and the
    valid choices."""

    def test_unknown_value_is_rejected_with_candidates(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV_VAR, "bogus")
        with pytest.raises(ValueError, match=kernel.BACKEND_ENV_VAR):
            kernel._initial_backend()
        with pytest.raises(ValueError, match=r"auto.*python.*numpy"):
            kernel._initial_backend()

    def test_case_and_whitespace_are_normalized(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV_VAR, "  PYTHON ")
        assert kernel._initial_backend().NAME == "python"

    def test_empty_value_means_auto(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV_VAR, "   ")
        expected = "numpy" if HAVE_NUMPY else "python"
        assert kernel._initial_backend().NAME == expected

    def test_unknown_value_fails_at_import_time(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-c", "import repro.kernel"],
            capture_output=True,
            text=True,
            env={
                **__import__("os").environ,
                kernel.BACKEND_ENV_VAR: "fortran",
            },
        )
        assert completed.returncode != 0
        assert kernel.BACKEND_ENV_VAR in completed.stderr
        assert "fortran" in completed.stderr
