"""Backend equivalence of the block-costing kernel ops (take / combine).

The arena's batched costing path stands on two kernel primitives added with
the plan-arena refactor: ``take`` (gather child cost rows by slot) and
``combine_columns`` (vectorized per-metric aggregation).  Like the dominance
ops, both must be bit-identical across the pure-Python and numpy backends and
bit-identical to the scalar reference (``AggregationFunction.combine`` /
plain indexing), including ``+inf`` components and the clamping edge cases of
the precision-loss formula.
"""

import math
import random
from array import array

import pytest

from repro import kernel
from repro.costs import aggregation as agg
from repro.costs.metrics import (
    MetricSet,
    aggregation_spec,
    extended_metric_set,
    paper_metric_set,
)
from repro.costs.vector import CostVector

try:
    import numpy  # noqa: F401

    BACKENDS = ("python", "numpy")
except ImportError:  # pragma: no cover - depends on environment
    BACKENDS = ("python",)

AGGREGATIONS = [
    agg.SumAggregation(),
    agg.MaxAggregation(),
    agg.PipelineMaxAggregation(),
    agg.MinAggregation(),
    agg.ScaledSumAggregation(1.5, 2.0),
    agg.PrecisionLossAggregation(),
]

SIZES = (3, 17, 300)  # below and above the numpy SMALL_BLOCK cutoff


def make_column(size, seed, with_inf=False, upper=100.0):
    rng = random.Random(seed)
    values = [rng.uniform(0.0, upper) for _ in range(size)]
    if with_inf and size >= 4:
        values[1] = math.inf
        values[-2] = math.inf
    return array("d", values)


class TestCombineColumns:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("aggregation", AGGREGATIONS, ids=lambda a: a.name)
    @pytest.mark.parametrize("size", SIZES)
    def test_matches_scalar_reference(self, backend, aggregation, size):
        upper = 2.0 if isinstance(aggregation, agg.PrecisionLossAggregation) else 100.0
        left = make_column(size, seed=1, upper=upper)
        right = make_column(size, seed=2, upper=upper)
        local = 0.75
        spec = aggregation_spec(aggregation)
        assert spec is not None
        expected = [aggregation.combine(l, r, local) for l, r in zip(left, right)]
        with kernel.use_backend(backend):
            result = list(kernel.ops.combine_columns(spec, left, right, local))
        assert result == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "aggregation",
        [a for a in AGGREGATIONS if not isinstance(a, agg.PrecisionLossAggregation)],
        ids=lambda a: a.name,
    )
    def test_infinite_components(self, backend, aggregation):
        left = make_column(32, seed=3, with_inf=True)
        right = make_column(32, seed=4, with_inf=True)
        spec = aggregation_spec(aggregation)
        expected = [aggregation.combine(l, r, 1.0) for l, r in zip(left, right)]
        with kernel.use_backend(backend):
            result = list(kernel.ops.combine_columns(spec, left, right, 1.0))
        assert result == expected

    def test_backends_bit_identical(self):
        if len(BACKENDS) < 2:
            pytest.skip("numpy not available")
        for aggregation in AGGREGATIONS:
            upper = 3.0 if isinstance(aggregation, agg.PrecisionLossAggregation) else 1e9
            left = make_column(257, seed=5, upper=upper)
            right = make_column(257, seed=6, upper=upper)
            spec = aggregation_spec(aggregation)
            with kernel.use_backend("python"):
                py = kernel.ops.combine_columns(spec, left, right, 0.125).tobytes()
            with kernel.use_backend("numpy"):
                np_ = kernel.ops.combine_columns(spec, left, right, 0.125).tobytes()
            assert py == np_, aggregation.name

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unknown_spec_rejected(self, backend):
        with kernel.use_backend(backend):
            with pytest.raises(ValueError):
                kernel.ops.combine_columns(
                    ("bogus",), array("d", [1.0]), array("d", [1.0]), 0.0
                )


class TestTake:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("size", SIZES)
    def test_gathers_rows_in_order(self, backend, size):
        columns = [make_column(size, seed=d, with_inf=True) for d in range(3)]
        rng = random.Random(9)
        indices = [rng.randrange(size) for _ in range(size * 2)]
        with kernel.use_backend(backend):
            gathered = kernel.ops.take(columns, indices)
        assert [list(col) for col in gathered] == [
            [col[i] for i in indices] for col in columns
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_indices(self, backend):
        columns = [make_column(8, seed=1)]
        with kernel.use_backend(backend):
            assert [list(c) for c in kernel.ops.take(columns, [])] == [[]]


class TestMetricSetCombineColumns:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "metric_set",
        [paper_metric_set(), extended_metric_set(7)],
        ids=["paper", "extended7"],
    )
    def test_matches_per_row_combine(self, backend, metric_set):
        dims = metric_set.dimensions
        rng = random.Random(11)
        rows = 40
        left_rows = [
            CostVector([rng.uniform(0.0, 50.0) for _ in range(dims)])
            for _ in range(rows)
        ]
        right_rows = [
            CostVector([rng.uniform(0.0, 50.0) for _ in range(dims)])
            for _ in range(rows)
        ]
        local = CostVector([rng.uniform(0.0, 5.0) for _ in range(dims)])
        left_columns = [
            array("d", (row[d] for row in left_rows)) for d in range(dims)
        ]
        right_columns = [
            array("d", (row[d] for row in right_rows)) for d in range(dims)
        ]
        with kernel.use_backend(backend):
            combined = metric_set.combine_columns(left_columns, right_columns, local)
        for index in range(rows):
            expected = metric_set.combine(left_rows[index], right_rows[index], local)
            actual = tuple(combined[d][index] for d in range(dims))
            assert actual == tuple(expected)

    def test_unknown_aggregation_falls_back_to_per_element_loop(self):
        class Weird(agg.AggregationFunction):
            name = "weird"

            def combine(self, left, right, local):
                return left + 2.0 * right + local

        metric = __import__("repro.costs.metrics", fromlist=["Metric"]).Metric(
            name="weird", unit="u", aggregation=Weird()
        )
        assert aggregation_spec(Weird()) is None
        metric_set = MetricSet([metric])
        combined = metric_set.combine_columns(
            [array("d", [1.0, 2.0])], [array("d", [3.0, 4.0])], CostVector([0.5])
        )
        assert list(combined[0]) == [1.0 + 6.0 + 0.5, 2.0 + 8.0 + 0.5]

    def test_dimension_mismatch_rejected(self):
        metric_set = paper_metric_set()
        with pytest.raises(ValueError):
            metric_set.combine_columns(
                [array("d", [1.0])], [array("d", [1.0])], CostVector([0.0, 0.0, 0.0])
            )
