"""One conformance suite for every kernel backend, from one source of truth.

Every backend (pure Python, numpy, and the compiled native tier when a C
compiler is available) must implement the full kernel op surface --
``leq_slots`` / ``geq_slots`` / ``first_leq`` / ``any_leq`` /
``scale_columns`` / ``take`` / ``combine_columns`` / ``pareto_mask`` --
bit-identically.  This module pins that contract once, parametrized over the
backends that can load on this machine, instead of the per-backend test
copies it replaced: brute-force oracles over row tuples define "correct"
independently of any backend, hypothesis drives the edge cases (+inf,
tombstones, ties, empty blocks), and dedicated regression tests cover the
blocks far beyond 4096 rows where the numpy Pareto sweep must stay tiled.
"""

import math
import random
from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro import kernel
from repro.costs import aggregation as agg
from repro.costs.metrics import (
    MetricSet,
    aggregation_spec,
    extended_metric_set,
    paper_metric_set,
)
from repro.costs.vector import CostVector

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - depends on environment
    HAVE_NUMPY = False

HAVE_NATIVE = kernel.native_available()

#: Every backend importable on this machine; the suite runs the identical
#: assertions against each one.
BACKENDS = (
    ("python",)
    + (("numpy",) if HAVE_NUMPY else ())
    + (("native",) if HAVE_NATIVE else ())
)

AGGREGATIONS = [
    agg.SumAggregation(),
    agg.MaxAggregation(),
    agg.PipelineMaxAggregation(),
    agg.MinAggregation(),
    agg.ScaledSumAggregation(1.5, 2.0),
    agg.PrecisionLossAggregation(),
]

SIZES = (3, 17, 300)  # below and above the vectorised-path cutoffs


# ----------------------------------------------------------------------
# Case generators and oracles
# ----------------------------------------------------------------------
finite_or_inf = st.one_of(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    st.just(float("inf")),
)


@st.composite
def matrices(draw, min_rows=0, max_rows=60, min_dims=1, max_dims=4):
    dims = draw(st.integers(min_value=min_dims, max_value=max_dims))
    rows = draw(
        st.lists(
            st.tuples(*([finite_or_inf] * dims)), min_size=min_rows, max_size=max_rows
        )
    )
    alive = draw(st.lists(st.booleans(), min_size=len(rows), max_size=len(rows)))
    vector = draw(st.tuples(*([finite_or_inf] * dims)))
    # Duplicated rows make the pareto stable-tie contract observable.
    if len(rows) >= 2 and draw(st.booleans()):
        src = draw(st.integers(min_value=0, max_value=len(rows) - 1))
        dst = draw(st.integers(min_value=0, max_value=len(rows) - 1))
        rows[dst] = rows[src]
    columns = [array("d", (row[k] for row in rows)) for k in range(dims)]
    alive_flags = array("b", (1 if flag else 0 for flag in alive))
    return columns, alive_flags, vector, rows, alive


def oracle_leq(rows, alive, vector):
    return [
        i
        for i, row in enumerate(rows)
        if alive[i] and all(x <= v for x, v in zip(row, vector))
    ]


def oracle_geq(rows, alive, vector):
    return [
        i
        for i, row in enumerate(rows)
        if alive[i] and all(x >= v for x, v in zip(row, vector))
    ]


def oracle_pareto(rows, alive):
    """Brute-force O(n^2) strict-dominance frontier, in slot order.

    A live row is kept iff no other live row dominates it -- where "row j
    dominates row i" means component-wise ``<=`` and either strictly smaller
    somewhere or an identical row at an earlier slot (equal rows keep exactly
    the earliest representative).
    """
    live = [i for i in range(len(rows)) if alive[i]]

    def dominated(i):
        for j in live:
            if j == i:
                continue
            if all(a <= b for a, b in zip(rows[j], rows[i])) and (
                rows[j] != rows[i] or j < i
            ):
                return True
        return False

    return [not dominated(i) for i in live]


def make_column(size, seed, with_inf=False, upper=100.0):
    rng = random.Random(seed)
    values = [rng.uniform(0.0, upper) for _ in range(size)]
    if with_inf and size >= 4:
        values[1] = math.inf
        values[-2] = math.inf
    return array("d", values)


# ----------------------------------------------------------------------
# Dominance-op conformance (property net, all backends)
# ----------------------------------------------------------------------
class TestDominanceOps:
    @settings(max_examples=200)
    @given(matrices())
    def test_leq_slots_match_oracle_on_every_backend(self, case):
        columns, alive_flags, vector, rows, alive = case
        expected = oracle_leq(rows, alive, vector)
        for backend in BACKENDS:
            with kernel.use_backend(backend):
                assert kernel.ops.leq_slots(columns, alive_flags, vector) == expected

    @settings(max_examples=200)
    @given(matrices())
    def test_geq_slots_match_oracle_on_every_backend(self, case):
        columns, alive_flags, vector, rows, alive = case
        expected = oracle_geq(rows, alive, vector)
        for backend in BACKENDS:
            with kernel.use_backend(backend):
                assert kernel.ops.geq_slots(columns, alive_flags, vector) == expected

    @settings(max_examples=200)
    @given(matrices())
    def test_first_leq_and_any_leq_match_oracle(self, case):
        columns, alive_flags, vector, rows, alive = case
        hits = oracle_leq(rows, alive, vector)
        expected_first = hits[0] if hits else -1
        for backend in BACKENDS:
            with kernel.use_backend(backend):
                assert kernel.ops.first_leq(columns, alive_flags, vector) == expected_first
                assert kernel.ops.any_leq(columns, alive_flags, vector) == bool(hits)

    @settings(max_examples=200)
    @given(matrices())
    def test_pareto_mask_matches_oracle_on_every_backend(self, case):
        columns, alive_flags, _, rows, alive = case
        expected = oracle_pareto(rows, alive)
        for backend in BACKENDS:
            with kernel.use_backend(backend):
                assert kernel.ops.pareto_mask(columns, alive_flags) == expected

    @settings(max_examples=100)
    @given(
        matrices(),
        st.floats(min_value=1.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    )
    def test_scale_columns_is_bit_identical_across_backends(self, case, factor):
        columns, _, _, rows, _ = case
        with kernel.use_backend("python"):
            reference = kernel.ops.scale_columns(columns, factor)
        for backend in BACKENDS:
            with kernel.use_backend(backend):
                scaled = kernel.ops.scale_columns(columns, factor)
            assert [col.tobytes() for col in scaled] == [
                col.tobytes() for col in reference
            ]

    def test_large_block_exercises_vectorised_path(self):
        # 64 rows is above every backend's small-block cutoff.
        rows = [(float(i % 7), float(i % 5)) for i in range(64)]
        columns = [array("d", (r[k] for r in rows)) for k in range(2)]
        alive = array("b", [1] * len(rows))
        expected = oracle_leq(rows, alive, (3.0, 2.0))
        for backend in BACKENDS:
            with kernel.use_backend(backend):
                assert kernel.ops.leq_slots(columns, alive, (3.0, 2.0)) == expected


# ----------------------------------------------------------------------
# Pareto sweep on blocks far beyond 4096 rows (tiled-broadcast regression)
# ----------------------------------------------------------------------
class TestParetoLargeBlocks:
    """The numpy sweep tiles the candidate-vs-frontier broadcast; these
    blocks cross several tile boundaries (exact multiples and off-by-a-prime
    sizes) so a regression in the tile stitching cannot hide, and peak
    memory stays bounded by the tile size rather than ``O(n^2)``."""

    @pytest.mark.slow
    @pytest.mark.parametrize("size", [10240, 10243])  # 10*TILE, non-multiple
    def test_far_beyond_4096_bit_identical_across_backends(self, size):
        rng = random.Random(size)
        dims = 3
        # Clustered values produce long runs of primary-key ties plus exact
        # duplicate rows -- the hard cases of the sorted sweep.
        choices = [float(v) for v in range(40)] + [math.inf]
        columns = [
            array("d", (rng.choice(choices) for _ in range(size)))
            for _ in range(dims)
        ]
        alive = array("b", (1 if rng.random() > 0.05 else 0 for _ in range(size)))
        with kernel.use_backend("python"):
            expected = kernel.ops.pareto_mask(columns, alive)
        for backend in BACKENDS[1:]:
            with kernel.use_backend(backend):
                assert kernel.ops.pareto_mask(columns, alive) == expected, backend

    def test_tile_boundary_dominance_is_seen(self):
        if not HAVE_NUMPY:
            pytest.skip("numpy not available")
        from repro.kernel import numpy_backend

        # A dominating row in tile 0 must eliminate rows in later tiles, and
        # a within-tile dominator must eliminate rows admitted after it in
        # the same tile.
        size = numpy_backend.PARETO_TILE * 2 + 5
        columns = [
            array("d", range(size)),
            array("d", [float(size - i) for i in range(size)]),
        ]
        # Make one early row dominate everything after the first tile.
        columns[0][3] = 0.0
        columns[1][3] = 0.0
        alive = array("b", [1] * size)
        with kernel.use_backend("python"):
            expected = kernel.ops.pareto_mask(columns, alive)
        with kernel.use_backend("numpy"):
            assert kernel.ops.pareto_mask(columns, alive) == expected


# ----------------------------------------------------------------------
# Block-costing ops: combine_columns / take (all backends)
# ----------------------------------------------------------------------
class TestCombineColumns:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("aggregation", AGGREGATIONS, ids=lambda a: a.name)
    @pytest.mark.parametrize("size", SIZES)
    def test_matches_scalar_reference(self, backend, aggregation, size):
        upper = 2.0 if isinstance(aggregation, agg.PrecisionLossAggregation) else 100.0
        left = make_column(size, seed=1, upper=upper)
        right = make_column(size, seed=2, upper=upper)
        local = 0.75
        spec = aggregation_spec(aggregation)
        assert spec is not None
        expected = [aggregation.combine(l, r, local) for l, r in zip(left, right)]
        with kernel.use_backend(backend):
            result = list(kernel.ops.combine_columns(spec, left, right, local))
        assert result == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "aggregation",
        [a for a in AGGREGATIONS if not isinstance(a, agg.PrecisionLossAggregation)],
        ids=lambda a: a.name,
    )
    def test_infinite_components(self, backend, aggregation):
        left = make_column(32, seed=3, with_inf=True)
        right = make_column(32, seed=4, with_inf=True)
        spec = aggregation_spec(aggregation)
        expected = [aggregation.combine(l, r, 1.0) for l, r in zip(left, right)]
        with kernel.use_backend(backend):
            result = list(kernel.ops.combine_columns(spec, left, right, 1.0))
        assert result == expected

    def test_backends_bit_identical(self):
        if len(BACKENDS) < 2:
            pytest.skip("only the python backend is available")
        for aggregation in AGGREGATIONS:
            upper = 3.0 if isinstance(aggregation, agg.PrecisionLossAggregation) else 1e9
            left = make_column(257, seed=5, upper=upper)
            right = make_column(257, seed=6, upper=upper)
            spec = aggregation_spec(aggregation)
            results = {}
            for backend in BACKENDS:
                with kernel.use_backend(backend):
                    results[backend] = kernel.ops.combine_columns(
                        spec, left, right, 0.125
                    ).tobytes()
            assert len(set(results.values())) == 1, (aggregation.name, results.keys())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unknown_spec_rejected(self, backend):
        with kernel.use_backend(backend):
            with pytest.raises(ValueError):
                kernel.ops.combine_columns(
                    ("bogus",), array("d", [1.0] * 32), array("d", [1.0] * 32), 0.0
                )


class TestTake:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("size", SIZES)
    def test_gathers_rows_in_order(self, backend, size):
        columns = [make_column(size, seed=d, with_inf=True) for d in range(3)]
        rng = random.Random(9)
        indices = [rng.randrange(size) for _ in range(size * 2)]
        with kernel.use_backend(backend):
            gathered = kernel.ops.take(columns, indices)
        assert [list(col) for col in gathered] == [
            [col[i] for i in indices] for col in columns
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_indices(self, backend):
        columns = [make_column(8, seed=1)]
        with kernel.use_backend(backend):
            assert [list(c) for c in kernel.ops.take(columns, [])] == [[]]


class TestMetricSetCombineColumns:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "metric_set",
        [paper_metric_set(), extended_metric_set(7)],
        ids=["paper", "extended7"],
    )
    def test_matches_per_row_combine(self, backend, metric_set):
        dims = metric_set.dimensions
        rng = random.Random(11)
        rows = 40
        left_rows = [
            CostVector([rng.uniform(0.0, 50.0) for _ in range(dims)])
            for _ in range(rows)
        ]
        right_rows = [
            CostVector([rng.uniform(0.0, 50.0) for _ in range(dims)])
            for _ in range(rows)
        ]
        local = CostVector([rng.uniform(0.0, 5.0) for _ in range(dims)])
        left_columns = [
            array("d", (row[d] for row in left_rows)) for d in range(dims)
        ]
        right_columns = [
            array("d", (row[d] for row in right_rows)) for d in range(dims)
        ]
        with kernel.use_backend(backend):
            combined = metric_set.combine_columns(left_columns, right_columns, local)
        for index in range(rows):
            expected = metric_set.combine(left_rows[index], right_rows[index], local)
            actual = tuple(combined[d][index] for d in range(dims))
            assert actual == tuple(expected)

    def test_unknown_aggregation_falls_back_to_per_element_loop(self):
        class Weird(agg.AggregationFunction):
            name = "weird"

            def combine(self, left, right, local):
                return left + 2.0 * right + local

        metric = __import__("repro.costs.metrics", fromlist=["Metric"]).Metric(
            name="weird", unit="u", aggregation=Weird()
        )
        assert aggregation_spec(Weird()) is None
        metric_set = MetricSet([metric])
        combined = metric_set.combine_columns(
            [array("d", [1.0, 2.0])], [array("d", [3.0, 4.0])], CostVector([0.5])
        )
        assert list(combined[0]) == [1.0 + 6.0 + 0.5, 2.0 + 8.0 + 0.5]

    def test_dimension_mismatch_rejected(self):
        metric_set = paper_metric_set()
        with pytest.raises(ValueError):
            metric_set.combine_columns(
                [array("d", [1.0])], [array("d", [1.0])], CostVector([0.0, 0.0, 0.0])
            )
