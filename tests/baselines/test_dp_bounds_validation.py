"""Regression test: the DP must reject bounds of the wrong dimensionality.

The pre-arena implementation failed fast inside ``within_bounds`` (a
``dominates`` call raising on mismatched vector lengths); the arena port's
row comparisons are plain ``zip`` loops that would silently truncate, so the
validation now happens once per run.
"""

import pytest

from repro.api import OptimizeRequest, resolve_request
from repro.baselines.common import ApproximateParetoDP
from repro.costs.vector import CostVector


def test_run_rejects_mismatched_bounds():
    resolved = resolve_request(
        OptimizeRequest(workload="gen:chain:3:0", algorithm="oneshot", scale="tiny")
    )
    dp = ApproximateParetoDP(resolved.query, resolved.factory)
    assert resolved.factory.metric_set.dimensions == 3
    with pytest.raises(ValueError, match="3 metrics"):
        dp.run(CostVector([10.0]), alpha=1.5)
    with pytest.raises(ValueError, match="3 metrics"):
        dp.run(CostVector([10.0, 10.0, 10.0, 10.0]), alpha=1.5)
