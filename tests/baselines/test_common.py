"""Unit tests for :mod:`repro.baselines.common` (the from-scratch DP)."""

import pytest

from repro.baselines.common import ApproximateParetoDP
from repro.costs.pareto import approximation_error, pareto_filter
from tests.conftest import build_chain_query, build_factory


def make_dp(**kwargs):
    query = build_chain_query()
    factory = build_factory(query)
    return ApproximateParetoDP(query, factory, **kwargs), factory


class TestRun:
    def test_produces_complete_plans(self):
        dp, factory = make_dp()
        report = dp.run(factory.metric_set.unbounded_vector(), alpha=1.1)
        assert report.frontier_size > 0
        assert all(p.tables == dp.query.tables for p in dp.frontier())

    def test_rejects_alpha_below_one(self):
        dp, factory = make_dp()
        with pytest.raises(ValueError):
            dp.run(factory.metric_set.unbounded_vector(), alpha=0.5)

    def test_every_run_starts_from_scratch(self):
        dp, factory = make_dp()
        bounds = factory.metric_set.unbounded_vector()
        first = dp.run(bounds, alpha=1.1)
        second = dp.run(bounds, alpha=1.1)
        # Memoryless: the second run regenerates every plan.
        assert second.plans_generated == first.plans_generated
        assert factory.counters.total_plans_built >= 2 * first.plans_generated

    def test_finer_alpha_keeps_at_least_as_many_plans(self):
        dp, factory = make_dp()
        bounds = factory.metric_set.unbounded_vector()
        coarse = dp.run(bounds, alpha=1.5)
        fine = dp.run(bounds, alpha=1.01)
        assert fine.plans_kept >= coarse.plans_kept

    def test_bounds_restrict_the_frontier(self):
        dp, factory = make_dp()
        bounds = factory.metric_set.unbounded_vector()
        dp.run(bounds, alpha=1.1)
        costs = [p.cost for p in dp.frontier()]
        cutoff = sorted(c[0] for c in costs)[len(costs) // 2]
        tight = bounds.with_component(0, cutoff)
        dp.run(tight, alpha=1.1)
        assert all(p.cost[0] <= cutoff for p in dp.frontier())

    def test_keep_dominated_false_yields_minimal_sets(self):
        keeping, keeping_factory = make_dp(keep_dominated=True)
        evicting, evicting_factory = make_dp(keep_dominated=False)
        bounds_a = keeping_factory.metric_set.unbounded_vector()
        bounds_b = evicting_factory.metric_set.unbounded_vector()
        report_keep = keeping.run(bounds_a, alpha=1.1)
        report_evict = evicting.run(bounds_b, alpha=1.1)
        assert report_evict.plans_kept <= report_keep.plans_kept

    def test_duration_is_measured(self):
        dp, factory = make_dp()
        report = dp.run(factory.metric_set.unbounded_vector(), alpha=1.1)
        assert report.duration_seconds > 0


class TestApproximationQuality:
    def test_alpha_one_with_eviction_is_exact_pareto(self):
        dp, factory = make_dp(keep_dominated=False)
        dp.run(factory.metric_set.unbounded_vector(), alpha=1.0)
        frontier_costs = [p.cost for p in dp.frontier()]
        assert approximation_error(frontier_costs, frontier_costs) == 1.0
        # Minimal frontier: no plan dominates another.
        assert len(pareto_filter(frontier_costs)) == len(set(frontier_costs))

    def test_approximate_run_covers_exact_run(self):
        exact, exact_factory = make_dp(keep_dominated=False)
        exact.run(exact_factory.metric_set.unbounded_vector(), alpha=1.0)
        exact_costs = [p.cost for p in exact.frontier()]

        alpha = 1.2
        approx, approx_factory = make_dp()
        approx.run(approx_factory.metric_set.unbounded_vector(), alpha=alpha)
        approx_costs = [p.cost for p in approx.frontier()]
        guarantee = alpha ** exact.query.table_count
        assert approximation_error(approx_costs, exact_costs) <= guarantee + 1e-9
