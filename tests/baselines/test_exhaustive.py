"""Unit tests for :mod:`repro.baselines.exhaustive`."""

import pytest

from repro.baselines.exhaustive import ExhaustiveParetoOptimizer
from repro.costs.dominance import strictly_dominates
from repro.costs.pareto import is_alpha_cover
from tests.conftest import build_chain_query, build_factory


def make_exhaustive():
    query = build_chain_query()
    factory = build_factory(query)
    return ExhaustiveParetoOptimizer(query, factory), factory


class TestExhaustive:
    def test_frontier_is_mutually_non_dominated(self):
        optimizer, _ = make_exhaustive()
        optimizer.optimize()
        frontier = [p.cost for p in optimizer.frontier()]
        assert frontier
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not strictly_dominates(a, b)

    def test_frontier_covers_every_generated_complete_plan(self):
        optimizer, factory = make_exhaustive()
        optimizer.optimize()
        frontier = [p.cost for p in optimizer.frontier()]
        assert is_alpha_cover(frontier, frontier, alpha=1.0)

    def test_report_has_alpha_one(self):
        optimizer, _ = make_exhaustive()
        report = optimizer.optimize()
        assert report.alpha == 1.0

    def test_bounded_optimization(self):
        optimizer, factory = make_exhaustive()
        optimizer.optimize()
        costs = [p.cost for p in optimizer.frontier()]
        cutoff = sorted(c[0] for c in costs)[len(costs) // 2]
        bounds = factory.metric_set.unbounded_vector().with_component(0, cutoff)
        optimizer.optimize(bounds)
        assert all(p.cost[0] <= cutoff for p in optimizer.frontier())

    def test_reports_accumulate(self):
        optimizer, _ = make_exhaustive()
        optimizer.optimize()
        optimizer.optimize()
        assert len(optimizer.reports) == 2
