"""Unit tests for :mod:`repro.baselines.single_objective`."""

import pytest

from repro.baselines.exhaustive import ExhaustiveParetoOptimizer
from repro.baselines.single_objective import SingleObjectiveOptimizer
from repro.catalog.cardinality import JoinGraph
from repro.plans.query import Query
from tests.conftest import build_chain_query, build_factory


class TestSingleObjective:
    def test_finds_a_complete_plan(self):
        query = build_chain_query()
        factory = build_factory(query)
        optimizer = SingleObjectiveOptimizer(query, factory, "execution_time")
        plan = optimizer.optimize()
        assert plan.tables == query.tables
        assert optimizer.report is not None
        assert optimizer.report.best_cost == plan.cost[factory.metric_set.index_of("execution_time")]

    def test_best_cost_matches_exhaustive_minimum(self):
        query = build_chain_query()
        factory = build_factory(query)
        optimizer = SingleObjectiveOptimizer(query, factory, "execution_time")
        best = optimizer.optimize()

        exhaustive = ExhaustiveParetoOptimizer(query, build_factory(query))
        exhaustive.optimize()
        index = factory.metric_set.index_of("execution_time")
        exact_best = min(p.cost[index] for p in exhaustive.frontier())
        assert best.cost[index] == pytest.approx(exact_best)

    def test_different_metrics_can_prefer_different_plans(self):
        query = build_chain_query()
        time_plan = SingleObjectiveOptimizer(query, build_factory(query), "execution_time").optimize()
        core_plan = SingleObjectiveOptimizer(query, build_factory(query), "reserved_cores").optimize()
        metric_set = build_factory(query).metric_set
        cores_index = metric_set.index_of("reserved_cores")
        assert core_plan.cost[cores_index] <= time_plan.cost[cores_index]

    def test_unknown_metric_rejected(self):
        query = build_chain_query()
        factory = build_factory(query)
        with pytest.raises(KeyError):
            SingleObjectiveOptimizer(query, factory, "latency")

    def test_best_plan_lookup_for_subsets(self):
        query = build_chain_query()
        factory = build_factory(query)
        optimizer = SingleObjectiveOptimizer(query, factory, "execution_time")
        optimizer.optimize()
        partial = optimizer.best_plan(frozenset({"customers", "orders"}))
        assert partial.tables == frozenset({"customers", "orders"})
        with pytest.raises(KeyError):
            optimizer.best_plan(frozenset({"customers", "items"}))

    def test_disconnected_query_requires_cross_products(self):
        query = Query("disconnected", JoinGraph(tables=["customers", "items"]))
        factory = build_factory(query)
        optimizer = SingleObjectiveOptimizer(query, factory, "execution_time")
        with pytest.raises(RuntimeError):
            optimizer.optimize()
        allowing = SingleObjectiveOptimizer(
            query, build_factory(query), "execution_time", allow_cross_products=True
        )
        plan = allowing.optimize()
        assert plan.tables == query.tables

    def test_report_counts_generated_plans(self):
        query = build_chain_query()
        factory = build_factory(query)
        optimizer = SingleObjectiveOptimizer(query, factory, "execution_time")
        optimizer.optimize()
        assert optimizer.report.plans_generated == factory.counters.total_plans_built
