"""Unit tests for :mod:`repro.baselines.oneshot`."""

import pytest

from repro.baselines.oneshot import OneShotOptimizer
from repro.core.resolution import ResolutionSchedule
from tests.conftest import build_chain_query, build_factory


def make_oneshot(levels=5):
    query = build_chain_query()
    factory = build_factory(query)
    schedule = ResolutionSchedule(levels=levels, target_precision=1.05, precision_step=0.3)
    return OneShotOptimizer(query, factory, schedule), factory, schedule


class TestOneShot:
    def test_single_invocation_at_target_precision(self):
        optimizer, factory, schedule = make_oneshot()
        reports = optimizer.run_resolution_sweep()
        assert len(reports) == 1
        assert reports[0].alpha == pytest.approx(schedule.target_precision)

    def test_default_bounds_are_unbounded(self):
        optimizer, factory, schedule = make_oneshot()
        report = optimizer.optimize()
        assert not report.bounds.is_finite()

    def test_number_of_levels_does_not_matter(self):
        one_level, factory_a, _ = make_oneshot(levels=1)
        many_levels, factory_b, _ = make_oneshot(levels=20)
        report_one = one_level.optimize()
        report_many = many_levels.optimize()
        assert report_one.plans_generated == report_many.plans_generated
        assert report_one.frontier_size == report_many.frontier_size

    def test_frontier_contains_complete_plans(self):
        optimizer, factory, _ = make_oneshot()
        optimizer.optimize()
        assert optimizer.frontier()
        assert all(p.tables == optimizer.query.tables for p in optimizer.frontier())

    def test_reports_accumulate(self):
        optimizer, factory, _ = make_oneshot()
        optimizer.optimize()
        optimizer.optimize()
        assert len(optimizer.reports) == 2

    def test_explicit_bounds_are_used(self):
        optimizer, factory, _ = make_oneshot()
        bounds = factory.metric_set.unbounded_vector().with_component(0, 1.0)
        report = optimizer.optimize(bounds)
        assert report.bounds == bounds
