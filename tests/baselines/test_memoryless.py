"""Unit tests for :mod:`repro.baselines.memoryless`."""

import pytest

from repro.baselines.memoryless import MemorylessAnytimeOptimizer
from repro.core.control import AnytimeMOQO
from repro.core.resolution import ResolutionSchedule
from tests.conftest import build_chain_query, build_factory


def make_memoryless(levels=3):
    query = build_chain_query()
    factory = build_factory(query)
    schedule = ResolutionSchedule(levels=levels, target_precision=1.05, precision_step=0.3)
    return MemorylessAnytimeOptimizer(query, factory, schedule), factory, schedule


class TestMemoryless:
    def test_sweep_runs_once_per_resolution_level(self):
        optimizer, factory, schedule = make_memoryless(levels=4)
        reports = optimizer.run_resolution_sweep()
        assert len(reports) == 4
        assert [r.alpha for r in reports] == pytest.approx(schedule.factors())

    def test_each_invocation_regenerates_plans(self):
        optimizer, factory, _ = make_memoryless(levels=3)
        reports = optimizer.run_resolution_sweep()
        total_generated = sum(r.plans_generated for r in reports)
        assert factory.counters.total_plans_built == total_generated
        # From scratch each time: strictly more total work than a single run.
        assert total_generated > reports[-1].plans_generated

    def test_step_advances_resolution(self):
        optimizer, factory, _ = make_memoryless(levels=3)
        assert optimizer.resolution == 0
        optimizer.step()
        assert optimizer.resolution == 1
        optimizer.step()
        optimizer.step()
        assert optimizer.resolution == 2  # saturates at the maximum

    def test_explicit_resolution_override(self):
        optimizer, factory, schedule = make_memoryless(levels=3)
        report = optimizer.step(resolution=2)
        assert report.alpha == pytest.approx(schedule.alpha(2))

    def test_frontier_of_last_invocation(self):
        optimizer, factory, _ = make_memoryless()
        optimizer.run_resolution_sweep()
        assert optimizer.frontier()
        assert all(p.tables == optimizer.query.tables for p in optimizer.frontier())

    def test_mirrors_incremental_result_quality(self):
        """The memoryless baseline mirrors IAMA's result sets (Section 6.1).

        Generation order inside a table set may differ slightly between the
        two implementations, so the sets are compared by mutual approximate
        coverage at the resolution-0 guarantee instead of exact equality.
        """
        from repro.costs.pareto import approximation_error

        query = build_chain_query()
        schedule = ResolutionSchedule(levels=3, target_precision=1.05, precision_step=0.3)

        factory_a = build_factory(query)
        memoryless = MemorylessAnytimeOptimizer(query, factory_a, schedule)
        memoryless.run_resolution_sweep()
        memoryless_costs = [p.cost for p in memoryless.frontier()]

        factory_b = build_factory(query)
        incremental = AnytimeMOQO(query, factory_b, schedule)
        results = incremental.run_resolution_sweep()
        incremental_costs = [p.cost for p in results[-1].frontier]

        guarantee = schedule.guaranteed_precision(query.table_count)
        assert approximation_error(memoryless_costs, incremental_costs) <= guarantee + 1e-9
        assert approximation_error(incremental_costs, memoryless_costs) <= guarantee + 1e-9
