"""Unit tests for the ablation harness: registry, grid, merge, gate."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import flags
from repro.bench.ablation import (
    BASELINE_CONFIG,
    FEATURES,
    AblationConfig,
    Feature,
    FeatureRegistry,
    SPEC,
    ablated_feature,
    ablation_json_payload,
    check_gate,
    digest_of,
    write_ablation_json,
)
from repro.bench.cache import ResultCache, cell_key
from repro.bench.config import tiny_config
from repro.bench.registry import get_spec, registered_names
from repro.bench.scheduler import run_experiment

REPO_ROOT = Path(__file__).resolve().parents[2]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestFeatureRegistry:
    def test_every_core_flag_has_a_registered_feature(self):
        # Every repro.flags flag is covered by a feature — core flags plus
        # the workload-layer sql_frontend flag.
        flagged = {f.name for f in FEATURES.by_layer("core", "workload")}
        assert flagged == set(flags.known_flags())

    def test_expected_features_are_registered(self):
        assert set(FEATURES.names()) == {
            "numpy_kernel",
            "native_kernel",
            "block_costing",
            "bounds_bucket",
            "witness_cache",
            "delta_sets",
            "incremental_pareto",
            "frontier_cache",
            "scheduler_policy",
            "shm_arena",
            "sql_frontend",
            "tracing",
        }

    def test_duplicate_registration_raises(self):
        registry = FeatureRegistry()
        feature = Feature(name="x", layer="service", description="", lowering="")
        registry.register(feature)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(feature)

    def test_core_feature_without_a_flag_is_rejected(self):
        registry = FeatureRegistry()
        with pytest.raises(ValueError, match="has no repro.flags flag"):
            registry.register(
                Feature(name="phantom", layer="core", description="", lowering="")
            )

    def test_unknown_layer_is_rejected(self):
        registry = FeatureRegistry()
        with pytest.raises(ValueError, match="unknown layer"):
            registry.register(
                Feature(name="x", layer="cosmic", description="", lowering="")
            )

    def test_config_names_cover_the_grid(self):
        grid = AblationConfig()
        names = grid.config_names()
        assert names[0] == BASELINE_CONFIG
        assert set(names[1:]) == {f"no_{name}" for name in FEATURES.names()}
        assert ablated_feature(BASELINE_CONFIG) is None
        assert ablated_feature("no_delta_sets") == "delta_sets"
        with pytest.raises(ValueError):
            ablated_feature("bogus")


# ----------------------------------------------------------------------
# Flags module
# ----------------------------------------------------------------------
class TestFlags:
    def test_defaults_are_all_on(self):
        # ``tracing`` is the one opt-in flag: instrumentation must cost
        # nothing unless explicitly requested.
        for name in flags.known_flags():
            assert flags.enabled(name) == (name != "tracing")

    def test_overrides_restore_on_exit_even_on_error(self):
        with pytest.raises(RuntimeError):
            with flags.overrides(delta_sets=False):
                assert not flags.enabled("delta_sets")
                raise RuntimeError("boom")
        assert flags.enabled("delta_sets")

    def test_unknown_flag_raises(self):
        with pytest.raises(KeyError, match="unknown feature flag"):
            flags.enabled("warp_drive")
        with pytest.raises(KeyError):
            flags.set_flag("warp_drive", True)

    def test_environment_lowering(self):
        code = (
            "from repro import flags; "
            "assert not flags.enabled('witness_cache'); "
            "assert flags.enabled('delta_sets'); print('ok')"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "REPRO_FEATURE_WITNESS_CACHE": "0",
                "PATH": "/usr/bin:/bin",
            },
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"

    def test_garbage_environment_value_raises(self):
        with pytest.raises(ValueError, match="cannot parse"):
            flags._parse("delta_sets", "maybe")


# ----------------------------------------------------------------------
# The registered experiment
# ----------------------------------------------------------------------
class TestAblationSpec:
    def test_registered_under_the_bench_registry(self):
        assert "ablation_features" in registered_names()
        assert get_spec("ablation-features") is SPEC

    def test_cells_cache_key_on_the_configuration_name(self):
        config = tiny_config()
        cells = SPEC.cells(config)
        keys = {cell_key(cell, config) for cell in cells}
        assert len(keys) == len(cells)
        configs = {cell["config"] for cell in cells}
        assert BASELINE_CONFIG in configs
        assert any(name.startswith("no_") for name in configs)

    def test_grid_produces_matching_digests_and_a_clean_gate(self, tmp_path):
        config = tiny_config()
        report = run_experiment(
            SPEC, config, jobs=1, cache=ResultCache(tmp_path / "cache")
        )
        payload = ablation_json_payload(report.result)
        assert check_gate(payload) == []
        features = {row["feature"]: row for row in payload["features"]}
        assert set(features) == set(FEATURES.names())
        for row in features.values():
            assert row["digest_match"], row
            assert row["work_invariant_ok"], row

    def test_json_artifact_roundtrip(self, tmp_path):
        config = tiny_config()
        report = run_experiment(SPEC, config, jobs=1, cache=None)
        path = write_ablation_json(report.result, tmp_path)
        assert path.name == "ablation_features.json"
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "ablation_features"
        assert check_gate(payload) == []


# ----------------------------------------------------------------------
# The gate
# ----------------------------------------------------------------------
class TestGate:
    def _payload(self, **overrides):
        row = {
            "feature": "witness_cache",
            "layer": "core",
            "active": True,
            "timed": True,
            "speedup": 1.2,
            "digest_match": True,
            "work_invariant_ok": True,
            "gate_floor": 0.8,
        }
        row.update(overrides)
        return {"features": [row]}

    def test_clean_payload_passes(self):
        assert check_gate(self._payload()) == []

    def test_digest_divergence_fails(self):
        violations = check_gate(self._payload(digest_match=False))
        assert any("digest diverged" in v for v in violations)

    def test_work_invariant_violation_fails(self):
        violations = check_gate(self._payload(work_invariant_ok=False))
        assert any("work invariant" in v for v in violations)

    def test_contribution_regression_fails(self):
        violations = check_gate(self._payload(speedup=0.7))
        assert any("contribution regressed" in v for v in violations)

    def test_untimed_rows_skip_the_timing_gate_only(self):
        assert check_gate(self._payload(speedup=0.1, timed=False)) == []
        violations = check_gate(
            self._payload(speedup=0.1, timed=False, digest_match=False)
        )
        assert len(violations) == 1

    def test_inactive_and_unfloored_features_skip_timing(self):
        assert check_gate(self._payload(speedup=0.1, active=False)) == []
        assert check_gate(self._payload(speedup=0.1, gate_floor=None)) == []

    def test_empty_payload_fails(self):
        assert check_gate({"features": []}) == ["no feature rows found in payload"]

    def test_cli_check_entry_point(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(self._payload()))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(self._payload(digest_match=False)))
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        ok = subprocess.run(
            [sys.executable, "-m", "repro.bench.ablation", "--check", str(good)],
            capture_output=True, text=True, env=env,
        )
        assert ok.returncode == 0, ok.stderr
        assert "ablation gate ok" in ok.stdout
        fail = subprocess.run(
            [sys.executable, "-m", "repro.bench.ablation", "--check", str(bad)],
            capture_output=True, text=True, env=env,
        )
        assert fail.returncode == 1
        assert "GATE FAIL" in fail.stderr


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def test_digest_is_order_sensitive_and_stable():
    rows = [["0x1.8p+3", "0x1.0p+0"], ["0x1.4p+2", "0x1.8p+1"]]
    assert digest_of(rows) == digest_of([list(row) for row in rows])
    assert digest_of(rows) != digest_of(list(reversed(rows)))
    assert len(digest_of(rows)) == 16


def test_tier_markers_are_registered(pytestconfig):
    registered = "\n".join(pytestconfig.getini("markers"))
    for marker in ("tier1", "slow", "bench"):
        assert f"{marker}:" in registered
