"""Unit tests for :mod:`repro.bench.reporting`."""

from repro.bench.experiments import ExperimentResult
from repro.bench.reporting import format_grouped_times, format_rows, format_speedups
from repro.bench.runner import AlgorithmName


def make_sweep_result():
    rows = []
    for levels in (1, 5):
        for count in (2, 3):
            for algorithm in AlgorithmName:
                rows.append(
                    {
                        "precision": "moderate",
                        "resolution_levels": levels,
                        "table_count": count,
                        "algorithm": algorithm.label,
                        "queries": 2,
                        "avg_invocation_seconds": 0.1 * count,
                        "max_invocation_seconds": 0.2 * count,
                        "total_plans_generated": 100,
                    }
                )
    return ExperimentResult(name="figure3", description="test sweep", rows=rows)


class TestGroupedTimes:
    def test_contains_headers_and_groups(self):
        text = format_grouped_times(make_sweep_result())
        assert "figure3" in text
        assert "1 resolution level(s)" in text
        assert "5 resolution level(s)" in text
        assert "Incremental anytime" in text

    def test_missing_cells_render_as_dash(self):
        result = make_sweep_result()
        result.rows = [r for r in result.rows if r["algorithm"] != "One-shot"]
        text = format_grouped_times(result)
        assert "-" in text

    def test_alternate_measure(self):
        text = format_grouped_times(make_sweep_result(), measure="max_invocation_seconds")
        assert "max_invocation_seconds" in text


class TestSpeedupsAndRows:
    def test_format_speedups(self):
        summary = ExperimentResult(
            name="speedup_summary",
            description="",
            rows=[
                {
                    "experiment": "figure3",
                    "measure": "avg_invocation_seconds",
                    "resolution_levels": 5,
                    "baseline": "Memoryless",
                    "max_speedup": 3.2,
                    "min_speedup": 1.1,
                }
            ],
        )
        text = format_speedups(summary)
        assert "Memoryless" in text
        assert "3.20" in text

    def test_format_rows_generic(self):
        result = ExperimentResult(
            name="ablation", description="", rows=[{"a": 1, "b": 2.5}, {"a": 3, "b": 0.125}]
        )
        text = format_rows(result)
        assert "ablation" in text
        assert "a | b" in text
        assert "0.125" in text

    def test_format_rows_empty(self):
        result = ExperimentResult(name="empty", description="", rows=[])
        assert "no rows" in format_rows(result)

    def test_format_rows_column_selection(self):
        result = ExperimentResult(name="x", description="", rows=[{"a": 1, "b": 2}])
        text = format_rows(result, columns=["b"])
        assert "a" not in text.splitlines()[1]


class TestFormatPivot:
    def _result(self, table_counts=(2, 5, 10)):
        from repro.bench.reporting import format_pivot

        rows = [
            {
                "topology": topology,
                "table_count": count,
                "algorithm": "Incremental anytime",
                "avg_invocation_seconds": 0.01 * count,
            }
            for topology in ("chain", "clique")
            for count in table_counts
        ]
        result = ExperimentResult(name="pivot_probe", description="", rows=rows)
        return format_pivot(
            result,
            row_key="table_count",
            column_key="topology",
            value_key="avg_invocation_seconds",
        ), format_pivot(
            result,
            row_key="topology",
            column_key="table_count",
            value_key="avg_invocation_seconds",
        )

    def test_numeric_keys_sort_numerically_not_lexicographically(self):
        by_rows, by_columns = self._result()
        row_order = [
            line.split()[0]
            for line in by_rows.splitlines()
            if line and line.split()[0].isdigit()
        ]
        assert row_order == ["2", "5", "10"]
        header = next(
            line for line in by_columns.splitlines() if "topology" in line and "10" in line
        )
        assert header.split()[1:] == ["2", "5", "10"]

    def test_missing_combinations_render_as_dash(self):
        from repro.bench.reporting import format_pivot

        result = ExperimentResult(
            name="sparse",
            description="",
            rows=[{"a": 1, "b": "x", "v": 1.0}, {"a": 2, "b": "y", "v": 2.0}],
        )
        text = format_pivot(result, row_key="a", column_key="b", value_key="v")
        assert "-" in text
