"""Unit tests for :mod:`repro.bench.cache`."""

import json

import pytest

from repro.bench.cache import (
    ResultCache,
    canonicalize,
    cell_key,
    config_fingerprint,
)
from repro.bench.config import smoke_config, tiny_config
from repro.bench.registry import Cell
from repro.costs.metrics import extended_metric_set


class TestFingerprints:
    def test_fingerprint_is_stable_for_equal_configs(self):
        assert config_fingerprint(tiny_config()) == config_fingerprint(tiny_config())

    def test_fingerprint_distinguishes_presets(self):
        assert config_fingerprint(tiny_config()) != config_fingerprint(smoke_config())

    def test_fingerprint_sees_nested_overrides(self):
        base = smoke_config()
        overridden = base.with_overrides(metric_set=extended_metric_set(4))
        assert config_fingerprint(base) != config_fingerprint(overridden)

    def test_canonical_form_is_json_compatible(self):
        canonical = canonicalize(smoke_config())
        assert json.loads(json.dumps(canonical)) == canonical

    def test_config_survives_pickling_with_equality_intact(self):
        """Worker processes receive configs by pickle; the unpickled copy must
        stay equal (and equally fingerprinted/hashed) or every per-config
        memoization in a pool worker degenerates to a miss."""
        import pickle

        config = smoke_config()
        roundtripped = pickle.loads(pickle.dumps(config))
        assert roundtripped == config
        assert hash(roundtripped) == hash(config)
        assert config_fingerprint(roundtripped) == config_fingerprint(config)


class TestCellKeys:
    def test_key_depends_on_params(self):
        config = tiny_config()
        a = Cell.make("figure3", query="tpch_q03", resolution_levels=1)
        b = Cell.make("figure3", query="tpch_q03", resolution_levels=2)
        assert cell_key(a, config) != cell_key(b, config)

    def test_key_depends_on_config(self):
        cell = Cell.make("figure3", query="tpch_q03", resolution_levels=1)
        assert cell_key(cell, tiny_config()) != cell_key(cell, smoke_config())

    def test_key_is_order_insensitive(self):
        config = tiny_config()
        a = Cell.make("figure3", query="tpch_q03", resolution_levels=1)
        b = Cell.make("figure3", resolution_levels=1, query="tpch_q03")
        assert a == b
        assert cell_key(a, config) == cell_key(b, config)

    def test_non_scalar_params_are_rejected(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            Cell.make("figure3", queries=["a", "b"])


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = tiny_config()
        cell = Cell.make("figure3", query="tpch_q03", resolution_levels=1)
        assert cache.load(cell, config) is None
        payload = {"frontier_size": 3, "durations_seconds": [0.25, 0.5]}
        path = cache.store(cell, config, payload)
        assert path.exists()
        loaded = cache.load(cell, config)
        assert loaded == payload
        # Key order is data: it fixes the column order of merged reports.
        assert list(loaded) == list(payload)
        assert len(cache) == 1

    def test_config_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cell = Cell.make("figure3", query="tpch_q03", resolution_levels=1)
        cache.store(cell, tiny_config(), {"value": 1})
        assert cache.load(cell, smoke_config()) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = tiny_config()
        cell = Cell.make("figure3", query="tpch_q03", resolution_levels=1)
        path = cache.store(cell, config, {"value": 1})
        path.write_text("{not json")
        assert cache.load(cell, config) is None

    def test_entries_are_grouped_by_experiment(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = tiny_config()
        cache.store(Cell.make("figure3", q="a"), config, {"v": 1})
        cache.store(Cell.make("figure4", q="a"), config, {"v": 2})
        assert {path.parent.name for path in cache.entries()} == {
            "figure3",
            "figure4",
        }
