"""Tests for the sharded scheduler and the experiment registry.

The load-bearing guarantees (the ISSUE's acceptance criteria):

* serial (``jobs=1``) execution of a registered spec reproduces the legacy
  one-call experiment functions exactly,
* merged output is a pure function of the cell facts -- shard count and
  outcome order must not matter,
* a resumed run over a warm cache performs **zero** recomputation and yields
  byte-identical reports.
"""

import pytest

from repro.bench.cache import ResultCache
from repro.bench.config import tiny_config
from repro.bench.experiments import (
    ExperimentResult,
    ablation_freshness,
    ablation_metric_count,
    figure3_experiment,
    metric_sweep_experiment,
    synthetic_topology_experiment,
)
from repro.bench.export import render_text_report
from repro.bench.registry import Cell, get_spec, registered_names
from repro.bench.scheduler import run_experiment


@pytest.fixture(scope="module")
def config():
    return tiny_config()


def _strip_timings(rows):
    return [
        {key: value for key, value in row.items() if "seconds" not in key}
        for row in rows
    ]


class TestRegistry:
    def test_all_known_experiments_are_registered(self):
        assert set(registered_names()) >= {
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "ablation_freshness",
            "ablation_keep_dominated",
            "ablation_metric_count",
            "synthetic_topologies",
            "metric_sweep",
        }

    def test_lookup_accepts_dashes(self):
        assert get_spec("ablation-freshness").name == "ablation_freshness"

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(KeyError, match="figure3"):
            get_spec("figure99")

    def test_every_spec_enumerates_cells_deterministically(self, config):
        for name in registered_names():
            spec = get_spec(name)
            cells = spec.cells(config)
            assert cells, f"{name} enumerated no cells"
            assert cells == spec.cells(config)
            assert all(isinstance(cell, Cell) for cell in cells)
            assert len(set(cells)) == len(cells), f"{name} has duplicate cells"

    def test_merge_is_order_independent(self, config):
        """Shards may complete in any order; the merge must not care."""
        for name in ("figure3", "synthetic_topologies", "metric_sweep"):
            spec = get_spec(name)
            outcomes = [
                (cell, spec.run_cell(cell, config)) for cell in spec.cells(config)
            ]
            forward = spec.merge(config, outcomes)
            backward = spec.merge(config, list(reversed(outcomes)))
            assert forward.rows == backward.rows, name
            assert forward.description == backward.description


class TestSerialEquivalence:
    def test_scheduler_matches_legacy_functions_structurally(self, config):
        pairs = [
            ("figure3", figure3_experiment),
            ("ablation_freshness", ablation_freshness),
            ("ablation_metric_count", ablation_metric_count),
            ("synthetic_topologies", synthetic_topology_experiment),
            ("metric_sweep", metric_sweep_experiment),
        ]
        for name, legacy in pairs:
            scheduled = run_experiment(name, config, jobs=1).result
            direct = legacy(config)
            assert scheduled.name == direct.name
            assert scheduled.description == direct.description
            assert _strip_timings(scheduled.rows) == _strip_timings(direct.rows)
            assert [list(row) for row in scheduled.rows] == [
                list(row) for row in direct.rows
            ], f"{name}: column order diverged"


class TestShardingAndResume:
    def test_parallel_run_matches_serial_run(self, config):
        serial = run_experiment("metric_sweep", config, jobs=1)
        parallel = run_experiment("metric_sweep", config, jobs=2)
        assert parallel.total_cells == serial.total_cells
        assert _strip_timings(parallel.result.rows) == _strip_timings(
            serial.result.rows
        )

    def test_resumed_run_recomputes_nothing_and_is_byte_identical(
        self, config, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        first = run_experiment(
            "synthetic_topologies", config, jobs=1, cache=cache, resume=False
        )
        assert first.computed_cells == first.total_cells
        assert len(cache) == first.total_cells

        resumed = run_experiment(
            "synthetic_topologies", config, jobs=2, cache=cache, resume=True
        )
        assert resumed.computed_cells == 0
        assert resumed.cached_cells == first.total_cells
        assert resumed.result.rows == first.result.rows
        spec = get_spec("synthetic_topologies")
        sections_first = tuple(f(first.result) for f in spec.section_formatters)
        sections_resumed = tuple(f(resumed.result) for f in spec.section_formatters)
        assert render_text_report(
            resumed.result, sections_resumed
        ) == render_text_report(first.result, sections_first)

    def test_partial_cache_only_computes_missing_cells(self, config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = get_spec("metric_sweep")
        cells = spec.cells(config)
        # Warm the cache for half the cells only.
        for cell in cells[: len(cells) // 2]:
            cache.store(cell, config, spec.run_cell(cell, config))
        report = run_experiment(spec, config, jobs=1, cache=cache, resume=True)
        assert report.cached_cells == len(cells) // 2
        assert report.computed_cells == len(cells) - len(cells) // 2
        assert len(cache) == len(cells)

    def test_without_resume_the_cache_is_write_only(self, config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_experiment("ablation_freshness", config, jobs=1, cache=cache)
        report = run_experiment("ablation_freshness", config, jobs=1, cache=cache)
        assert report.cached_cells == 0
        assert report.computed_cells == report.total_cells

    def test_figure5_cells_are_shared_figure4_facts(self, config, tmp_path):
        """Figures 4 and 5 measure the same (precision, levels, query,
        algorithm) facts; the shared cell namespace must let a figure5 resume
        reuse a figure4 run's cache entirely."""
        figure4_cells = get_spec("figure4").cells(config)
        figure5_cells = get_spec("figure5").cells(config)
        assert set(figure5_cells) < set(figure4_cells)

        cache = ResultCache(tmp_path / "cache")
        run_experiment("figure4", config, jobs=1, cache=cache)
        report = run_experiment("figure5", config, jobs=1, cache=cache, resume=True)
        assert report.computed_cells == 0
        assert report.cached_cells == report.total_cells

    def test_interrupted_run_persists_completed_cells(self, config, tmp_path):
        """A failure mid-run must leave earlier cells in the cache so that a
        --resume rerun only recomputes what is actually missing."""
        from repro.bench.registry import Cell, ExperimentSpec

        cells = [Cell.make("partial_probe", index=i) for i in range(3)]
        explode = True

        def run_cell(cell, _config):
            if explode and cell["index"] == 1:
                raise RuntimeError("simulated worker crash")
            return {"index": cell["index"]}

        spec = ExperimentSpec(
            name="partial_probe",
            description="interrupt probe",
            cells=lambda _config: cells,
            run_cell=run_cell,
            merge=lambda _config, outcomes: ExperimentResult(
                name="partial_probe",
                description="",
                rows=[payload for _cell, payload in outcomes],
            ),
        )
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(RuntimeError, match="simulated"):
            run_experiment(spec, config, jobs=1, cache=cache)
        assert len(cache) == 1, "the cell completed before the crash is kept"

        explode = False
        resumed = run_experiment(spec, config, jobs=1, cache=cache, resume=True)
        assert resumed.cached_cells == 1
        assert resumed.computed_cells == 2
        assert resumed.result.rows == [{"index": 0}, {"index": 1}, {"index": 2}]

    def test_invalid_jobs_rejected(self, config):
        with pytest.raises(ValueError, match="jobs"):
            run_experiment("ablation_freshness", config, jobs=0)

    def test_progress_callback_sees_every_cell(self, config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        seen = []
        run_experiment(
            "ablation_freshness",
            config,
            jobs=1,
            cache=cache,
            progress=lambda cell, cached: seen.append((cell, cached)),
        )
        assert len(seen) == 2
        assert all(not cached for _cell, cached in seen)
        seen.clear()
        run_experiment(
            "ablation_freshness",
            config,
            jobs=1,
            cache=cache,
            resume=True,
            progress=lambda cell, cached: seen.append((cell, cached)),
        )
        assert all(cached for _cell, cached in seen)
