"""Differential fuzzing of the feature-flag matrix.

The ablation harness's core invariant: every combination of feature flags
produces a bit-identical frontier, identical ``plans_generated``, and (up to
each feature's declared counter exemptions) identical per-invocation
counters.  This suite fuzzes randomized ``OptimizeRequest``s — topology x
size x seed x metric subset — under random flag subsets on both kernel
backends and compares everything against the all-on configuration.

Seeded ``random.Random`` keeps every run reproducible; a failure message
names the scenario and flag subset so it can be replayed directly.
"""

from __future__ import annotations

import random
from contextlib import ExitStack
from typing import Dict, List, Optional, Tuple

import pytest

from repro import flags, kernel
from repro.api import OptimizeRequest, open_session
from repro.bench.ablation import FEATURES
from tests.core.golden_capture import IAMA_COUNTER_FIELDS

TOPOLOGIES = ("chain", "star", "cycle", "clique")
METRIC_CHOICES = (
    None,  # the configuration's default metric set
    ("execution_time", "monetary_fees"),
    ("execution_time", "energy", "io_load"),
    ("execution_time", "buffer_space"),
)
CORE_FLAGS = tuple(sorted(flags.KNOWN_FLAGS))

try:
    import numpy  # noqa: F401

    BACKENDS = ("python", "numpy")
except ImportError:  # pragma: no cover - numpy ships in the dev env
    BACKENDS = ("python",)


def _scenarios(seed: int, count: int) -> List[Dict[str, object]]:
    """Randomized request scenarios plus a random non-empty flag subset each."""
    rng = random.Random(seed)
    scenarios = []
    for _ in range(count):
        subset_size = rng.randint(1, len(CORE_FLAGS))
        disabled = tuple(sorted(rng.sample(CORE_FLAGS, subset_size)))
        scenarios.append(
            {
                "topology": rng.choice(TOPOLOGIES),
                "tables": rng.randint(3, 4),
                "seed": rng.randint(0, 9),
                "levels": rng.randint(2, 3),
                "metrics": rng.choice(METRIC_CHOICES),
                "disabled": disabled,
            }
        )
    return scenarios


def _capture(
    scenario: Dict[str, object],
    backend: str,
    disabled: Tuple[str, ...] = (),
) -> Dict[str, object]:
    """Run one scenario under a flag configuration; return the pinned facts."""
    request = OptimizeRequest(
        workload=f"gen:{scenario['topology']}:{scenario['tables']}:{scenario['seed']}",
        algorithm="iama",
        scale="tiny",
        levels=scenario["levels"],
        metrics=scenario["metrics"],
    )
    overrides = {name: name not in disabled for name in CORE_FLAGS}
    with ExitStack() as stack:
        stack.enter_context(kernel.use_backend(backend))
        stack.enter_context(flags.overrides(**overrides))
        result = open_session(request).run()
    counters = [
        {
            name: invocation.details[name]
            for name in IAMA_COUNTER_FIELDS
            if name in invocation.details
        }
        for invocation in result.invocations
    ]
    return {
        "frontier": [
            [value.hex() for value in summary.cost] for summary in result.frontier
        ],
        "plans_generated": result.plans_generated,
        "invocations": len(result.invocations),
        "counters": counters,
    }


def _exempt_fields(disabled: Tuple[str, ...]) -> Tuple[str, ...]:
    """Counter fields the disabled features are declared allowed to change."""
    exempt: List[str] = []
    for name in disabled:
        exempt.extend(FEATURES.get(name).counter_exempt)
    return tuple(exempt)


def _strip(counters, exempt):
    return [
        {name: value for name, value in invocation.items() if name not in exempt}
        for invocation in counters
    ]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("fuzz_seed", [11, 23])
def test_random_flag_subsets_are_bit_identical(backend, fuzz_seed):
    for scenario in _scenarios(fuzz_seed, count=4):
        disabled = scenario["disabled"]
        label = (
            f"gen:{scenario['topology']}:{scenario['tables']}:{scenario['seed']}"
            f" levels={scenario['levels']} metrics={scenario['metrics']}"
            f" disabled={disabled} backend={backend}"
        )
        baseline = _capture(scenario, backend)
        ablated = _capture(scenario, backend, disabled=disabled)
        assert ablated["frontier"] == baseline["frontier"], label
        assert ablated["plans_generated"] == baseline["plans_generated"], label
        assert ablated["invocations"] == baseline["invocations"], label
        exempt = _exempt_fields(disabled)
        assert _strip(ablated["counters"], exempt) == _strip(
            baseline["counters"], exempt
        ), label


@pytest.mark.skipif(len(BACKENDS) < 2, reason="numpy backend unavailable")
def test_flag_subsets_are_identical_across_backends():
    """The all-off configuration on numpy equals the all-on one on python."""
    scenario = {
        "topology": "clique",
        "tables": 4,
        "seed": 3,
        "levels": 3,
        "metrics": None,
    }
    all_off = tuple(CORE_FLAGS)
    python_baseline = _capture(scenario, "python")
    numpy_ablated = _capture(scenario, "numpy", disabled=all_off)
    assert numpy_ablated["frontier"] == python_baseline["frontier"]
    assert numpy_ablated["plans_generated"] == python_baseline["plans_generated"]
    exempt = _exempt_fields(all_off)
    assert _strip(numpy_ablated["counters"], exempt) == _strip(
        python_baseline["counters"], exempt
    )


def test_delta_sets_exemption_is_real():
    """Disabling Δ-sets must actually enumerate more pairs (the exemption is
    not a loophole: the feature demonstrably does work, everything else is
    still pinned bit-identical by the test above)."""
    scenario = {
        "topology": "cycle",
        "tables": 4,
        "seed": 0,
        "levels": 3,
        "metrics": None,
    }
    baseline = _capture(scenario, "python")
    ablated = _capture(scenario, "python", disabled=("delta_sets",))

    def total_pairs(capture):
        return sum(inv.get("pairs_enumerated", 0) for inv in capture["counters"])

    assert total_pairs(ablated) > total_pairs(baseline)
    assert ablated["frontier"] == baseline["frontier"]
