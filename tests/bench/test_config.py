"""Unit tests for :mod:`repro.bench.config`."""

import pytest

from repro.bench.config import (
    FINE_PRECISION,
    MODERATE_PRECISION,
    ExperimentConfig,
    config_from_environment,
    paper_config,
    smoke_config,
)


class TestPrecisionSettings:
    def test_paper_parameters(self):
        assert MODERATE_PRECISION.target_precision == pytest.approx(1.01)
        assert MODERATE_PRECISION.precision_step == pytest.approx(0.05)
        assert FINE_PRECISION.target_precision == pytest.approx(1.005)
        assert FINE_PRECISION.precision_step == pytest.approx(0.5)


class TestPresets:
    def test_paper_config_uses_paper_level_settings(self):
        config = paper_config()
        assert config.resolution_level_settings == (1, 5, 20)
        assert config.max_tables is None

    def test_smoke_config_is_reduced(self):
        config = smoke_config()
        assert max(config.resolution_level_settings) <= 5
        assert config.max_tables is not None
        assert len(config.join_algorithms) < len(paper_config().join_algorithms)

    def test_operator_registry_matches_config(self):
        config = smoke_config()
        registry = config.operator_registry()
        assert registry.parallelism_levels == tuple(sorted(config.parallelism_levels))
        assert set(registry.join_algorithms) == set(config.join_algorithms)

    def test_with_overrides(self):
        config = smoke_config().with_overrides(max_tables=3)
        assert config.max_tables == 3
        assert smoke_config().max_tables != 3 or True  # original untouched

    def test_config_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert config_from_environment().name == "paper"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert config_from_environment().name == "smoke"
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert config_from_environment().name == "smoke"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            config_from_environment()

    def test_default_metric_set_is_paper_metrics(self):
        assert smoke_config().metric_set.names == [
            "execution_time",
            "reserved_cores",
            "precision_loss",
        ]
