"""Tests for :mod:`repro.bench.experiments` on a tiny configuration."""

import pytest

from repro.bench.config import ExperimentConfig
from repro.bench.experiments import (
    ablation_freshness,
    ablation_metric_count,
    ablation_result_set_growth,
    anytime_quality_experiment,
    figure3_experiment,
    figure5_experiment,
    interactive_refinement_experiment,
    speedup_summary,
)
from repro.bench.runner import AlgorithmName


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        name="tiny",
        parallelism_levels=(1,),
        sampling_rates=(0.5,),
        join_algorithms=("hash_join",),
        max_tables=3,
        max_queries_per_group=1,
        resolution_level_settings=(1, 2),
    )


@pytest.fixture(scope="module")
def figure3(tiny_config):
    return figure3_experiment(tiny_config)


class TestFigureSweeps:
    def test_figure3_covers_all_groups_levels_and_algorithms(self, figure3, tiny_config):
        table_counts = {row["table_count"] for row in figure3.rows}
        assert table_counts == {2, 3}
        levels = {row["resolution_levels"] for row in figure3.rows}
        assert levels == set(tiny_config.resolution_level_settings)
        algorithms = {row["algorithm"] for row in figure3.rows}
        assert algorithms == {a.label for a in AlgorithmName}

    def test_figure3_rows_have_positive_times(self, figure3):
        for row in figure3.rows:
            assert row["avg_invocation_seconds"] > 0
            assert row["max_invocation_seconds"] >= row["avg_invocation_seconds"] - 1e-12

    def test_result_filtering_helpers(self, figure3):
        one_level = figure3.filtered(resolution_levels=1)
        assert one_level
        assert all(row["resolution_levels"] == 1 for row in one_level)
        column = figure3.column("avg_invocation_seconds", resolution_levels=1)
        assert len(column) == len(one_level)

    def test_figure5_reports_only_largest_level_setting(self, tiny_config):
        result = figure5_experiment(tiny_config)
        assert {row["resolution_levels"] for row in result.rows} == {
            max(tiny_config.resolution_level_settings)
        }

    def test_speedup_summary_produces_ratios(self, figure3, tiny_config):
        result_fig5 = figure5_experiment(tiny_config)
        summary = speedup_summary(figure3, figure3, result_fig5)
        assert summary.rows
        for row in summary.rows:
            assert row["max_speedup"] >= row["min_speedup"] > 0
            assert row["baseline"] in {
                AlgorithmName.MEMORYLESS.label,
                AlgorithmName.ONE_SHOT.label,
            }


class TestIllustrations:
    def test_anytime_quality_experiment_row_families(self, tiny_config):
        result = anytime_quality_experiment(tiny_config, levels=2)
        kinds = {row["kind"] for row in result.rows}
        assert kinds == {"quality", "per_invocation"}
        quality_algorithms = {
            row["algorithm"] for row in result.rows if row["kind"] == "quality"
        }
        assert AlgorithmName.INCREMENTAL_ANYTIME.label in quality_algorithms
        assert AlgorithmName.ONE_SHOT.label in quality_algorithms
        iama_quality = [
            row for row in result.rows
            if row["kind"] == "quality"
            and row["algorithm"] == AlgorithmName.INCREMENTAL_ANYTIME.label
        ]
        elapsed = [row["elapsed_seconds"] for row in iama_quality]
        assert elapsed == sorted(elapsed)

    def test_interactive_refinement_experiment(self, tiny_config):
        result = interactive_refinement_experiment(tiny_config, levels=3, iterations=4)
        assert len(result.rows) == 4
        assert {row["iteration"] for row in result.rows} == {1, 2, 3, 4}
        assert all(row["invocation_seconds"] >= 0 for row in result.rows)


class TestAblations:
    def test_ablation_freshness_generates_identical_plans(self, tiny_config):
        result = ablation_freshness(tiny_config, levels=2)
        by_flag = {row["delta_sets"]: row for row in result.rows}
        assert set(by_flag) == {True, False}
        assert by_flag[True]["plans_generated"] == by_flag[False]["plans_generated"]
        assert by_flag[True]["pairs_enumerated"] <= by_flag[False]["pairs_enumerated"]

    def test_ablation_result_set_growth(self, tiny_config):
        result = ablation_result_set_growth(tiny_config, levels=2)
        row = result.rows[0]
        assert row["iama_result_plans"] >= row["minimal_result_plans"]
        assert row["result_plan_inflation"] >= 1.0

    def test_ablation_metric_count_grows_with_metrics(self, tiny_config):
        result = ablation_metric_count(tiny_config, metric_counts=(2, 3), levels=2)
        assert [row["metric_count"] for row in result.rows] == [2, 3]
        for row in result.rows:
            assert row["frontier_size"] > 0
