"""Byte-stability of registered ``results/*`` targets from a warm cache.

The PR-2 guarantee: once the cell cache is warm, regenerating a registered
experiment recomputes **zero** cells and renders byte-identical output,
regardless of ``--jobs`` and of completion order.  This suite extends the
guarantee to every output surface — the text report *and* any extra
machine-readable artifacts a spec registers (the ablation harness's
``ablation_features.json``) — for a representative set of experiments,
including the new ablation target.
"""

from __future__ import annotations

import pytest

from repro.bench.cache import ResultCache
from repro.bench.config import tiny_config
from repro.bench.export import render_text_report
from repro.bench.registry import get_spec
from repro.bench.scheduler import run_experiment

#: Representative registered targets: the ablation grid, one cheap
#: pre-existing spec per cell-family shape (series sweep, bespoke ablation),
#: and the skewed-trace replay (whose cache-mix columns must be byte-stable
#: even though the recorded latencies are wall-clock — they live in the same
#: cached payloads).
TARGETS = (
    "ablation_features",
    "ablation_freshness",
    "metric_sweep",
    "trace_replay",
)


def _render_all(spec, result, directory):
    """Every output surface of a spec: the text report + extra artifacts."""
    sections = tuple(fmt(result) for fmt in spec.section_formatters)
    outputs = {f"{spec.name}.txt": render_text_report(result, sections)}
    for artifact in spec.artifacts:
        path = artifact(result, directory)
        outputs[path.name] = path.read_text()
    return outputs


@pytest.mark.parametrize("name", TARGETS)
def test_warm_cache_regeneration_is_byte_identical(name, tmp_path):
    spec = get_spec(name)
    config = tiny_config()
    cache = ResultCache(tmp_path / "cache")

    cold = run_experiment(spec, config, jobs=1, cache=cache)
    assert cold.computed_cells == cold.total_cells and cold.cached_cells == 0
    first = _render_all(spec, cold.result, tmp_path / "first")

    # Warm rerun, parallel, resumed: zero cells recomputed ...
    warm = run_experiment(spec, config, jobs=2, cache=cache, resume=True)
    assert warm.computed_cells == 0, (
        f"{name}: warm rerun recomputed {warm.computed_cells} cells"
    )
    assert warm.cached_cells == cold.total_cells

    # ... and every output surface byte-identical to the cold render.
    second = _render_all(spec, warm.result, tmp_path / "second")
    assert second.keys() == first.keys()
    for filename in first:
        assert second[filename] == first[filename], (
            f"{name}: {filename} is not byte-stable across a warm rerun"
        )


def test_ablation_artifact_is_pure_in_the_rows(tmp_path):
    """The JSON artifact must be derived only from merged rows — rendering it
    twice from the same result object is byte-identical (no timestamps, no
    environment probes, no iteration-order dependence)."""
    from repro.bench.ablation import SPEC, ablation_json_payload

    config = tiny_config()
    cache = ResultCache(tmp_path / "cache")
    report = run_experiment(SPEC, config, jobs=2, cache=cache)
    once = ablation_json_payload(report.result)
    twice = ablation_json_payload(report.result)
    assert once == twice
    path_a = SPEC.artifacts[0](report.result, tmp_path / "a")
    path_b = SPEC.artifacts[0](report.result, tmp_path / "b")
    assert path_a.read_bytes() == path_b.read_bytes()
