"""Unit tests for :mod:`repro.bench.export`."""

import json

import pytest

from repro.bench.experiments import ExperimentResult
from repro.bench.export import (
    export_all,
    load_json,
    to_csv,
    to_json,
    to_markdown,
    write_csv,
    write_json,
    write_markdown,
)


@pytest.fixture
def result():
    return ExperimentResult(
        name="figure_test",
        description="a small result",
        rows=[
            {"table_count": 2, "algorithm": "IAMA", "avg": 0.25},
            {"table_count": 3, "algorithm": "IAMA", "avg": 0.5, "note": "extra"},
        ],
    )


class TestCsv:
    def test_header_is_union_of_keys(self, result):
        text = to_csv(result)
        header = text.splitlines()[0]
        assert header.split(",") == ["table_count", "algorithm", "avg", "note"]

    def test_row_count(self, result):
        assert len(to_csv(result).strip().splitlines()) == 3

    def test_missing_values_are_empty(self, result):
        first_row = to_csv(result).splitlines()[1]
        assert first_row.endswith(",")

    def test_explicit_columns(self, result):
        text = to_csv(result, columns=["algorithm"])
        assert text.splitlines()[0] == "algorithm"

    def test_write_csv_creates_parent_dirs(self, result, tmp_path):
        path = write_csv(result, tmp_path / "nested" / "out.csv")
        assert path.exists()
        assert "IAMA" in path.read_text()


class TestJson:
    def test_round_trip(self, result, tmp_path):
        path = write_json(result, tmp_path / "out.json")
        loaded = load_json(path)
        assert loaded.name == result.name
        assert loaded.rows == result.rows

    def test_json_is_valid(self, result):
        payload = json.loads(to_json(result))
        assert payload["name"] == "figure_test"
        assert len(payload["rows"]) == 2

    def test_non_serializable_values_fall_back_to_str(self):
        from repro.costs.vector import CostVector

        result = ExperimentResult(
            name="x", description="", rows=[{"cost": CostVector([1, 2])}]
        )
        payload = json.loads(to_json(result))
        assert payload["rows"][0]["cost"] == [1.0, 2.0]


class TestMarkdown:
    def test_table_structure(self, result):
        lines = to_markdown(result).splitlines()
        assert lines[0].startswith("| table_count")
        assert set(lines[1].replace("|", "").split()) == {"---"}
        assert len(lines) == 2 + len(result.rows)

    def test_empty_result(self):
        empty = ExperimentResult(name="empty", description="", rows=[])
        assert "no rows" in to_markdown(empty)

    def test_write_markdown_includes_heading(self, result, tmp_path):
        path = write_markdown(result, tmp_path / "out.md")
        content = path.read_text()
        assert content.startswith("## figure_test")
        assert "a small result" in content


class TestExportAll:
    def test_exports_every_format(self, result, tmp_path):
        written = export_all([result], tmp_path, formats=("csv", "json", "markdown"))
        assert set(written) == {"csv", "json", "markdown"}
        for paths in written.values():
            assert len(paths) == 1
            assert paths[0].exists()

    def test_unknown_format_rejected(self, result, tmp_path):
        with pytest.raises(ValueError):
            export_all([result], tmp_path, formats=("yaml",))
