"""Unit tests for :mod:`repro.bench.runner`."""

import pytest

from repro.bench.config import MODERATE_PRECISION, ExperimentConfig
from repro.bench.runner import (
    AlgorithmName,
    build_factory,
    build_schedule,
    run_all_algorithms,
    run_series,
)
from repro.workloads.tpch import tpch_queries


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        name="tiny",
        parallelism_levels=(1,),
        sampling_rates=(0.5,),
        join_algorithms=("hash_join",),
        max_tables=3,
        max_queries_per_group=1,
        resolution_level_settings=(1, 2),
    )


@pytest.fixture(scope="module")
def two_table_block():
    return tpch_queries(max_tables=2)[0]


class TestBuilders:
    def test_build_factory_uses_config_registry(self, tiny_config, two_table_block):
        factory = build_factory(two_table_block, tiny_config)
        assert factory.operators.parallelism_levels == (1,)
        assert factory.metric_set.dimensions == 3

    def test_build_schedule_uses_precision_setting(self):
        schedule = build_schedule(5, MODERATE_PRECISION)
        assert schedule.levels == 5
        assert schedule.target_precision == pytest.approx(1.01)


class TestRunSeries:
    def test_incremental_series_has_one_invocation_per_level(self, tiny_config, two_table_block):
        series = run_series(
            AlgorithmName.INCREMENTAL_ANYTIME, two_table_block, tiny_config, 2, MODERATE_PRECISION
        )
        assert len(series.durations_seconds) == 2
        assert series.table_count == 2
        assert series.frontier_size > 0

    def test_memoryless_series_has_one_invocation_per_level(self, tiny_config, two_table_block):
        series = run_series(
            AlgorithmName.MEMORYLESS, two_table_block, tiny_config, 2, MODERATE_PRECISION
        )
        assert len(series.durations_seconds) == 2

    def test_one_shot_series_has_a_single_invocation(self, tiny_config, two_table_block):
        series = run_series(
            AlgorithmName.ONE_SHOT, two_table_block, tiny_config, 2, MODERATE_PRECISION
        )
        assert len(series.durations_seconds) == 1

    def test_series_statistics(self, tiny_config, two_table_block):
        series = run_series(
            AlgorithmName.INCREMENTAL_ANYTIME, two_table_block, tiny_config, 2, MODERATE_PRECISION
        )
        assert series.average_seconds == pytest.approx(
            sum(series.durations_seconds) / len(series.durations_seconds)
        )
        assert series.maximum_seconds == max(series.durations_seconds)
        assert series.total_seconds == pytest.approx(sum(series.durations_seconds))

    def test_run_all_algorithms_covers_every_algorithm(self, tiny_config, two_table_block):
        all_series = run_all_algorithms(two_table_block, tiny_config, 2, MODERATE_PRECISION)
        assert set(all_series) == set(AlgorithmName)

    def test_algorithm_labels_are_human_readable(self):
        assert AlgorithmName.INCREMENTAL_ANYTIME.label == "Incremental anytime"
        assert AlgorithmName.MEMORYLESS.label == "Memoryless"
        assert AlgorithmName.ONE_SHOT.label == "One-shot"

    def test_memoryless_regenerates_more_plans_than_incremental(self, tiny_config, two_table_block):
        incremental = run_series(
            AlgorithmName.INCREMENTAL_ANYTIME, two_table_block, tiny_config, 2, MODERATE_PRECISION
        )
        memoryless = run_series(
            AlgorithmName.MEMORYLESS, two_table_block, tiny_config, 2, MODERATE_PRECISION
        )
        assert memoryless.plans_generated > incremental.plans_generated
