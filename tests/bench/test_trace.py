"""Tests for the trace replayer (:mod:`repro.bench.trace`)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.registry import registered_names
from repro.bench.trace import (
    DEFAULT_TEMPLATES,
    REPEAT_SHAPE,
    SHAPES,
    SPEC,
    UNIFORM_SHAPE,
    check_trace,
    get_shape,
    replay_manual,
    shape_names,
    synthesize_trace,
    trace_digest,
    trace_jsonable,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

_TRACE_SCRIPT = """
import json
from repro.bench.trace import get_shape, synthesize_trace, trace_jsonable
for name in ("uniform_oneshot", "zipf_repeat", "template_reinstantiate"):
    events = synthesize_trace(get_shape(name), seed=5)
    print(json.dumps(trace_jsonable(events), sort_keys=True))
"""


# ----------------------------------------------------------------------
# Shapes and synthesis
# ----------------------------------------------------------------------
class TestShapes:
    def test_shipped_shapes(self):
        assert shape_names() == (
            "uniform_oneshot",
            "zipf_repeat",
            "template_reinstantiate",
        )

    def test_unknown_shape_raises(self):
        with pytest.raises(KeyError, match="unknown trace shape"):
            get_shape("tsunami")


class TestSynthesis:
    def test_uniform_shape_has_no_repeats_no_probes_no_bursts(self):
        shape = get_shape(UNIFORM_SHAPE)
        events = synthesize_trace(shape, seed=5)
        assert len(events) == shape.events
        assert len({e.spec for e in events}) == shape.events
        assert all(e.kind == "full" for e in events)
        assert [e.tick for e in events] == list(range(shape.events))

    def test_repeat_shape_probes_each_pair_once_then_repeats(self):
        shape = get_shape(REPEAT_SHAPE)
        events = synthesize_trace(shape, seed=5)
        assert len(events) == shape.events
        specs = {e.spec for e in events}
        assert len(specs) <= shape.population < shape.events
        probes = [e for e in events if e.kind == "probe"]
        assert len(probes) == len({e.spec for e in probes}) == len(specs)
        # A pair's probe is its first touch.
        first_touch = {}
        for event in events:
            first_touch.setdefault(event.spec, event.kind)
        assert all(kind == "probe" for kind in first_touch.values())

    def test_burst_ticks_admit_more_arrivals(self):
        shape = get_shape(REPEAT_SHAPE)
        events = synthesize_trace(shape, seed=5)
        per_tick = {}
        for event in events:
            per_tick[event.tick] = per_tick.get(event.tick, 0) + 1
        for tick, count in per_tick.items():
            limit = shape.burst_size if tick % shape.burst_every == 0 else 1
            assert count <= limit, (tick, count)
        assert any(count > 1 for count in per_tick.values())

    def test_reinstantiate_shape_never_repeats_a_spec(self):
        shape = get_shape("template_reinstantiate")
        events = synthesize_trace(shape, seed=5)
        assert len({e.spec for e in events}) == len(events)
        assert len({e.template for e in events}) <= len(DEFAULT_TEMPLATES)

    def test_synthesis_is_deterministic_and_seed_sensitive(self):
        shape = get_shape(REPEAT_SHAPE)
        assert trace_digest(synthesize_trace(shape, seed=5)) == (
            trace_digest(synthesize_trace(shape, seed=5))
        )
        assert trace_digest(synthesize_trace(shape, seed=5)) != (
            trace_digest(synthesize_trace(shape, seed=6))
        )


class TestCrossProcessDeterminism:
    def _arrivals_in_fresh_process(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        completed = subprocess.run(
            [sys.executable, "-c", _TRACE_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return completed.stdout

    def test_arrival_sequences_are_byte_identical_across_processes(self):
        local = "".join(
            json.dumps(trace_jsonable(synthesize_trace(shape, seed=5)), sort_keys=True)
            + "\n"
            for shape in SHAPES
        )
        first = self._arrivals_in_fresh_process()
        second = self._arrivals_in_fresh_process()
        assert first == second, "two fresh processes disagree"
        assert first == local, "fresh process disagrees with this process"


# ----------------------------------------------------------------------
# Replay semantics
# ----------------------------------------------------------------------
class TestReplay:
    def _replay(self, shape_name):
        from repro.service.frontier_cache import FrontierCache
        from repro.service.service import PlanningService

        events = synthesize_trace(get_shape(shape_name), seed=5)
        with PlanningService(
            policy="alpha_greedy", workers=0, cache=FrontierCache()
        ) as service:
            return replay_manual(service, events, levels=2, scale="tiny")

    def test_uniform_traffic_always_misses(self):
        metrics = self._replay(UNIFORM_SHAPE)
        assert metrics["cache_hit"] == 0 and metrics["cache_warm"] == 0
        assert metrics["cache_miss"] == metrics["jobs"]

    def test_repeat_traffic_is_served_by_the_cache(self):
        metrics = self._replay(REPEAT_SHAPE)
        assert metrics["cache_hit"] > 0
        assert metrics["hit_warm_fraction"] > 0.5
        assert metrics["ttff_p95_ms"] >= metrics["ttff_p50_ms"] >= 0.0

    def test_reinstantiated_traffic_never_aliases(self):
        metrics = self._replay("template_reinstantiate")
        assert metrics["cache_hit"] == 0


# ----------------------------------------------------------------------
# The registered experiment and its gate
# ----------------------------------------------------------------------
def _rows(**overrides):
    rows = {
        UNIFORM_SHAPE: {
            "shape": UNIFORM_SHAPE,
            "cache_miss": 12,
            "cache_hit": 0,
            "cache_warm": 0,
            "hit_warm_fraction": 0.0,
        },
        REPEAT_SHAPE: {
            "shape": REPEAT_SHAPE,
            "cache_miss": 4,
            "cache_hit": 12,
            "cache_warm": 2,
            "hit_warm_fraction": 0.778,
        },
        "template_reinstantiate": {
            "shape": "template_reinstantiate",
            "cache_miss": 12,
            "cache_hit": 0,
            "cache_warm": 0,
            "hit_warm_fraction": 0.0,
        },
    }
    for shape, values in overrides.items():
        rows[shape].update(values)
    return list(rows.values())


class TestGate:
    def test_registered_under_the_bench_registry(self):
        assert "trace_replay" in registered_names()
        assert SPEC.name == "trace_replay"

    def test_clean_rows_pass(self):
        assert check_trace(_rows()) == []

    def test_missing_shape_fails(self):
        violations = check_trace(_rows()[:2])
        assert violations and "missing trace shapes" in violations[0]

    def test_uniform_aliasing_fails(self):
        violations = check_trace(_rows(**{UNIFORM_SHAPE: {"cache_hit": 1}}))
        assert any("aliased" in v for v in violations)

    def test_reinstantiate_hits_fail(self):
        violations = check_trace(
            _rows(**{"template_reinstantiate": {"cache_hit": 3}})
        )
        assert any("fresh template" in v for v in violations)

    def test_repeat_shape_must_strictly_beat_uniform(self):
        violations = check_trace(
            _rows(
                **{
                    REPEAT_SHAPE: {
                        "cache_hit": 0,
                        "cache_warm": 0,
                        "hit_warm_fraction": 0.0,
                        "cache_miss": 18,
                    }
                }
            )
        )
        assert any("not strictly above" in v for v in violations)
        assert any("zero hits" in v for v in violations)
