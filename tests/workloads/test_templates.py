"""Tests for the TPC-DS-style query templates (:mod:`repro.workloads.templates`).

The trace replayer identifies a template instantiation by
``(template, seed)`` and may replay it in any process; like the synthetic
generator, instantiation must therefore be a pure function of the seed across
processes (string-seeded ``random.Random`` hashes with SHA-512, independent of
``PYTHONHASHSEED``).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.workloads.generator import workload_fingerprint
from repro.workloads.sql import parse_sql
from repro.workloads.templates import (
    MAX_JOINS,
    MIN_JOINS,
    TEMPLATES,
    TPCDS_TABLE_ROWS,
    get_template,
    instantiate_template,
    template_names,
    template_schema,
    template_workload,
    templates_by_band,
)

GRID = [(name, seed) for name in template_names() for seed in (0, 7)]

_FINGERPRINT_SCRIPT = """
import sys
from repro.workloads.generator import workload_fingerprint
from repro.workloads.templates import template_workload
for line in sys.stdin.read().split():
    name, seed = line.split(",")
    print(workload_fingerprint(template_workload(name, int(seed))))
"""


class TestSchema:
    def test_published_cardinalities(self):
        schema = template_schema()
        for table, rows in TPCDS_TABLE_ROWS.items():
            assert schema.table(table).row_count == rows

    def test_star_schema_foreign_keys(self):
        schema = template_schema()
        fact_fks = [
            fk for fk in schema.foreign_keys if fk.from_table == "store_sales"
        ]
        assert len(fact_fks) == 7
        snowflake = [fk for fk in schema.foreign_keys if fk.from_table == "customer"]
        assert len(snowflake) == 1 and snowflake[0].to_table == "customer_address"


class TestBanding:
    def test_one_template_per_band_from_2_to_7_joins(self):
        assert (MIN_JOINS, MAX_JOINS) == (2, 7)
        bands = templates_by_band()
        assert sorted(bands) == [2, 3, 4, 5, 6, 7]
        assert all(len(members) == 1 for members in bands.values())

    def test_band_restriction(self):
        assert sorted(templates_by_band(3, 5)) == [3, 4, 5]

    def test_declared_joins_match_the_parsed_sql(self):
        for template in TEMPLATES:
            parsed = parse_sql(instantiate_template(template.name, seed=0))
            assert len(parsed.tables) == template.tables, template.name
            assert len(parsed.joins) == template.joins, template.name

    def test_unknown_template_raises(self):
        with pytest.raises(KeyError, match="unknown query template"):
            get_template("ss_warp_core")


class TestInstantiation:
    def test_same_seed_same_text(self):
        for name, seed in GRID:
            assert instantiate_template(name, seed) == instantiate_template(name, seed)

    def test_different_seeds_draw_different_selectivities(self):
        texts = {instantiate_template("ss_item_date", seed) for seed in range(6)}
        assert len(texts) == 6

    def test_selectivity_params_land_in_the_hint(self):
        text = instantiate_template("ss_store_monthly", seed=3)
        hints = parse_sql(text).hints
        template = get_template("ss_store_monthly")
        sel_params = [p for p in template.params if p.kind == "selectivity"]
        assert len(hints) == len(sel_params)
        for param, value in zip(sel_params, hints.values()):
            assert param.low <= value <= param.high

    def test_workload_name_omits_the_seed(self):
        # Identical drawn parameters must share one fingerprint/cache entry;
        # the name carries the template, the selectivities carry the seed.
        for seed in (1, 2):
            assert template_workload("ss_item_date", seed).query.name == (
                "template_ss_item_date"
            )

    def test_fingerprint_is_seed_sensitive(self):
        first = workload_fingerprint(template_workload("ss_item_date", 1))
        second = workload_fingerprint(template_workload("ss_item_date", 2))
        repeat = workload_fingerprint(template_workload("ss_item_date", 1))
        assert first == repeat
        assert first != second


class TestCrossProcessDeterminism:
    def _fingerprints_in_fresh_process(self):
        src_root = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_root) + os.pathsep + env.get("PYTHONPATH", "")
        stdin = "\n".join(f"{name},{seed}" for name, seed in GRID)
        completed = subprocess.run(
            [sys.executable, "-c", _FINGERPRINT_SCRIPT],
            input=stdin,
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return completed.stdout.split()

    def test_fresh_processes_agree_with_each_other_and_with_us(self):
        local = [
            workload_fingerprint(template_workload(name, seed))
            for name, seed in GRID
        ]
        first = self._fingerprints_in_fresh_process()
        second = self._fingerprints_in_fresh_process()
        assert first == second, "two fresh processes disagree"
        assert first == local, "fresh process disagrees with this process"
