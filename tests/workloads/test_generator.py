"""Unit tests for :mod:`repro.workloads.generator`."""

import pytest

from repro.catalog.cardinality import CardinalityEstimator
from repro.workloads.generator import SyntheticWorkloadGenerator, Topology


class TestGeneration:
    def test_generates_requested_table_count(self):
        generated = SyntheticWorkloadGenerator(seed=1).generate(4)
        assert generated.table_count == 4
        assert len(generated.schema) == 4

    def test_chain_topology_edge_count(self):
        generated = SyntheticWorkloadGenerator(seed=1).generate(5, Topology.CHAIN)
        assert len(generated.query.join_graph.predicates) == 4

    def test_star_topology_edge_count(self):
        generated = SyntheticWorkloadGenerator(seed=1).generate(5, Topology.STAR)
        assert len(generated.query.join_graph.predicates) == 4
        # the center table is joined with every other table
        center = generated.query.join_graph.tables[0]
        assert len(generated.query.join_graph.neighbors(center)) == 4

    def test_cycle_topology_edge_count(self):
        generated = SyntheticWorkloadGenerator(seed=1).generate(5, Topology.CYCLE)
        assert len(generated.query.join_graph.predicates) == 5

    def test_clique_topology_edge_count(self):
        generated = SyntheticWorkloadGenerator(seed=1).generate(5, Topology.CLIQUE)
        assert len(generated.query.join_graph.predicates) == 10

    def test_single_table_query(self):
        generated = SyntheticWorkloadGenerator(seed=1).generate(1)
        assert generated.query.table_count == 1
        assert generated.query.join_graph.predicates == ()

    def test_join_graph_is_connected(self):
        for topology in Topology:
            generated = SyntheticWorkloadGenerator(seed=3).generate(4, topology)
            assert generated.query.is_connected(generated.query.tables)

    def test_same_seed_same_workload(self):
        first = SyntheticWorkloadGenerator(seed=7).generate(3)
        second = SyntheticWorkloadGenerator(seed=7).generate(3)
        rows_first = [t.row_count for t in first.schema.tables]
        rows_second = [t.row_count for t in second.schema.tables]
        assert rows_first == rows_second

    def test_different_seeds_differ(self):
        first = SyntheticWorkloadGenerator(seed=1).generate(3)
        second = SyntheticWorkloadGenerator(seed=2).generate(3)
        assert [t.row_count for t in first.schema.tables] != [
            t.row_count for t in second.schema.tables
        ]

    def test_row_counts_respect_range(self):
        generator = SyntheticWorkloadGenerator(seed=5, min_rows=10, max_rows=100)
        generated = generator.generate(6)
        for table in generated.schema.tables:
            assert 10 <= table.row_count <= 100

    def test_cardinalities_are_estimable(self):
        generated = SyntheticWorkloadGenerator(seed=11).generate(4, Topology.STAR)
        estimator = CardinalityEstimator(generated.statistics, generated.query.join_graph)
        assert estimator.cardinality(generated.query.tables) >= 1.0

    def test_generate_many(self):
        queries = SyntheticWorkloadGenerator(seed=1).generate_many(3, table_count=2)
        assert len(queries) == 3
        names = {g.query.name for g in queries}
        assert len(names) == 3

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadGenerator(min_rows=0)
        with pytest.raises(ValueError):
            SyntheticWorkloadGenerator().generate(0)
        with pytest.raises(ValueError):
            SyntheticWorkloadGenerator().generate(2, selectivity_range=(0.5, 0.1))
