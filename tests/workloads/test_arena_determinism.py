"""Cross-process determinism of per-arena plan-id assignment.

Plan ids used to come from a process-global counter, so the id a plan got
depended on every optimization that ran earlier in the process -- under
pytest-xdist (or any test reordering) the same query produced different ids.
Since the arena refactor every :class:`~repro.plans.factory.PlanFactory` owns
a private :class:`~repro.plans.arena.PlanArena` whose ids are assigned in
allocation order, so the full id structure of an optimization -- which id each
plan got, which child ids each join points to, which interned table-set id
each plan carries -- must be a pure function of the workload spec, across
processes and hash seeds (``PYTHONHASHSEED`` differs between interpreters, so
any hash-order dependence would surface here, exactly like in the generator
determinism suite next door).
"""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

SPECS = [
    "gen:chain:3:0",
    "gen:star:4:7",
    "gen:cycle:4:1",
    "gen:clique:3:42",
]

_FINGERPRINT_SCRIPT = """
import hashlib
import sys

from repro.api import OptimizeRequest, open_session

def fingerprint(spec):
    session = open_session(
        OptimizeRequest(workload=spec, algorithm="iama", scale="tiny", levels=3)
    )
    session.run()
    arena = session.driver.optimizer.arena
    digest = hashlib.sha256()
    for plan_id in range(1, len(arena) + 1):
        digest.update(
            (
                f"{plan_id}:{arena.kind_of(plan_id)}:{arena.left_of(plan_id)}:"
                f"{arena.right_of(plan_id)}:{sorted(arena.tables_of(plan_id))}:"
                f"{arena.order_of(plan_id)}:"
                f"{[v.hex() for v in arena.cost_row(plan_id)]}"
            ).encode()
        )
    return digest.hexdigest()

for line in sys.stdin.read().split():
    print(fingerprint(line))
"""


def _fingerprints_in_fresh_process(hash_seed: str) -> list:
    src_root = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_root) + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hash_seed
    completed = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SCRIPT],
        input="\n".join(SPECS),
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return completed.stdout.split()


def _fingerprints_in_this_process() -> list:
    from repro.api import OptimizeRequest, open_session

    results = []
    for spec in SPECS:
        session = open_session(
            OptimizeRequest(workload=spec, algorithm="iama", scale="tiny", levels=3)
        )
        session.run()
        arena = session.driver.optimizer.arena
        digest = hashlib.sha256()
        for plan_id in range(1, len(arena) + 1):
            digest.update(
                (
                    f"{plan_id}:{arena.kind_of(plan_id)}:{arena.left_of(plan_id)}:"
                    f"{arena.right_of(plan_id)}:{sorted(arena.tables_of(plan_id))}:"
                    f"{arena.order_of(plan_id)}:"
                    f"{[v.hex() for v in arena.cost_row(plan_id)]}"
                ).encode()
            )
        results.append(digest.hexdigest())
    return results


class TestArenaIdDeterminism:
    def test_id_assignment_is_identical_across_processes_and_hash_seeds(self):
        """The arena id structure matches between this process and fresh
        interpreters with two different hash seeds."""
        local = _fingerprints_in_this_process()
        assert _fingerprints_in_fresh_process("0") == local
        assert _fingerprints_in_fresh_process("4242") == local

    def test_repeated_runs_in_one_process_are_identical(self):
        """Re-optimizing the same spec yields the same ids: nothing leaks
        between factories (the old process-global counter would fail this
        by shifting every id of the second run)."""
        assert _fingerprints_in_this_process() == _fingerprints_in_this_process()

    def test_ids_are_dense_and_one_based(self):
        from repro.api import OptimizeRequest, open_session

        session = open_session(
            OptimizeRequest(
                workload="gen:star:3:0", algorithm="iama", scale="tiny", levels=2
            )
        )
        session.run()
        arena = session.driver.optimizer.arena
        stats = arena.stats()
        assert stats.plans_total == len(arena)
        assert stats.plans_live + stats.plans_tombstoned == stats.plans_total
        # Every id in 1..N resolves; 0 is reserved as the no-child sentinel.
        for plan_id in range(1, len(arena) + 1):
            assert arena.cost_row(plan_id)
