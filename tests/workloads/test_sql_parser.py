"""Unit tests for the dependency-free SQL frontend (:mod:`repro.workloads.sql`)."""

from __future__ import annotations

import pytest

from repro.workloads.sql import (
    BETWEEN_SELECTIVITY,
    LIKE_SELECTIVITY,
    RANGE_SELECTIVITY,
    UNKNOWN_EQ_SELECTIVITY,
    ParsedFilter,
    ParsedJoin,
    SqlParseError,
    estimate_filter_selectivity,
    extract_hints,
    lower_parsed,
    parse_sql,
    sql_text_digest,
    sql_workload,
    strip_comments,
    tokenize,
)
from repro.workloads.tpch import tpch_schema, tpch_statistics


# ----------------------------------------------------------------------
# Tokenizer and hints
# ----------------------------------------------------------------------
class TestTokenizer:
    def test_token_kinds(self):
        tokens = tokenize("select a.x, 'it''s', 3.5e2 from t where x <= 4")
        kinds = [t.kind for t in tokens]
        assert "ident" in kinds and "string" in kinds
        assert any(t.kind == "number" and t.value == "3.5e2" for t in tokens)
        assert any(t.kind == "op" and t.value == "<=" for t in tokens)
        assert any(t.kind == "punct" and t.value == "." for t in tokens)

    def test_comments_are_stripped(self):
        text = "select * -- trailing\nfrom t /* block\ncomment */ where x = 1"
        stripped = strip_comments(text)
        assert "trailing" not in stripped and "comment" not in stripped
        assert len(tokenize(stripped)) == len(tokenize("select * from t where x = 1"))

    def test_unexpected_character_raises_with_offset(self):
        with pytest.raises(SqlParseError, match="unexpected character"):
            tokenize("select @x from t")


class TestHints:
    def test_multiple_entries_one_comment(self):
        hints = extract_hints("/*+ sel(orders 0.1) sel(lineitem 0.5) */ select")
        assert hints == {"orders": 0.1, "lineitem": 0.5}

    def test_repeated_table_keeps_last_value(self):
        hints = extract_hints("/*+ sel(t 0.1) */ x /*+ sel(t 0.25) */")
        assert hints == {"t": 0.25}

    def test_hint_value_round_trips_exactly(self):
        # The literal is the source of truth for fingerprint identity.
        hints = extract_hints("/*+ sel(part 0.0016667) */")
        assert hints["part"] == float("0.0016667")

    def test_malformed_hint_body_raises(self):
        with pytest.raises(SqlParseError, match="unrecognized hint"):
            extract_hints("/*+ index(t foo) */")

    def test_non_numeric_value_raises(self):
        with pytest.raises(SqlParseError, match="not a number"):
            extract_hints("/*+ sel(t -.-) */")

    def test_out_of_range_value_raises(self):
        with pytest.raises(SqlParseError, match="must be in"):
            extract_hints("/*+ sel(t 1.5) */")
        with pytest.raises(SqlParseError, match="must be in"):
            extract_hints("/*+ sel(t 0) */")

    def test_plain_block_comment_is_not_a_hint(self):
        assert extract_hints("/* just a comment */ select") == {}


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
class TestParser:
    def test_comma_join_with_filters(self):
        parsed = parse_sql(
            "select * from lineitem, orders "
            "where lineitem.l_orderkey = orders.o_orderkey "
            "and orders.o_orderdate < '1995-03-15'"
        )
        assert [ref.table for ref in parsed.tables] == ["lineitem", "orders"]
        assert parsed.joins == (
            ParsedJoin("lineitem", "l_orderkey", "orders", "o_orderkey"),
        )
        assert parsed.filters == (
            ParsedFilter("orders", "o_orderdate", "<", ("'1995-03-15'",)),
        )

    def test_explicit_join_on_syntax(self):
        parsed = parse_sql(
            "select 1 from lineitem join orders on "
            "lineitem.l_orderkey = orders.o_orderkey "
            "inner join customer on orders.o_custkey = customer.c_custkey"
        )
        assert len(parsed.tables) == 3
        assert len(parsed.joins) == 2

    def test_aliases_with_and_without_as(self):
        parsed = parse_sql(
            "select * from nation as n1, nation n2 "
            "where n1.n_regionkey = n2.n_regionkey"
        )
        assert parsed.aliases() == ("n1", "n2")
        assert {ref.table for ref in parsed.tables} == {"nation"}

    def test_between_stays_one_condition(self):
        parsed = parse_sql(
            "select * from orders where orders.o_orderdate "
            "between '1994-01-01' and '1995-01-01' and orders.o_shippriority = 0"
        )
        assert len(parsed.filters) == 2
        between = parsed.filters[0]
        assert between.operator == "between" and len(between.values) == 2

    def test_in_and_like_filters(self):
        parsed = parse_sql(
            "select * from part where part.p_size in (1, 2, 3) "
            "and part.p_type like '%BRASS'"
        )
        operators = {f.operator for f in parsed.filters}
        assert operators == {"in", "like"}
        assert parsed.filters[0].values == ("1", "2", "3")

    def test_trailing_clauses_are_ignored(self):
        parsed = parse_sql(
            "select count(*) from orders where orders.o_shippriority = 0 "
            "group by o_orderdate order by 1 limit 10"
        )
        assert len(parsed.filters) == 1

    def test_unqualified_column_on_single_table_resolves(self):
        parsed = parse_sql("select * from orders where o_shippriority = 0")
        assert parsed.filters[0].table == "orders"

    def test_unqualified_column_over_many_tables_is_ambiguous(self):
        with pytest.raises(SqlParseError, match="ambiguous"):
            parse_sql(
                "select * from lineitem, orders "
                "where lineitem.l_orderkey = orders.o_orderkey and tax > 1"
            )

    def test_or_is_rejected(self):
        with pytest.raises(SqlParseError, match="OR is not supported"):
            parse_sql("select * from t where t.a = 1 or t.b = 2")

    def test_subqueries_are_rejected(self):
        with pytest.raises(SqlParseError, match="subqueries"):
            parse_sql(
                "select * from orders where orders.o_custkey in "
                "(select c_custkey from customer)"
            )

    def test_duplicate_unaliased_table_is_rejected(self):
        with pytest.raises(SqlParseError, match="duplicate table"):
            parse_sql("select * from nation, nation where 1 = 1")

    def test_hint_for_table_not_in_from_is_rejected(self):
        with pytest.raises(SqlParseError, match="not in FROM"):
            parse_sql("/*+ sel(orders 0.5) */ select * from lineitem")

    def test_join_condition_on_unknown_table_is_rejected(self):
        with pytest.raises(SqlParseError, match="not in FROM"):
            parse_sql(
                "select * from lineitem, orders "
                "where ghost.id = orders.o_orderkey"
            )


# ----------------------------------------------------------------------
# Selectivity estimation
# ----------------------------------------------------------------------
class TestSelectivity:
    @pytest.fixture()
    def catalog(self):
        schema = tpch_schema()
        return schema, tpch_statistics()

    def _estimate(self, catalog, operator, column="o_custkey", values=("'F'",)):
        schema, statistics = catalog
        filter_ = ParsedFilter("orders", column, operator, values)
        return estimate_filter_selectivity(
            filter_, schema.table("orders"), statistics
        )

    def test_equality_uses_distinct_values(self, catalog):
        schema, statistics = catalog
        ndv = statistics.distinct_values("orders", "o_custkey")
        assert self._estimate(catalog, "=") == pytest.approx(1.0 / ndv)

    def test_unknown_column_falls_back(self, catalog):
        assert self._estimate(catalog, "=", column="no_such_column") == (
            UNKNOWN_EQ_SELECTIVITY
        )

    def test_inequality_is_complement(self, catalog):
        eq = self._estimate(catalog, "=")
        assert self._estimate(catalog, "<>") == pytest.approx(1.0 - eq)

    def test_in_scales_with_list_size_and_caps(self, catalog):
        eq = self._estimate(catalog, "=")
        three = self._estimate(catalog, "in", values=("'a'", "'b'", "'c'"))
        assert three == pytest.approx(min(1.0, 3 * eq))

    def test_system_r_defaults(self, catalog):
        assert self._estimate(catalog, "<") == RANGE_SELECTIVITY
        assert self._estimate(catalog, "between", values=("1", "2")) == (
            BETWEEN_SELECTIVITY
        )
        assert self._estimate(catalog, "like") == LIKE_SELECTIVITY


# ----------------------------------------------------------------------
# Lowering
# ----------------------------------------------------------------------
class TestLowering:
    def test_from_order_is_preserved(self):
        workload = sql_workload(
            "select * from orders, lineitem "
            "where lineitem.l_orderkey = orders.o_orderkey",
            tpch_schema(),
        )
        assert workload.query.join_graph.tables == ("orders", "lineitem")

    def test_hints_pin_exact_selectivities(self):
        workload = sql_workload(
            "/*+ sel(orders 0.0125) */ select * from orders, lineitem "
            "where lineitem.l_orderkey = orders.o_orderkey "
            "and orders.o_orderdate < '1995-01-01'",
            tpch_schema(),
        )
        # The hint wins over the estimated range filter.
        assert workload.query.join_graph.base_selectivity("orders") == 0.0125

    def test_filters_on_one_table_multiply(self):
        workload = sql_workload(
            "select * from orders where orders.o_orderdate < '1995-01-01' "
            "and orders.o_orderdate between '1994-01-01' and '1995-01-01'",
            tpch_schema(),
        )
        expected = RANGE_SELECTIVITY * BETWEEN_SELECTIVITY
        assert workload.query.join_graph.base_selectivity("orders") == (
            pytest.approx(expected)
        )

    def test_alias_clones_the_base_table(self):
        workload = sql_workload(
            "select * from customer c1, customer backup_customer "
            "where c1.c_nationkey = backup_customer.c_nationkey",
            tpch_schema(),
        )
        schema = workload.schema
        assert schema.table("backup_customer").row_count == (
            schema.table("customer").row_count
        )
        assert workload.statistics.row_count("c1") == schema.table("customer").row_count

    def test_unknown_table_is_rejected(self):
        with pytest.raises(SqlParseError, match="unknown table"):
            sql_workload("select * from starship", tpch_schema())

    def test_cross_product_is_rejected(self):
        with pytest.raises(SqlParseError, match="cross products"):
            sql_workload("select * from lineitem, orders", tpch_schema())

    def test_default_name_is_digest_based_and_normalized(self):
        text_a = "select * from orders where orders.o_shippriority = 0"
        text_b = "SELECT *\n  FROM orders\n WHERE orders.o_shippriority = 0"
        assert sql_text_digest(text_a) == sql_text_digest(text_b)
        workload = sql_workload(text_a, tpch_schema())
        assert workload.query.name == f"sql_{sql_text_digest(text_a)}"
