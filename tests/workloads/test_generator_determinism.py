"""Seed-determinism regression tests for the synthetic workload generator.

The sharded benchmark scheduler identifies a synthetic sweep cell by
``(seed, table_count, topology)`` and may compute it in any worker process --
or adopt it from the on-disk cache written by an earlier run.  That is only
sound if the generator is a pure function of the seed *across processes*
(``PYTHONHASHSEED`` differs between fresh interpreters, so any hash-order
dependence would break this).  These tests pin that property down via
:func:`repro.workloads.generator.workload_fingerprint`.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.workloads.generator import (
    SyntheticWorkloadGenerator,
    Topology,
    generated_workload,
    workload_fingerprint,
)

GRID = [
    (seed, table_count, topology.value)
    for seed in (0, 7)
    for table_count in (2, 4)
    for topology in Topology
]

_FINGERPRINT_SCRIPT = """
import sys
from repro.workloads.generator import generated_workload, workload_fingerprint
for line in sys.stdin.read().split():
    seed, tables, topology = line.split(",")
    generated = generated_workload(int(seed), int(tables), topology)
    print(workload_fingerprint(generated))
"""


def _fingerprints_in_fresh_process() -> list:
    src_root = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_root) + os.pathsep + env.get("PYTHONPATH", "")
    stdin = "\n".join(f"{s},{n},{t}" for s, n, t in GRID)
    completed = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SCRIPT],
        input=stdin,
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return completed.stdout.split()


class TestInProcessDeterminism:
    def test_identical_seeds_identical_workloads(self):
        for seed, table_count, topology in GRID:
            first = workload_fingerprint(
                generated_workload(seed, table_count, topology)
            )
            second = workload_fingerprint(
                generated_workload(seed, table_count, topology)
            )
            assert first == second

    def test_fingerprint_distinguishes_seeds_and_shapes(self):
        fingerprints = {
            workload_fingerprint(generated_workload(seed, tables, topology))
            for seed, tables, topology in GRID
        }
        # Two-table queries have a single join edge, so all four topologies
        # coincide there; everything else must differ.
        assert len(fingerprints) >= len(GRID) - 2 * 3

    def test_generator_state_does_not_leak_between_calls(self):
        """generated_workload is independent of prior generation activity."""
        generator = SyntheticWorkloadGenerator(seed=42)
        generator.generate_many(3, 3, Topology.STAR)  # perturb some RNG state
        independent = generated_workload(42, 3, Topology.STAR)
        fresh = SyntheticWorkloadGenerator(seed=42).generate(3, Topology.STAR)
        assert workload_fingerprint(independent) == workload_fingerprint(fresh)


class TestCrossProcessDeterminism:
    def test_two_fresh_processes_agree_with_each_other_and_with_us(self):
        local = [
            workload_fingerprint(generated_workload(seed, tables, topology))
            for seed, tables, topology in GRID
        ]
        first = _fingerprints_in_fresh_process()
        second = _fingerprints_in_fresh_process()
        assert first == second, "two fresh processes disagree"
        assert first == local, "fresh process disagrees with this process"
