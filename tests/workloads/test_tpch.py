"""Unit tests for :mod:`repro.workloads.tpch`."""

import pytest

from repro.catalog.cardinality import CardinalityEstimator
from repro.workloads.tpch import (
    TPCH_TABLE_ROWS,
    tpch_blocks_by_table_count,
    tpch_queries,
    tpch_query_blocks,
    tpch_schema,
    tpch_statistics,
)


class TestSchema:
    def test_all_tables_present(self):
        schema = tpch_schema()
        for table in ("region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"):
            assert schema.has_table(table)

    def test_scale_factor_one_cardinalities(self):
        schema = tpch_schema()
        assert schema.table("lineitem").row_count == TPCH_TABLE_ROWS["lineitem"]
        assert schema.table("region").row_count == 5

    def test_scale_factor_scales_big_tables_only(self):
        schema = tpch_schema(scale_factor=0.1)
        assert schema.table("lineitem").row_count == 600_000
        assert schema.table("nation").row_count == 25

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            tpch_schema(scale_factor=0)

    def test_alias_table_nation2_mirrors_nation(self):
        schema = tpch_schema()
        assert schema.table("nation2").row_count == schema.table("nation").row_count

    def test_statistics_catalog_builds(self):
        assert tpch_statistics().row_count("orders") == 1_500_000


class TestQueryBlocks:
    def test_every_block_has_at_least_one_join(self):
        for spec in tpch_query_blocks():
            assert len(spec.joins) >= 1
            assert spec.table_count() >= 2

    def test_all_blocks_reference_known_tables(self):
        schema = tpch_schema()
        for spec in tpch_query_blocks():
            for table in spec.tables:
                assert schema.has_table(table)

    def test_block_join_graphs_are_connected(self):
        for query in tpch_queries():
            assert query.is_connected(query.tables), query.name

    def test_table_count_groups_match_paper(self):
        # Figures 3-5 group by 2, 3, 4, 5, 6 and 8 tables; no 7-table block.
        groups = tpch_blocks_by_table_count()
        assert set(groups) == {2, 3, 4, 5, 6, 8}

    def test_only_q08_has_eight_tables(self):
        groups = tpch_blocks_by_table_count()
        assert [q.name for q in groups[8]] == ["tpch_q08"]

    def test_filtering_by_table_count(self):
        assert all(q.table_count <= 4 for q in tpch_queries(max_tables=4))
        assert all(q.table_count >= 3 for q in tpch_queries(min_tables=3))

    def test_query_names_are_unique(self):
        names = [q.name for q in tpch_queries()]
        assert len(names) == len(set(names))

    def test_cardinalities_computable_for_every_block(self):
        statistics = tpch_statistics()
        for query in tpch_queries():
            estimator = CardinalityEstimator(statistics, query.join_graph)
            cardinality = estimator.cardinality(query.tables)
            assert cardinality >= 1.0

    def test_q8_touches_many_small_tables(self):
        statistics = tpch_statistics()
        q08 = [q for q in tpch_queries() if q.name == "tpch_q08"][0]
        small = [t for t in q08.tables if statistics.row_count(t) <= 20_000]
        # nation, nation2, region and supplier are small: fewer sampling
        # strategies get considered for them (paper, footnote 4).
        assert len(small) >= 4
