"""Unit tests for the unified workload-spec resolver (:mod:`repro.workloads.spec`)."""

from __future__ import annotations

import pytest

from repro import flags
from repro.workloads.spec import (
    FAMILY_HELP,
    canonical_spec_id,
    parse_generated_spec,
    parse_template_spec,
    resolve_workload,
)
from repro.workloads.templates import instantiate_template


# ----------------------------------------------------------------------
# Family parsing
# ----------------------------------------------------------------------
class TestGeneratedSpecs:
    def test_round_trip(self):
        assert parse_generated_spec("gen:star:6:42") == ("star", 6, 42)

    @pytest.mark.parametrize(
        "spec, message",
        [
            ("gen:star:6", "malformed"),
            ("gen:pentagram:6:42", "unknown topology"),
            ("gen:star:six:42", "must be integers"),
            ("gen:star:0:42", "at least 1"),
        ],
    )
    def test_malformed_specs(self, spec, message):
        with pytest.raises(ValueError, match=message):
            parse_generated_spec(spec)

    def test_resolves_to_a_workload(self):
        resolved = resolve_workload("gen:chain:3:7")
        assert resolved.query.table_count == 3


class TestTemplateSpecs:
    def test_round_trip(self):
        assert parse_template_spec("template:ss_item_date:7") == ("ss_item_date", 7)

    @pytest.mark.parametrize(
        "spec, message",
        [
            ("template:ss_item_date", "malformed"),
            ("template:no_such_template:7", "unknown template"),
            ("template:ss_item_date:seven", "must be an integer"),
        ],
    )
    def test_malformed_specs(self, spec, message):
        with pytest.raises(ValueError, match=message):
            parse_template_spec(spec)

    def test_resolves_to_the_instantiated_workload(self):
        resolved = resolve_workload("template:ss_item_date:7")
        assert resolved.query.name == "template_ss_item_date"
        assert resolved.query.table_count == 3


class TestSqlSpecs:
    def test_inline_select_against_tpch(self):
        resolved = resolve_workload(
            "sql:select * from lineitem, orders "
            "where lineitem.l_orderkey = orders.o_orderkey"
        )
        assert resolved.query.name.startswith("sql_")
        assert set(resolved.query.tables) == {"lineitem", "orders"}

    def test_inline_select_falls_back_to_the_template_schema(self):
        resolved = resolve_workload(
            "sql:select * from store_sales, item "
            "where store_sales.ss_item_sk = item.i_item_sk"
        )
        assert resolved.statistics.row_count("store_sales") == 2_880_404

    def test_shipped_tpch_text_by_name(self):
        resolved = resolve_workload("sql:tpch/q03")
        assert resolved.query.name == "tpch_q03"

    def test_sql_file(self, tmp_path):
        path = tmp_path / "query.sql"
        path.write_text(
            "select * from lineitem, orders "
            "where lineitem.l_orderkey = orders.o_orderkey"
        )
        resolved = resolve_workload(f"sql:{path}")
        assert set(resolved.query.tables) == {"lineitem", "orders"}

    @pytest.mark.parametrize(
        "spec, message",
        [
            ("sql:", "empty sql spec"),
            ("sql:tpch/q99", "no shipped SQL"),
            ("sql:/nowhere/missing.sql", "does not exist"),
            ("sql:drop table lineitem", "malformed sql spec"),
            ("sql:select * from klingon_fleet", "neither the TPC-H schema"),
        ],
    )
    def test_malformed_specs(self, spec, message):
        with pytest.raises(ValueError, match=message):
            resolve_workload(spec)


class TestTpchSpecs:
    @pytest.mark.parametrize("spelling", ("q03", "tpch_q03", "tpch:q03", "tpch:tpch_q03"))
    def test_all_spellings_resolve_to_the_same_block(self, spelling):
        assert resolve_workload(spelling).query.name == "tpch_q03"

    def test_flag_off_uses_the_stub_path_with_identical_result(self):
        on = resolve_workload("tpch:q03")
        with flags.overrides(sql_frontend=False):
            off = resolve_workload("tpch:q03")
        assert on.query.name == off.query.name
        assert on.query.join_graph.tables == off.query.join_graph.tables
        for table in on.query.join_graph.tables:
            assert on.query.join_graph.base_selectivity(table) == (
                off.query.join_graph.base_selectivity(table)
            )


class TestUnknownSpecs:
    @pytest.mark.parametrize("spec", ("q99", "bogus", "redshift:q1", "sqlite"))
    def test_one_consistent_error_naming_the_families(self, spec):
        with pytest.raises(ValueError, match="unknown query") as excinfo:
            resolve_workload(spec)
        assert FAMILY_HELP in str(excinfo.value)


# ----------------------------------------------------------------------
# Cache identity
# ----------------------------------------------------------------------
def _identity(spec, config=None):
    resolved = resolve_workload(spec, config)
    return canonical_spec_id(spec, resolved.query, resolved.statistics, 1.0)


class TestCanonicalSpecId:
    def test_tpch_spellings_share_one_identity(self):
        identities = {
            _identity(spelling) for spelling in ("q03", "tpch_q03", "tpch:q03")
        }
        assert identities == {"tpch:tpch_q03:1.0"}

    def test_generated_specs_key_on_the_fingerprint(self):
        assert _identity("gen:star:4:1") == _identity("gen:star:4:1")
        assert _identity("gen:star:4:1") != _identity("gen:star:4:2")
        assert _identity("gen:star:4:1").startswith("gen:")

    def test_template_identity_is_spelling_independent(self):
        # The same template seed spelled as template: and as inline sql: of the
        # instantiated text would differ only in the query *name*; the
        # template: family itself is stable and seed-sensitive.
        assert _identity("template:ss_item_date:7") == (
            _identity("template:ss_item_date:7")
        )
        assert _identity("template:ss_item_date:7") != (
            _identity("template:ss_item_date:8")
        )
        assert _identity("template:ss_item_date:7").startswith("sql:")

    def test_sql_and_tpch_flavors_of_a_block_differ_only_by_family(self):
        # sql: specs key on the fingerprint, tpch: specs on the block name;
        # both are stable, spelling-independent within their family.
        assert _identity("sql:tpch/q03") == _identity("sql:tpch/q03")
        assert _identity("sql:tpch/q03").startswith("sql:")

    def test_instantiated_template_text_is_deterministic(self):
        assert instantiate_template("ss_item_date", 7) == (
            instantiate_template("ss_item_date", 7)
        )
