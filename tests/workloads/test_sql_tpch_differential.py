"""Differential suite: SQL-parsed TPC-H must equal the hand-coded stubs.

The ``sql_frontend`` flag swaps the ingestion path of every ``tpch:`` spec —
shipped SQL text through the parser versus the hand-coded
:func:`~repro.workloads.tpch.tpch_query_blocks` stubs.  That swap is only
admissible because the two paths are *bit-identical*: same join graph, same
predicates, same base selectivities (down to ``repr`` of the float), same
workload fingerprint, and therefore bit-identical optimizer frontiers on both
kernel backends.  This suite pins each of those layers.
"""

from __future__ import annotations

from contextlib import ExitStack

import pytest

from repro import flags, kernel
from repro.api import OptimizeRequest, open_session
from repro.workloads.generator import GeneratedQuery, workload_fingerprint
from repro.workloads.tpch import (
    tpch_queries,
    tpch_query_blocks,
    tpch_schema,
    tpch_statistics,
)
from repro.workloads.tpch_sql import (
    tpch_block_from_sql,
    tpch_sql_names,
    tpch_sql_text,
)

try:
    import numpy  # noqa: F401

    BACKENDS = ("python", "numpy")
except ImportError:  # pragma: no cover - numpy ships in the dev env
    BACKENDS = ("python",)

STUB_QUERIES = {query.name: query for query in tpch_queries()}


def _predicate_tuples(query):
    return sorted(
        (p.left_table, p.left_column, p.right_table, p.right_column)
        for p in query.join_graph.predicates
    )


class TestStructuralEquality:
    def test_every_stub_block_has_shipped_sql(self):
        assert sorted(tpch_sql_names()) == sorted(
            spec.name for spec in tpch_query_blocks()
        )

    @pytest.mark.parametrize("block", [s.name for s in tpch_query_blocks()])
    def test_join_graph_and_selectivities_match(self, block):
        stub = STUB_QUERIES[f"tpch_{block}"]
        parsed = tpch_block_from_sql(block).query
        assert parsed.name == stub.name
        assert parsed.join_graph.tables == stub.join_graph.tables
        assert _predicate_tuples(parsed) == _predicate_tuples(stub)
        for table in stub.join_graph.tables:
            # repr-level equality: these floats feed the fingerprint.
            assert repr(parsed.join_graph.base_selectivity(table)) == repr(
                stub.join_graph.base_selectivity(table)
            ), (block, table)

    @pytest.mark.parametrize("block", [s.name for s in tpch_query_blocks()])
    def test_workload_fingerprints_match(self, block):
        sql_side = tpch_block_from_sql(block)
        stub_side = GeneratedQuery(
            query=STUB_QUERIES[f"tpch_{block}"],
            schema=tpch_schema(),
            statistics=tpch_statistics(),
        )
        assert workload_fingerprint(sql_side) == workload_fingerprint(stub_side)

    def test_scale_factor_flows_into_the_sql_path(self):
        scaled = tpch_block_from_sql("q03", scale_factor=0.1)
        assert scaled.statistics.row_count("lineitem") == 600_000

    def test_hints_in_shipped_sql_carry_the_stub_selectivities(self):
        # Spot check one block: the hint literal in the SQL text is exactly
        # the stub's estimate, not a re-derived approximation.
        spec = next(s for s in tpch_query_blocks() if s.name == "q03")
        text = tpch_sql_text("q03")
        for table, value in spec.selectivities.items():
            assert f"sel({table}" in text
            parsed = tpch_block_from_sql("q03").query
            assert parsed.join_graph.base_selectivity(table) == value


# ----------------------------------------------------------------------
# End-to-end frontiers
# ----------------------------------------------------------------------
def _frontier(block, backend, algorithm, sql_frontend):
    request = OptimizeRequest(
        workload=f"tpch:{block}", algorithm=algorithm, scale="tiny", levels=2
    )
    with ExitStack() as stack:
        stack.enter_context(kernel.use_backend(backend))
        stack.enter_context(flags.overrides(sql_frontend=sql_frontend))
        result = open_session(request).run()
    return {
        "frontier": [
            [value.hex() for value in summary.cost] for summary in result.frontier
        ],
        "plans_generated": result.plans_generated,
    }


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ("iama", "oneshot"))
@pytest.mark.parametrize("block", ("q03", "q05", "q14"))
def test_frontiers_are_bit_identical_per_algorithm(block, algorithm, backend):
    parsed = _frontier(block, backend, algorithm, sql_frontend=True)
    stub = _frontier(block, backend, algorithm, sql_frontend=False)
    assert parsed["frontier"] == stub["frontier"], (block, algorithm, backend)
    assert parsed["plans_generated"] == stub["plans_generated"]


@pytest.mark.skipif(len(BACKENDS) < 2, reason="numpy backend unavailable")
def test_sql_path_on_numpy_equals_stub_path_on_python():
    parsed = _frontier("q10", "numpy", "iama", sql_frontend=True)
    stub = _frontier("q10", "python", "iama", sql_frontend=False)
    assert parsed["frontier"] == stub["frontier"]
