"""Unit tests for :mod:`repro.plans.operators`."""

import pytest

from repro.plans.operators import (
    JoinOperator,
    OperatorRegistry,
    ScanOperator,
    default_operator_registry,
    minimal_operator_registry,
)


class TestScanOperator:
    def test_seq_scan_requires_full_sampling(self):
        ScanOperator("seq_scan", 1.0, 1)
        with pytest.raises(ValueError):
            ScanOperator("seq_scan", 0.5, 1)

    def test_sample_scan_requires_partial_sampling(self):
        ScanOperator("sample_scan", 0.5, 1)
        with pytest.raises(ValueError):
            ScanOperator("sample_scan", 1.0, 1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ScanOperator("index_scan")

    def test_parallelism_must_be_positive(self):
        with pytest.raises(ValueError):
            ScanOperator("seq_scan", 1.0, 0)

    def test_labels(self):
        assert "SeqScan" in ScanOperator("seq_scan", 1.0, 2).label
        assert "0.5" in ScanOperator("sample_scan", 0.5, 1).label


class TestJoinOperator:
    def test_known_algorithms(self):
        for algorithm in ("hash_join", "sort_merge_join", "nested_loop_join"):
            JoinOperator(algorithm)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            JoinOperator("block_nested_loop")

    def test_parallelism_must_be_positive(self):
        with pytest.raises(ValueError):
            JoinOperator("hash_join", 0)

    def test_only_merge_join_produces_order(self):
        assert JoinOperator("sort_merge_join").produces_order
        assert not JoinOperator("hash_join").produces_order

    def test_labels_are_distinct(self):
        labels = {JoinOperator(a).label for a in ("hash_join", "sort_merge_join", "nested_loop_join")}
        assert len(labels) == 3


class TestOperatorRegistry:
    def test_default_registry_shapes(self):
        registry = default_operator_registry()
        operators = registry.scan_operators(table_rows=1_000_000)
        kinds = {op.kind for op in operators}
        assert kinds == {"seq_scan", "sample_scan"}
        assert len(registry.join_operators()) == len(registry.join_algorithms) * len(
            registry.parallelism_levels
        )

    def test_small_tables_get_fewer_sampling_strategies(self):
        registry = OperatorRegistry(sampling_rates=(0.5, 0.1, 0.01), small_table_rows=1000)
        small = registry.scan_operators(table_rows=100)
        large = registry.scan_operators(table_rows=1_000_000)
        small_rates = {op.sampling_rate for op in small if op.kind == "sample_scan"}
        large_rates = {op.sampling_rate for op in large if op.kind == "sample_scan"}
        assert len(small_rates) < len(large_rates)

    def test_every_parallelism_level_is_offered(self):
        registry = OperatorRegistry(parallelism_levels=(1, 8))
        levels = {op.parallelism for op in registry.scan_operators(10)}
        assert levels == {1, 8}

    def test_validation_of_constructor_arguments(self):
        with pytest.raises(ValueError):
            OperatorRegistry(parallelism_levels=())
        with pytest.raises(ValueError):
            OperatorRegistry(parallelism_levels=(0,))
        with pytest.raises(ValueError):
            OperatorRegistry(sampling_rates=(1.5,))
        with pytest.raises(ValueError):
            OperatorRegistry(join_algorithms=())

    def test_minimal_registry_is_small(self):
        registry = minimal_operator_registry()
        assert len(registry.join_operators()) == 1
        assert len(registry.scan_operators(1_000_000)) == 2
