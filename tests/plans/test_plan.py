"""Unit tests for :mod:`repro.plans.plan`."""

import pytest

from repro.costs.vector import CostVector
from repro.plans.operators import JoinOperator, ScanOperator
from repro.plans.plan import JoinPlan, Plan, ScanPlan, plan_signature


def scan(table, cost=(1.0, 1.0)):
    return ScanPlan(table, ScanOperator("seq_scan"), CostVector(cost))


def join(left, right, cost=(2.0, 2.0), algorithm="hash_join"):
    return JoinPlan(left, right, JoinOperator(algorithm), CostVector(cost))


class TestScanPlan:
    def test_tables_and_type(self):
        plan = scan("orders")
        assert plan.tables == frozenset({"orders"})
        assert plan.is_scan() and not plan.is_join()

    def test_leaves_and_depth(self):
        plan = scan("orders")
        assert plan.leaves() == [plan]
        assert plan.depth() == 1

    def test_walk_yields_self(self):
        plan = scan("orders")
        assert list(plan.walk()) == [plan]

    def test_render_mentions_table(self):
        assert "orders" in scan("orders").render()

    def test_plan_ids_are_unique(self):
        assert scan("a").plan_id != scan("a").plan_id


class TestJoinPlan:
    def test_tables_are_union_of_children(self):
        plan = join(scan("a"), scan("b"))
        assert plan.tables == frozenset({"a", "b"})
        assert plan.is_join()

    def test_overlapping_operands_rejected(self):
        with pytest.raises(ValueError):
            join(scan("a"), scan("a"))

    def test_leaves_in_order(self):
        plan = join(join(scan("a"), scan("b")), scan("c"))
        assert [leaf.table for leaf in plan.leaves()] == ["a", "b", "c"]

    def test_depth(self):
        plan = join(join(scan("a"), scan("b")), scan("c"))
        assert plan.depth() == 3

    def test_walk_is_preorder(self):
        left = join(scan("a"), scan("b"))
        plan = join(left, scan("c"))
        walked = list(plan.walk())
        assert walked[0] is plan
        assert walked[1] is left
        assert len(walked) == 5

    def test_render_nests_operands(self):
        rendered = join(scan("a"), scan("b")).render()
        assert rendered.startswith("(") and "HJ" in rendered

    def test_table_count(self):
        assert join(scan("a"), scan("b")).table_count == 2


class TestPlanSignature:
    def test_signature_is_symmetric_in_operands(self):
        a, b = scan("a"), scan("b")
        operator = JoinOperator("hash_join")
        assert plan_signature(a, b, operator) == plan_signature(b, a, operator)

    def test_signature_distinguishes_operators(self):
        a, b = scan("a"), scan("b")
        assert plan_signature(a, b, JoinOperator("hash_join")) != plan_signature(
            a, b, JoinOperator("nested_loop_join")
        )

    def test_signature_distinguishes_parallelism(self):
        a, b = scan("a"), scan("b")
        assert plan_signature(a, b, JoinOperator("hash_join", 1)) != plan_signature(
            a, b, JoinOperator("hash_join", 2)
        )

    def test_signature_distinguishes_operands(self):
        a, b, c = scan("a"), scan("b"), scan("c")
        operator = JoinOperator("hash_join")
        assert plan_signature(a, b, operator) != plan_signature(a, c, operator)


class TestPlanValidation:
    def test_plan_requires_tables(self):
        with pytest.raises(ValueError):
            Plan(frozenset(), CostVector([1.0]))

    def test_interesting_order_defaults_to_none(self):
        assert scan("a").interesting_order is None
