"""Unit tests for :mod:`repro.plans.explain`."""

import pytest

from repro.costs.metrics import paper_metric_set
from repro.costs.vector import CostVector
from repro.plans.explain import (
    compare_plans,
    explain_plan,
    format_frontier_summary,
    frontier_summary,
)
from repro.plans.operators import JoinOperator, ScanOperator
from repro.plans.plan import JoinPlan, ScanPlan


@pytest.fixture
def metric_set():
    return paper_metric_set()


def scan(table, cost):
    return ScanPlan(table, ScanOperator("seq_scan"), CostVector(cost))


def join(left, right, cost, order=None):
    return JoinPlan(left, right, JoinOperator("hash_join"), CostVector(cost), order)


@pytest.fixture
def plan(metric_set):
    a = scan("customers", [1, 1, 0])
    b = scan("orders", [2, 1, 0])
    return join(a, b, [4, 1, 0])


class TestExplainPlan:
    def test_lists_every_node(self, plan, metric_set):
        text = explain_plan(plan, metric_set)
        assert "customers" in text and "orders" in text
        assert len(text.splitlines()) == 3

    def test_children_are_indented(self, plan, metric_set):
        lines = explain_plan(plan, metric_set).splitlines()
        assert not lines[0].startswith(" ")
        assert lines[1].startswith("  ")
        assert lines[2].startswith("  ")

    def test_costs_are_annotated(self, plan, metric_set):
        text = explain_plan(plan, metric_set)
        assert "execution_time=4" in text

    def test_interesting_order_is_shown(self, metric_set):
        a = scan("a", [1, 1, 0])
        b = scan("b", [1, 1, 0])
        merged = join(a, b, [3, 1, 0], order="sorted:a")
        assert "order=sorted:a" in explain_plan(merged, metric_set)

    def test_scan_only_plan(self, metric_set):
        text = explain_plan(scan("customers", [1, 1, 0]), metric_set)
        assert len(text.splitlines()) == 1


class TestComparePlans:
    def test_ratios_per_metric(self, metric_set):
        left = scan("a", [2, 1, 0])
        right = scan("b", [1, 2, 0])
        comparison = compare_plans(left, right, metric_set)
        assert comparison["execution_time"]["ratio"] == pytest.approx(2.0)
        assert comparison["reserved_cores"]["ratio"] == pytest.approx(0.5)

    def test_zero_denominator(self, metric_set):
        left = scan("a", [1, 1, 0.5])
        right = scan("b", [1, 1, 0])
        comparison = compare_plans(left, right, metric_set)
        assert comparison["precision_loss"]["ratio"] == float("inf")

    def test_zero_over_zero_is_one(self, metric_set):
        left = scan("a", [1, 1, 0])
        right = scan("b", [1, 1, 0])
        assert compare_plans(left, right, metric_set)["precision_loss"]["ratio"] == 1.0


class TestFrontierSummary:
    def test_min_max_spread(self, metric_set):
        costs = [CostVector([1, 1, 0]), CostVector([4, 2, 0.5])]
        summary = frontier_summary(costs, metric_set)
        assert summary["execution_time"]["min"] == 1
        assert summary["execution_time"]["max"] == 4
        assert summary["execution_time"]["spread"] == pytest.approx(4.0)
        assert summary["_tradeoffs"]["stored"] == 2

    def test_non_dominated_count(self, metric_set):
        costs = [CostVector([1, 1, 0]), CostVector([2, 2, 0.5]), CostVector([0.5, 3, 0])]
        summary = frontier_summary(costs, metric_set)
        assert summary["_tradeoffs"]["non_dominated"] == 2

    def test_empty_frontier(self, metric_set):
        summary = frontier_summary([], metric_set)
        assert summary["_tradeoffs"]["stored"] == 0

    def test_zero_minimum_gives_infinite_spread(self, metric_set):
        costs = [CostVector([1, 1, 0]), CostVector([2, 2, 0.4])]
        summary = frontier_summary(costs, metric_set)
        assert summary["precision_loss"]["spread"] == float("inf")

    def test_formatted_summary(self, metric_set):
        costs = [CostVector([1, 1, 0]), CostVector([4, 2, 0.5])]
        text = format_frontier_summary(costs, metric_set)
        assert "2 stored tradeoffs" in text
        assert "execution_time" in text
