"""Unit tests for :mod:`repro.plans.arena`."""

import pytest

from repro import kernel
from repro.api import OptimizeRequest, resolve_request
from repro.costs.vector import CostVector
from repro.plans.arena import (
    KIND_GENERIC,
    KIND_JOIN,
    KIND_SCAN,
    NO_CHILD,
    PlanArena,
    default_arena,
)
from repro.plans.operators import JoinOperator, ScanOperator
from repro.plans.plan import JoinPlan, Plan, ScanPlan

try:
    import numpy  # noqa: F401

    BACKENDS = ("python", "numpy")
except ImportError:  # pragma: no cover - depends on environment
    BACKENDS = ("python",)


def scan_id(arena, table="t", cost=(1.0, 2.0)):
    return arena.allocate_scan(table, ScanOperator("seq_scan"), CostVector(cost))


class TestAllocation:
    def test_ids_are_dense_and_one_based(self):
        arena = PlanArena(2)
        assert scan_id(arena, "a") == 1
        assert scan_id(arena, "b") == 2
        assert len(arena) == 2

    def test_scan_columns(self):
        arena = PlanArena(2)
        plan_id = scan_id(arena, "orders", (3.0, 4.0))
        assert arena.kind_of(plan_id) == KIND_SCAN
        assert arena.left_of(plan_id) == NO_CHILD
        assert arena.right_of(plan_id) == NO_CHILD
        assert arena.tables_of(plan_id) == frozenset({"orders"})
        assert arena.cost_row(plan_id) == (3.0, 4.0)
        assert arena.first_cost(plan_id) == 3.0
        assert arena.order_of(plan_id) is None
        assert arena.order_id_of(plan_id) == 0

    def test_join_records_children_and_union_tables(self):
        arena = PlanArena(2)
        left = scan_id(arena, "a")
        right = scan_id(arena, "b")
        join = arena.allocate_join(
            left, right, JoinOperator("hash_join"), CostVector([5.0, 5.0])
        )
        assert arena.kind_of(join) == KIND_JOIN
        assert arena.left_of(join) == left
        assert arena.right_of(join) == right
        assert arena.tables_of(join) == frozenset({"a", "b"})

    def test_overlapping_join_operands_rejected(self):
        arena = PlanArena(2)
        left = scan_id(arena, "a")
        right = scan_id(arena, "a")
        with pytest.raises(ValueError):
            arena.allocate_join(
                left, right, JoinOperator("hash_join"), CostVector([1.0, 1.0])
            )

    def test_generic_requires_tables(self):
        arena = PlanArena(1)
        with pytest.raises(ValueError):
            arena.allocate_generic(frozenset(), CostVector([1.0]))

    def test_extend_joins_bulk_allocates_in_order(self):
        arena = PlanArena(2)
        left = scan_id(arena, "a")
        right = scan_id(arena, "b")
        operator_id = arena.intern_operator(JoinOperator("hash_join"))
        tables_id = arena.intern_tables(frozenset({"a", "b"}))
        ids = arena.extend_joins(
            left_ids=[left, left],
            right_ids=[right, right],
            operator_ids=[operator_id, operator_id],
            tables_ids=[tables_id, tables_id],
            order_ids=[0, 0],
            cost_columns=[[10.0, 11.0], [20.0, 21.0]],
        )
        assert ids == [3, 4]
        assert arena.cost_row(3) == (10.0, 20.0)
        assert arena.cost_row(4) == (11.0, 21.0)
        assert arena.left_of(4) == left and arena.right_of(4) == right

    def test_extend_joins_empty_is_noop(self):
        arena = PlanArena(2)
        assert arena.extend_joins([], [], [], [], [], [[], []]) == []
        assert len(arena) == 0


class TestInterning:
    def test_table_sets_interned_once(self):
        arena = PlanArena(1)
        first = arena.intern_tables(frozenset({"a", "b"}))
        second = arena.intern_tables(frozenset({"b", "a"}))
        assert first == second
        assert arena.tables_for_id(first) == frozenset({"a", "b"})

    def test_tables_of_returns_the_interned_object(self):
        arena = PlanArena(1)
        a = arena.allocate_scan("t", ScanOperator("seq_scan"), CostVector([1.0]))
        b = arena.allocate_scan("t", ScanOperator("seq_scan", parallelism=2), CostVector([2.0]))
        assert arena.tables_of(a) is arena.tables_of(b)

    def test_operators_and_orders_interned(self):
        arena = PlanArena(1)
        operator = JoinOperator("sort_merge_join")
        assert arena.intern_operator(operator) == arena.intern_operator(operator)
        assert arena.intern_order(None) == 0
        assert arena.intern_order("sorted:a") == arena.intern_order("sorted:a")
        assert arena.intern_order("sorted:b") != arena.intern_order("sorted:a")


class TestHandles:
    def test_handles_are_canonical(self):
        arena = PlanArena(2)
        plan_id = scan_id(arena)
        assert arena.plan(plan_id) is arena.plan(plan_id)

    def test_handle_classes_follow_node_kind(self):
        arena = PlanArena(2)
        s = scan_id(arena, "a")
        j = arena.allocate_join(
            s, scan_id(arena, "b"), JoinOperator("hash_join"), CostVector([1.0, 1.0])
        )
        g = arena.allocate_generic(frozenset({"x"}), CostVector([1.0, 1.0]))
        assert isinstance(arena.plan(s), ScanPlan)
        assert isinstance(arena.plan(j), JoinPlan)
        assert type(arena.plan(g)) is Plan
        assert arena.kind_of(g) == KIND_GENERIC

    def test_directly_constructed_plans_are_their_own_handles(self):
        plan = ScanPlan("t", ScanOperator("seq_scan"), CostVector([1.0, 2.0]))
        assert plan.arena.plan(plan.plan_id) is plan

    def test_join_handle_resolves_children_to_original_objects(self):
        left = ScanPlan("a", ScanOperator("seq_scan"), CostVector([1.0]))
        right = ScanPlan("b", ScanOperator("seq_scan"), CostVector([1.0]))
        join = JoinPlan(left, right, JoinOperator("hash_join"), CostVector([2.0]))
        assert join.left is left
        assert join.right is right

    def test_cost_vector_is_cached(self):
        arena = PlanArena(2)
        plan = arena.plan(scan_id(arena))
        assert plan.cost is plan.cost
        assert plan.cost == CostVector([1.0, 2.0])

    def test_default_arena_is_per_dimensionality(self):
        assert default_arena(2) is default_arena(2)
        assert default_arena(2) is not default_arena(3)
        one = ScanPlan("t", ScanOperator("seq_scan"), CostVector([1.0, 1.0]))
        two = ScanPlan("t", ScanOperator("seq_scan"), CostVector([1.0, 1.0]))
        assert one.arena is two.arena
        assert one.plan_id != two.plan_id


class TestTombstoning:
    def test_tombstone_updates_stats_but_keeps_row_addressable(self):
        arena = PlanArena(2)
        plan_id = scan_id(arena)
        keep_id = scan_id(arena, "u")
        arena.tombstone(plan_id)
        stats = arena.stats()
        assert stats.plans_total == 2
        assert stats.plans_live == 1
        assert stats.plans_tombstoned == 1
        assert arena.is_tombstoned(plan_id)
        assert not arena.is_tombstoned(keep_id)
        # Ids are never recycled and the row stays readable.
        assert arena.cost_row(plan_id) == (1.0, 2.0)
        assert scan_id(arena, "v") == 3

    def test_tombstone_is_idempotent(self):
        arena = PlanArena(1)
        plan_id = arena.allocate_scan("t", ScanOperator("seq_scan"), CostVector([1.0]))
        arena.tombstone(plan_id)
        arena.tombstone(plan_id)
        assert arena.stats().plans_tombstoned == 1


class TestWeakDefaultArena:
    """Directly constructed plans must stay garbage-collectable."""

    def test_dropped_direct_plans_are_collected(self):
        import gc
        import weakref

        plan = ScanPlan("gc_probe", ScanOperator("seq_scan"), CostVector([1.0, 1.0]))
        probe = weakref.ref(plan)
        arena, plan_id = plan.arena, plan.plan_id
        del plan
        gc.collect()
        assert probe() is None, "default arena kept a dropped plan alive"
        # The row stays addressable and a fresh canonical handle materializes.
        rematerialized = arena.plan(plan_id)
        assert rematerialized.table == "gc_probe"
        assert rematerialized is arena.plan(plan_id)

    def test_identity_preserved_while_handle_is_held(self):
        plan = ScanPlan("held", ScanOperator("seq_scan"), CostVector([1.0, 1.0]))
        assert plan.arena.plan(plan.plan_id) is plan

    def test_join_children_collectable_after_tree_dropped(self):
        import gc
        import weakref

        left = ScanPlan("l", ScanOperator("seq_scan"), CostVector([1.0]))
        right = ScanPlan("r", ScanOperator("seq_scan"), CostVector([1.0]))
        join = JoinPlan(left, right, JoinOperator("hash_join"), CostVector([2.0]))
        probes = [weakref.ref(obj) for obj in (left, right, join)]
        del left, right, join
        gc.collect()
        assert all(probe() is None for probe in probes)


class TestStats:
    def test_byte_estimate_grows_with_allocation(self):
        arena = PlanArena(3)
        empty = arena.stats().approx_bytes
        for _ in range(10):
            scan_id(arena, "t", (1.0, 2.0, 3.0))
        assert arena.stats().approx_bytes > empty

    def test_interning_counts(self):
        arena = PlanArena(1)
        scan_id(arena, "a", (1.0,))
        scan_id(arena, "b", (1.0,))
        stats = arena.stats()
        assert stats.table_sets_interned == 2
        assert stats.operators_interned == 1
        assert stats.orders_interned == 0


class TestCombineBlockEquivalence:
    """The batched factory path must equal the scalar path bit for bit."""

    @pytest.fixture
    def factory(self):
        return resolve_request(
            OptimizeRequest(workload="gen:star:3:5", algorithm="iama", scale="tiny")
        ).factory

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_combine_block_matches_join_plan(self, factory, backend):
        arena = factory.arena
        tables = sorted(
            {
                table
                for table in resolve_request(
                    OptimizeRequest(
                        workload="gen:star:3:5", algorithm="iama", scale="tiny"
                    )
                ).query.tables
            }
        )
        left_ids = factory.scan_block(tables[0])
        right_ids = factory.scan_block(tables[1])
        operators = factory.join_operators()
        triples = [
            (left_id, right_id, k)
            for left_id in left_ids
            for right_id in right_ids
            for k in range(len(operators))
        ]
        with kernel.use_backend(backend):
            block_ids = factory.combine_block(
                arena.tables_of(left_ids[0]),
                arena.tables_of(right_ids[0]),
                triples,
                operators,
            )
            scalar_plans = [
                factory.join_plan(
                    arena.plan(left_id), arena.plan(right_id), operators[k]
                )
                for left_id, right_id, k in triples
            ]
        for block_id, scalar in zip(block_ids, scalar_plans):
            assert arena.cost_row(block_id) == tuple(scalar.cost)
            assert arena.order_of(block_id) == scalar.interesting_order
            assert arena.operator_of(block_id) == scalar.operator
            assert arena.left_of(block_id) == arena.left_of(scalar.plan_id)
            assert arena.right_of(block_id) == arena.right_of(scalar.plan_id)

    def test_combine_block_rejects_overlapping_splits(self, factory):
        arena = factory.arena
        table = sorted(
            resolve_request(
                OptimizeRequest(workload="gen:star:3:5", algorithm="iama", scale="tiny")
            ).query.tables
        )[0]
        ids = factory.scan_block(table)
        with pytest.raises(ValueError):
            factory.combine_block(
                arena.tables_of(ids[0]),
                arena.tables_of(ids[0]),
                [(ids[0], ids[0], 0)],
                factory.join_operators(),
            )

    def test_combine_block_empty(self, factory):
        assert (
            factory.combine_block(
                frozenset({"a"}), frozenset({"b"}), [], factory.join_operators()
            )
            == []
        )
