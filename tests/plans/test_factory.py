"""Unit tests for :mod:`repro.plans.factory`."""

import pytest

from repro.plans.operators import JoinOperator
from repro.plans.plan import JoinPlan, ScanPlan


class TestScanPlans:
    def test_scan_plans_cover_all_registry_variants(self, two_table_factory):
        plans = two_table_factory.scan_plans("orders")
        rows = two_table_factory.estimator.base_cardinality("orders")
        expected = len(two_table_factory.operators.scan_operators(rows))
        assert len(plans) == expected
        assert all(isinstance(plan, ScanPlan) for plan in plans)

    def test_scan_plan_costs_differ_across_variants(self, two_table_factory):
        plans = two_table_factory.scan_plans("orders")
        costs = {plan.cost for plan in plans}
        assert len(costs) > 1

    def test_counters_track_scans(self, two_table_factory):
        before = two_table_factory.counters.scan_plans_built
        two_table_factory.scan_plans("orders")
        assert two_table_factory.counters.scan_plans_built > before


class TestJoinPlans:
    def test_join_plan_combines_tables_and_costs(self, two_table_factory):
        left = two_table_factory.scan_plans("customers")[0]
        right = two_table_factory.scan_plans("orders")[0]
        plan = two_table_factory.join_plan(left, right, JoinOperator("hash_join"))
        assert isinstance(plan, JoinPlan)
        assert plan.tables == frozenset({"customers", "orders"})
        for index in range(len(plan.cost)):
            assert plan.cost[index] >= left.cost[index] - 1e-12
            assert plan.cost[index] >= right.cost[index] - 1e-12

    def test_join_plans_enumerate_all_operators(self, two_table_factory):
        left = two_table_factory.scan_plans("customers")[0]
        right = two_table_factory.scan_plans("orders")[0]
        plans = two_table_factory.join_plans(left, right)
        assert len(plans) == len(two_table_factory.join_operators())

    def test_merge_join_sets_interesting_order(self, chain_query):
        from tests.conftest import build_factory
        from repro.plans.operators import OperatorRegistry

        factory = build_factory(
            chain_query,
            registry=OperatorRegistry(
                parallelism_levels=(1,),
                sampling_rates=(0.5,),
                join_algorithms=("hash_join", "sort_merge_join"),
            ),
        )
        left = factory.scan_plans("customers")[0]
        right = factory.scan_plans("orders")[0]
        merge = factory.join_plan(left, right, JoinOperator("sort_merge_join"))
        hash_join = factory.join_plan(left, right, JoinOperator("hash_join"))
        assert merge.interesting_order is not None
        assert hash_join.interesting_order is None

    def test_counters_track_joins(self, two_table_factory):
        left = two_table_factory.scan_plans("customers")[0]
        right = two_table_factory.scan_plans("orders")[0]
        before = two_table_factory.counters.join_plans_built
        two_table_factory.join_plans(left, right)
        assert two_table_factory.counters.join_plans_built > before

    def test_counter_snapshot_is_independent(self, two_table_factory):
        snapshot = two_table_factory.counters.snapshot()
        two_table_factory.scan_plans("orders")
        assert two_table_factory.counters.scan_plans_built > snapshot.scan_plans_built

    def test_total_plans_built(self, two_table_factory):
        two_table_factory.scan_plans("orders")
        counters = two_table_factory.counters
        assert counters.total_plans_built == (
            counters.scan_plans_built + counters.join_plans_built
        )
