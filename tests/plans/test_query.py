"""Unit tests for :mod:`repro.plans.query`."""

import math

import pytest

from repro.catalog.cardinality import JoinGraph, JoinPredicate
from repro.plans.query import Query, proper_splits, table_subsets


class TestQuery:
    def test_tables_and_count(self, chain_query):
        assert chain_query.tables == frozenset({"customers", "orders", "items"})
        assert chain_query.table_count == 3
        assert len(chain_query) == 3

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Query("", JoinGraph(tables=["a"]))

    def test_subsets_of_size(self, chain_query):
        pairs = list(chain_query.subsets_of_size(2))
        assert len(pairs) == 3
        assert all(len(subset) == 2 for subset in pairs)

    def test_subsets_ordered_by_cardinality(self, chain_query):
        sizes = [len(subset) for subset in chain_query.subsets()]
        assert sizes == sorted(sizes)
        assert len(sizes) == 7  # 2^3 - 1 non-empty subsets

    def test_splits_delegate(self, chain_query):
        splits = list(chain_query.splits(chain_query.tables))
        assert len(splits) == 3

    def test_connectivity_delegates_to_join_graph(self, chain_query):
        assert chain_query.is_connected({"customers", "orders"})
        assert not chain_query.is_connected({"customers", "items"})


class TestTableSubsets:
    def test_counts_match_binomials(self):
        tables = ["a", "b", "c", "d"]
        subsets = list(table_subsets(tables))
        assert len(subsets) == 2 ** 4 - 1
        assert len(list(table_subsets(tables, min_size=2))) == 2 ** 4 - 1 - 4

    def test_deduplicates_input(self):
        assert len(list(table_subsets(["a", "a", "b"]))) == 3

    def test_subsets_are_frozensets(self):
        assert all(isinstance(s, frozenset) for s in table_subsets(["a", "b"]))


class TestProperSplits:
    def test_split_count_formula(self):
        # 2^(k-1) - 1 unordered splits for a set of k tables.
        for k in range(2, 6):
            tables = frozenset(f"t{i}" for i in range(k))
            splits = list(proper_splits(tables))
            assert len(splits) == 2 ** (k - 1) - 1

    def test_splits_partition_the_set(self):
        tables = frozenset({"a", "b", "c"})
        for left, right in proper_splits(tables):
            assert left | right == tables
            assert not left & right
            assert left and right

    def test_each_unordered_split_appears_once(self):
        tables = frozenset({"a", "b", "c", "d"})
        seen = set()
        for left, right in proper_splits(tables):
            key = frozenset({left, right})
            assert key not in seen
            seen.add(key)

    def test_single_table_has_no_splits(self):
        assert list(proper_splits(frozenset({"a"}))) == []
