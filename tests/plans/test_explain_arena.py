"""Explain output for arena-backed plans vs the pre-refactor tree rendering.

``explain_plan`` used to walk heap plan trees whose nodes carried their own
tables/cost/operator attributes.  Arena-backed plans reconstruct the tree from
id columns instead; this suite pins the output to the pre-refactor format with
an independent *reference renderer* that formats straight from the raw arena
columns (never through ``Plan`` handles), replicating the original
``_explain_into`` algorithm line for line.  Properties:

* for every frontier plan of every generated topology (chain/star/cycle/
  clique), ``explain_plan`` equals the reference rendering,
* ``explain_plan_id`` equals ``explain_plan`` for the same plan,
* randomly composed plan trees (hypothesis) render identically too.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import OptimizeRequest, open_session
from repro.costs.metrics import paper_metric_set
from repro.costs.vector import CostVector
from repro.plans.arena import KIND_JOIN, KIND_SCAN
from repro.plans.explain import explain_plan, explain_plan_id
from repro.plans.operators import JoinOperator, ScanOperator
from repro.plans.plan import JoinPlan, ScanPlan

TOPOLOGIES = ("chain", "star", "cycle", "clique")


def reference_explain(arena, plan_id, metric_set, indent="  "):
    """The pre-refactor rendering, computed from raw arena columns only."""
    lines = []

    def render(plan_id, depth):
        row = arena.cost_row(plan_id)
        costs = ", ".join(
            f"{name}={value:.4g}" for name, value in zip(metric_set.names, row)
        )
        prefix = indent * depth
        kind = arena.kind_of(plan_id)
        operator = arena.operator_of(plan_id)
        if kind == KIND_SCAN:
            table = next(iter(arena.tables_of(plan_id)))
            lines.append(f"{prefix}{operator.label} on {table}  [{costs}]")
            return
        assert kind == KIND_JOIN
        tables = ",".join(sorted(arena.tables_of(plan_id)))
        order = arena.order_of(plan_id)
        order_suffix = f", order={order}" if order else ""
        lines.append(
            f"{prefix}{operator.label} joining {{{tables}}}  [{costs}]{order_suffix}"
        )
        render(arena.left_of(plan_id), depth + 1)
        render(arena.right_of(plan_id), depth + 1)

    render(plan_id, 0)
    return "\n".join(lines)


class TestExplainMatchesPreRefactorRendering:
    def test_all_topology_frontier_plans(self):
        for topology in TOPOLOGIES:
            for seed in (0, 1):
                session = open_session(
                    OptimizeRequest(
                        workload=f"gen:{topology}:4:{seed}",
                        algorithm="iama",
                        scale="tiny",
                        levels=3,
                    )
                )
                result = session.run()
                assert result.frontier_size > 0
                optimizer = session.driver.optimizer
                metric_set = session.driver.factory.metric_set
                arena = optimizer.arena
                bounds = metric_set.unbounded_vector()
                plans = optimizer.frontier(bounds, optimizer.schedule.max_resolution)
                assert plans
                for plan in plans:
                    expected = reference_explain(arena, plan.plan_id, metric_set)
                    assert explain_plan(plan, metric_set) == expected
                    assert explain_plan_id(arena, plan.plan_id, metric_set) == expected

    @settings(max_examples=50, deadline=None)
    @given(
        data=st.data(),
        leaf_count=st.integers(min_value=1, max_value=6),
    )
    def test_random_plan_trees(self, data, leaf_count):
        metric_set = paper_metric_set()
        dims = metric_set.dimensions
        cost = st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=dims,
            max_size=dims,
        )
        nodes = [
            ScanPlan(
                f"t{i}",
                ScanOperator("seq_scan"),
                CostVector(data.draw(cost)),
            )
            for i in range(leaf_count)
        ]
        algorithms = ("hash_join", "sort_merge_join", "nested_loop_join")
        while len(nodes) > 1:
            left = nodes.pop(data.draw(st.integers(0, len(nodes) - 1)))
            right = nodes.pop(data.draw(st.integers(0, len(nodes) - 1)))
            algorithm = data.draw(st.sampled_from(algorithms))
            order = (
                "sorted:" + ",".join(sorted(left.tables))
                if algorithm == "sort_merge_join"
                else None
            )
            nodes.append(
                JoinPlan(
                    left,
                    right,
                    JoinOperator(algorithm),
                    CostVector(data.draw(cost)),
                    order,
                )
            )
        root = nodes[0]
        expected = reference_explain(root.arena, root.plan_id, metric_set)
        assert explain_plan(root, metric_set) == expected
        assert explain_plan_id(root.arena, root.plan_id, metric_set) == expected
