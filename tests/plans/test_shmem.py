"""Shared-memory column vectors and shm-backed plan arenas.

Covers the :mod:`repro.shmem` vector surface (growth, pickling-as-attach,
the ownership protocol), the arena mode switch, and the guarantee the whole
tier rests on: kernel results over shm-backed cost matrices are bit-identical
to the same computation over process-local ``array`` columns, for every
backend.
"""

import pickle
import random

import pytest

from repro import kernel
from repro.costs.matrix import CostMatrix
from repro.plans.arena import (
    ARENA_MODES,
    PlanArena,
    arena_mode,
    default_arena,
    set_arena_mode,
    use_arena_mode,
)
from repro.shmem import (
    MIN_CAPACITY,
    SEGMENT_PREFIX,
    ShmStorage,
    ShmVector,
    active_segments,
)


# ----------------------------------------------------------------------
# ShmVector surface
# ----------------------------------------------------------------------
class TestShmVector:
    def test_array_surface(self):
        vector = ShmVector("d", [1.5, 2.5, 3.5])
        try:
            assert len(vector) == 3
            assert vector[0] == 1.5
            assert vector[-1] == 3.5
            vector[1] = 9.0
            assert list(vector) == [1.5, 9.0, 3.5]
            vector.append(4.5)
            assert vector.tolist() == [1.5, 9.0, 3.5, 4.5]
            with pytest.raises(IndexError):
                vector[4]
            with pytest.raises(IndexError):
                vector[-5] = 0.0
        finally:
            vector.release()

    def test_rejects_unknown_typecode(self):
        with pytest.raises(ValueError, match="typecode"):
            ShmVector("f")

    def test_growth_preserves_contents_and_reallocates(self):
        vector = ShmVector("q")
        try:
            values = list(range(MIN_CAPACITY * 3 + 7))
            first_segment = vector.name
            vector.extend(values)
            assert vector.tolist() == values
            assert vector.name != first_segment  # grew into a fresh segment
            assert vector.capacity >= len(values)
            assert vector.allocated_bytes >= len(values) * vector.itemsize
        finally:
            vector.release()
        assert active_segments() == ()

    def test_buffer_hooks(self):
        vector = ShmVector("d", [1.0, 2.0])
        try:
            address, length = vector.buffer_info()
            assert address != 0 and length == 2
            view = vector.memory()
            assert view.tolist() == [1.0, 2.0]
            view.release()  # must not pin the segment
        finally:
            vector.release()

    def test_pickle_attaches_by_name(self):
        vector = ShmVector("d", [1.0, 2.0, 3.0])
        try:
            blob = pickle.dumps(vector)
            # The payload is (name, typecode, length) — never the columns.
            assert len(blob) < 200
            clone = pickle.loads(blob)
            assert clone.name == vector.name
            assert not clone.is_owner
            assert clone.tolist() == [1.0, 2.0, 3.0]
            # Same pages: a write through one side is visible on the other.
            vector[0] = 42.0
            assert clone[0] == 42.0
            clone.release()
        finally:
            vector.release()

    def test_release_is_idempotent_and_unlinks(self):
        vector = ShmVector("b", [1, 0, 1])
        name = vector.name
        assert name.startswith(SEGMENT_PREFIX)
        assert name in active_segments()
        vector.release()
        vector.release()
        assert name not in active_segments()

    def test_disown_adopt_round_trip(self):
        vector = ShmVector("d", [1.0])
        clone = pickle.loads(pickle.dumps(vector))
        vector.disown()
        assert not vector.is_owner
        clone.adopt()
        assert clone.is_owner
        vector.release()  # non-owner release: closes, must not unlink
        assert clone.name in active_segments()
        clone.release()
        assert active_segments() == ()

    def test_storage_factory(self):
        storage = ShmStorage()
        vector = storage.vector("q", [7, 8])
        try:
            assert isinstance(vector, ShmVector)
            assert vector.tolist() == [7, 8]
        finally:
            vector.release()


# ----------------------------------------------------------------------
# Kernel equivalence over shm columns
# ----------------------------------------------------------------------
def _backends():
    names = ["python", "numpy"]
    if kernel.native_available():
        names.append("native")
    return names


class TestKernelEquivalence:
    def _matrices(self, rows):
        local = CostMatrix(3)
        shared = CostMatrix(3, storage=ShmStorage())
        for row in rows:
            local.append(row)
            shared.append(row)
        return local, shared

    @pytest.mark.parametrize("backend", _backends())
    def test_dominance_and_pareto_match_local(self, backend):
        rng = random.Random(11)
        rows = [
            tuple(rng.uniform(0.0, 10.0) for _ in range(3)) for _ in range(97)
        ]
        local, shared = self._matrices(rows)
        local.kill(5)
        shared.kill(5)
        previous = kernel.use_backend(backend)
        try:
            probe = rows[17]
            assert shared.pareto_mask() == local.pareto_mask()
            assert shared.first_dominating(probe) == local.first_dominating(probe)
            assert shared.any_dominating(probe) == local.any_dominating(probe)
            assert shared.dominated_by_slots(probe) == local.dominated_by_slots(probe)
        finally:
            kernel.use_backend(previous)
        for column in (*shared.buffers(),):
            column.release()

    def test_compact_reallocates_shm_columns(self):
        rows = [(float(i), 1.0, 2.0) for i in range(12)]
        local, shared = self._matrices(rows)
        for slot in range(0, 12, 2):
            local.kill(slot)
            shared.kill(slot)
        local.compact()
        shared.compact()
        assert [tuple(shared.row(s)) for s in shared.alive_slots()] == [
            tuple(local.row(s)) for s in local.alive_slots()
        ]
        for column in shared.buffers():
            column.release()
        assert active_segments() == ()


# ----------------------------------------------------------------------
# Arena modes
# ----------------------------------------------------------------------
class TestArenaModes:
    def test_mode_switch_and_validation(self):
        assert arena_mode() in ARENA_MODES
        with pytest.raises(ValueError, match="arena mode"):
            set_arena_mode("bogus")
        with use_arena_mode("shm"):
            assert arena_mode() == "shm"
        assert arena_mode() == "local"

    def test_shm_arena_stats_and_lifecycle(self):
        arena = PlanArena(3, mode="shm")
        assert arena.is_shared
        arena.allocate_generic(frozenset({"a"}), (1.0, 2.0, 3.0))
        stats = arena.stats()
        assert stats.arena_mode == "shm"
        # Exact accounting: shared_bytes is the allocated segment sizes.
        assert stats.shared_bytes > 0
        assert stats.approx_bytes == stats.shared_bytes
        names = arena.segment_names()
        assert len(names) == len(set(names)) == 10  # 3 cost + alive + 6 ids
        assert set(names) <= set(active_segments())
        arena.release_shared()
        assert active_segments() == ()

    def test_local_arena_reports_no_shared_bytes(self):
        arena = PlanArena(3)
        arena.allocate_generic(frozenset({"a"}), (1.0, 2.0, 3.0))
        stats = arena.stats()
        assert stats.arena_mode == "local"
        assert stats.shared_bytes == 0
        assert arena.segment_names() == ()
        arena.release_shared()  # no-op, must not raise

    def test_mode_default_reaches_new_arenas(self):
        with use_arena_mode("shm"):
            arena = PlanArena(2)
        try:
            assert arena.is_shared
        finally:
            arena.release_shared()
        assert not PlanArena(2).is_shared

    def test_default_arena_pinned_local(self):
        with use_arena_mode("shm"):
            assert not default_arena(3).is_shared

    def test_shm_arena_pickles_as_attachment(self):
        with use_arena_mode("shm"):
            arena = PlanArena(3)
        try:
            for i in range(50):
                arena.allocate_generic(
                    frozenset({f"t{i}"}), (float(i), 1.0, 2.0)
                )
            blob = pickle.dumps(arena)
            clone = pickle.loads(blob)
            assert [clone.cost_row(i) for i in (1, 25, 50)] == [
                arena.cost_row(i) for i in (1, 25, 50)
            ]
            assert clone.segment_names() == arena.segment_names()
        finally:
            arena.release_shared()
