"""Differential tests: the anytime optimizer against the exhaustive baseline.

At a target precision of ``alpha_T -> 1`` the alpha-approximate pruning of the
incremental anytime optimizer degenerates to exact dominance pruning, so the
non-dominated subset of its final frontier must equal the exact Pareto frontier
computed by the exhaustive DP (:mod:`repro.baselines.exhaustive`) over the
identical search space -- not merely cover it within a factor.

The suite sweeps all four generator topologies (chain, star, cycle, clique),
several seeds, several metric counts and two query sizes.  Plan costs are
compared as exact cost-vector sets: both algorithms cost identical plan trees
through the same factory construction, so agreement must be bit-exact.
"""

import pytest

from repro.baselines.exhaustive import ExhaustiveParetoOptimizer
from repro.catalog.cardinality import CardinalityEstimator
from repro.core.optimizer import IncrementalOptimizer
from repro.core.resolution import ResolutionSchedule
from repro.costs.metrics import extended_metric_set
from repro.costs.model import MultiObjectiveCostModel
from repro.costs.pareto import pareto_filter
from repro.plans.factory import PlanFactory
from repro.plans.operators import OperatorRegistry
from repro.workloads.generator import Topology, generated_workload

#: Just above 1.0 (the schedule requires alpha_T > 1): approximate dominance
#: collapses to exact dominance unless two distinct costs differ by < 1e-9
#: relatively, which the seeded workloads below never do.
NEAR_EXACT = 1.0 + 1e-9


def make_factory(generated, metric_count: int) -> PlanFactory:
    registry = OperatorRegistry(
        parallelism_levels=(1, 2),
        sampling_rates=(0.1,),
        small_table_rows=500,
        join_algorithms=("hash_join", "nested_loop_join"),
    )
    estimator = CardinalityEstimator(
        generated.statistics, generated.query.join_graph
    )
    return PlanFactory(
        estimator,
        MultiObjectiveCostModel(extended_metric_set(metric_count)),
        registry,
    )


def anytime_frontier_costs(generated, metric_count: int, levels: int):
    """Non-dominated cost set after a full anytime sweep at ~exact precision."""
    schedule = ResolutionSchedule(
        levels=levels, target_precision=NEAR_EXACT, precision_step=0.3
    )
    factory = make_factory(generated, metric_count)
    optimizer = IncrementalOptimizer(generated.query, factory, schedule)
    bounds = factory.metric_set.unbounded_vector()
    for resolution in range(schedule.levels):
        optimizer.optimize(bounds, resolution)
    frontier = optimizer.frontier(bounds, schedule.max_resolution)
    return {cost.values for cost in pareto_filter([p.cost for p in frontier])}


def exhaustive_frontier_costs(generated, metric_count: int):
    exact = ExhaustiveParetoOptimizer(
        generated.query, make_factory(generated, metric_count)
    )
    exact.optimize()
    return {plan.cost.values for plan in exact.frontier()}


@pytest.mark.parametrize("topology", list(Topology), ids=lambda t: t.value)
@pytest.mark.parametrize("seed", [0, 7, 13])
@pytest.mark.parametrize("metric_count", [2, 3])
@pytest.mark.parametrize("table_count", [2, 3])
def test_final_frontier_matches_exhaustive(topology, seed, metric_count, table_count):
    generated = generated_workload(seed, table_count, topology)
    approx = anytime_frontier_costs(generated, metric_count, levels=2)
    exact = exhaustive_frontier_costs(generated, metric_count)
    assert approx == exact


@pytest.mark.parametrize("seed", [0, 7])
def test_four_table_chain_matches_exhaustive(seed):
    """A deeper DP (four tables, three resolution levels) stays exact too."""
    generated = generated_workload(seed, 4, Topology.CHAIN)
    approx = anytime_frontier_costs(generated, metric_count=3, levels=3)
    exact = exhaustive_frontier_costs(generated, metric_count=3)
    assert approx == exact


@pytest.mark.parametrize("topology", [Topology.CYCLE, Topology.CLIQUE], ids=lambda t: t.value)
def test_coarse_resolutions_still_cover_exact_frontier(topology):
    """Sharpness check: at a *coarse* precision the anytime frontier need not
    equal the exact one, but it must still cover it within the Theorem-2
    guarantee -- the equality above is a real statement about alpha -> 1."""
    from repro.costs.pareto import approximation_error

    generated = generated_workload(3, 3, topology)
    schedule = ResolutionSchedule(levels=1, target_precision=1.5, precision_step=0.0)
    factory = make_factory(generated, 3)
    optimizer = IncrementalOptimizer(generated.query, factory, schedule)
    bounds = factory.metric_set.unbounded_vector()
    optimizer.optimize(bounds, 0)
    approx = [p.cost for p in optimizer.frontier(bounds, 0)]
    assert approx, "coarse run must still produce a frontier"

    exact_optimizer = ExhaustiveParetoOptimizer(
        generated.query, make_factory(generated, 3)
    )
    exact_optimizer.optimize()
    exact = [plan.cost for plan in exact_optimizer.frontier()]
    guarantee = schedule.guaranteed_precision(generated.query.table_count)
    assert approximation_error(approx, exact) <= guarantee + 1e-9
