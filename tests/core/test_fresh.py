"""Unit tests for :mod:`repro.core.fresh`."""

import pytest

from repro.core.fresh import FreshnessRegistry, fresh_pairs
from repro.costs.vector import CostVector
from repro.plans.operators import JoinOperator, ScanOperator
from repro.plans.plan import ScanPlan


def scan(table):
    return ScanPlan(table, ScanOperator("seq_scan"), CostVector([1.0, 1.0]))


class TestFreshnessRegistry:
    def test_first_registration_is_fresh(self):
        registry = FreshnessRegistry()
        assert registry.register(scan("a"), scan("b"), JoinOperator("hash_join"))

    def test_second_registration_is_stale(self):
        registry = FreshnessRegistry()
        a, b = scan("a"), scan("b")
        operator = JoinOperator("hash_join")
        assert registry.register(a, b, operator)
        assert not registry.register(a, b, operator)

    def test_registration_is_symmetric(self):
        registry = FreshnessRegistry()
        a, b = scan("a"), scan("b")
        operator = JoinOperator("hash_join")
        registry.register(a, b, operator)
        assert not registry.register(b, a, operator)

    def test_different_operator_is_fresh(self):
        registry = FreshnessRegistry()
        a, b = scan("a"), scan("b")
        registry.register(a, b, JoinOperator("hash_join"))
        assert registry.register(a, b, JoinOperator("nested_loop_join"))

    def test_is_fresh_has_no_side_effect(self):
        registry = FreshnessRegistry()
        a, b = scan("a"), scan("b")
        operator = JoinOperator("hash_join")
        assert registry.is_fresh(a, b, operator)
        assert registry.is_fresh(a, b, operator)
        assert len(registry) == 0

    def test_counters(self):
        registry = FreshnessRegistry()
        a, b = scan("a"), scan("b")
        operator = JoinOperator("hash_join")
        registry.register(a, b, operator)
        registry.register(a, b, operator)
        assert registry.counters.fresh_combinations == 1
        assert registry.counters.repeated_combinations == 1
        assert registry.counters.total_checks == 2

    def test_clear(self):
        registry = FreshnessRegistry()
        a, b = scan("a"), scan("b")
        registry.register(a, b, JoinOperator("hash_join"))
        registry.clear()
        assert len(registry) == 0
        assert registry.register(a, b, JoinOperator("hash_join"))


class TestFreshPairs:
    def test_empty_operands_yield_nothing(self):
        assert list(fresh_pairs([], [scan("b")])) == []
        assert list(fresh_pairs([scan("a")], [])) == []

    def test_unknown_delta_enumerates_all_pairs(self):
        left = [scan("a1"), scan("a2")]
        right = [scan("b1"), scan("b2"), scan("b3")]
        pairs = list(fresh_pairs(left, right))
        assert len(pairs) == 6

    def test_delta_sets_skip_old_old_pairs(self):
        old_left, new_left = scan("a1"), scan("a2")
        old_right, new_right = scan("b1"), scan("b2")
        pairs = set(
            (l.plan_id, r.plan_id)
            for l, r in fresh_pairs(
                [old_left, new_left],
                [old_right, new_right],
                left_delta=[new_left],
                right_delta=[new_right],
            )
        )
        assert (old_left.plan_id, old_right.plan_id) not in pairs
        assert (new_left.plan_id, old_right.plan_id) in pairs
        assert (old_left.plan_id, new_right.plan_id) in pairs
        assert (new_left.plan_id, new_right.plan_id) in pairs
        assert len(pairs) == 3

    def test_empty_deltas_yield_nothing(self):
        left = [scan("a")]
        right = [scan("b")]
        assert list(fresh_pairs(left, right, left_delta=[], right_delta=[])) == []

    def test_full_delta_enumerates_everything(self):
        left = [scan("a1"), scan("a2")]
        right = [scan("b1")]
        pairs = list(fresh_pairs(left, right, left_delta=left, right_delta=right))
        assert len(pairs) == 2

    def test_pairs_are_unique(self):
        left = [scan("a1"), scan("a2"), scan("a3")]
        right = [scan("b1"), scan("b2")]
        pairs = list(
            fresh_pairs(left, right, left_delta=left[:1], right_delta=right[:1])
        )
        assert len(pairs) == len(set((l.plan_id, r.plan_id) for l, r in pairs))
