"""Property-based test: the anytime frontier never regresses across timeslices.

The point of an anytime optimizer is that interrupting it later can only give
better answers.  Concretely, across the invocations of a resolution sweep
(the paper's non-interactive protocol), every cost tradeoff visualized after
timeslice ``i`` must still be *dominated-or-present* after timeslice ``i+1``:
either the exact cost vector is still in the frontier, or some newly revealed
vector weakly dominates it.  A violation would mean the user watched a
previously offered tradeoff silently disappear without replacement.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.catalog.cardinality import CardinalityEstimator
from repro.core.control import AnytimeMOQO
from repro.core.resolution import ResolutionSchedule
from repro.costs.dominance import dominates
from repro.costs.metrics import paper_metric_set
from repro.costs.model import MultiObjectiveCostModel
from repro.plans.factory import PlanFactory
from repro.plans.operators import OperatorRegistry
from repro.workloads.generator import SyntheticWorkloadGenerator, Topology


def make_factory(generated) -> PlanFactory:
    registry = OperatorRegistry(
        parallelism_levels=(1, 2),
        sampling_rates=(0.1,),
        small_table_rows=500,
        join_algorithms=("hash_join", "nested_loop_join"),
    )
    estimator = CardinalityEstimator(generated.statistics, generated.query.join_graph)
    return PlanFactory(estimator, MultiObjectiveCostModel(paper_metric_set()), registry)


@st.composite
def synthetic_queries(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    table_count = draw(st.integers(min_value=1, max_value=4))
    topology = draw(st.sampled_from(list(Topology)))
    generator = SyntheticWorkloadGenerator(seed=seed, min_rows=100, max_rows=200_000)
    return generator.generate(table_count, topology)


@st.composite
def schedules(draw):
    levels = draw(st.integers(min_value=2, max_value=5))
    target = draw(st.floats(min_value=1.005, max_value=1.2))
    step = draw(st.floats(min_value=0.0, max_value=0.5))
    return ResolutionSchedule(levels=levels, target_precision=target, precision_step=step)


def covered(cost, frontier_costs) -> bool:
    """Dominated-or-present: some later vector is at least as good everywhere."""
    return any(dominates(other, cost) for other in frontier_costs)


query_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestFrontierMonotonicity:
    @query_settings
    @given(synthetic_queries(), schedules())
    def test_every_timeslice_preserves_earlier_tradeoffs(self, generated, schedule):
        loop = AnytimeMOQO(generated.query, make_factory(generated), schedule)
        results = loop.run_resolution_sweep()
        assert results, "the sweep must produce at least one timeslice"
        for earlier, later in zip(results, results[1:]):
            later_costs = later.frontier_costs
            for cost in earlier.frontier_costs:
                assert covered(cost, later_costs), (
                    f"cost {cost} visualized at iteration {earlier.iteration} "
                    f"is neither present nor dominated at iteration "
                    f"{later.iteration}"
                )

    @query_settings
    @given(synthetic_queries(), schedules())
    def test_final_frontier_covers_every_timeslice(self, generated, schedule):
        """Transitivity spot check straight against the final frontier."""
        loop = AnytimeMOQO(generated.query, make_factory(generated), schedule)
        results = loop.run_resolution_sweep()
        final_costs = results[-1].frontier_costs
        for result in results[:-1]:
            for cost in result.frontier_costs:
                assert covered(cost, final_costs)
