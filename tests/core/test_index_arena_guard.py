"""Regression tests: PlanIndex must not confuse ids from different arenas.

Plan ids are dense *per arena*, so a handle from a foreign arena can carry an
id that happens to be registered in an index.  The object-level API must treat
such handles as "not present" (or refuse the operation) instead of silently
reading or removing the wrong plan.
"""

import pytest

from repro.core.index import PlanIndex
from repro.costs.vector import CostVector
from repro.plans.arena import PlanArena
from repro.plans.operators import ScanOperator


def make_plan(arena, cost=(1.0, 1.0)):
    return arena.plan(
        arena.allocate_scan("t", ScanOperator("seq_scan"), CostVector(cost))
    )


class TestForeignArenaHandles:
    def setup_method(self):
        self.arena_a = PlanArena(2)
        self.arena_b = PlanArena(2)
        self.plan_a = make_plan(self.arena_a)
        self.plan_b = make_plan(self.arena_b)  # same plan_id, different arena
        assert self.plan_a.plan_id == self.plan_b.plan_id
        self.index = PlanIndex()
        self.index.insert(self.plan_a, 0)

    def test_contains_rejects_foreign_handle(self):
        assert self.plan_a in self.index
        assert self.plan_b not in self.index

    def test_discard_does_not_remove_the_wrong_plan(self):
        assert self.index.discard(self.plan_b) is False
        assert len(self.index) == 1
        assert self.plan_a in self.index

    def test_remove_raises_for_foreign_handle(self):
        with pytest.raises(KeyError):
            self.index.remove(self.plan_b)
        assert self.plan_a in self.index

    def test_resolution_of_raises_for_foreign_handle(self):
        with pytest.raises(KeyError):
            self.index.resolution_of(self.plan_b)

    def test_insert_rejects_foreign_handle(self):
        with pytest.raises(ValueError, match="different arenas"):
            self.index.insert(self.plan_b, 0)
