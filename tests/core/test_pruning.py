"""Unit tests for :mod:`repro.core.pruning` (procedure Prune, Algorithm 3)."""

import pytest

from repro.core.index import PlanIndex
from repro.core.pruning import PruneOutcome, order_covers, prune
from repro.costs.vector import CostVector
from repro.plans.operators import ScanOperator
from repro.plans.plan import ScanPlan


def make_plan(cost, order=None):
    return ScanPlan("t", ScanOperator("seq_scan"), CostVector(cost), interesting_order=order)


@pytest.fixture
def indexes():
    return PlanIndex(), PlanIndex()


UNBOUNDED = CostVector.infinite(2)


def run_prune(indexes, plan, bounds=UNBOUNDED, resolution=0, alpha=1.1, max_resolution=2, **kwargs):
    result_index, candidate_index = indexes
    return prune(
        result_index=result_index,
        candidate_index=candidate_index,
        bounds=bounds,
        resolution=resolution,
        alpha=alpha,
        max_resolution=max_resolution,
        plan=plan,
        **kwargs,
    )


class TestInsertion:
    def test_first_plan_is_inserted(self, indexes):
        outcome = run_prune(indexes, make_plan([1, 1]))
        assert outcome is PruneOutcome.INSERTED
        assert outcome.became_result
        assert len(indexes[0]) == 1

    def test_incomparable_plan_is_inserted(self, indexes):
        run_prune(indexes, make_plan([1, 5]))
        outcome = run_prune(indexes, make_plan([5, 1]))
        assert outcome is PruneOutcome.INSERTED
        assert len(indexes[0]) == 2

    def test_plan_registered_at_current_resolution(self, indexes):
        plan = make_plan([1, 1])
        run_prune(indexes, plan, resolution=1)
        assert indexes[0].resolution_of(plan) == 1

    def test_dominated_result_plans_are_not_discarded(self, indexes):
        worse = make_plan([5, 5])
        run_prune(indexes, worse)
        better = make_plan([1, 1])
        run_prune(indexes, better)
        # Section 4.2: result plans are never removed, even when dominated.
        assert worse in indexes[0]
        assert better in indexes[0]


class TestApproximationDeferral:
    def test_approximated_plan_becomes_candidate_for_next_resolution(self, indexes):
        run_prune(indexes, make_plan([1, 1]), alpha=1.2)
        similar = make_plan([1.1, 1.1])
        outcome = run_prune(indexes, similar, alpha=1.2)
        assert outcome is PruneOutcome.DEFERRED_TO_HIGHER_RESOLUTION
        assert outcome.became_candidate
        assert indexes[1].resolution_of(similar) == 1

    def test_approximated_at_max_resolution_is_discarded(self, indexes):
        run_prune(indexes, make_plan([1, 1]), resolution=2, alpha=1.2)
        outcome = run_prune(indexes, make_plan([1.1, 1.1]), resolution=2, alpha=1.2, max_resolution=2)
        assert outcome is PruneOutcome.DISCARDED
        assert len(indexes[1]) == 0

    def test_clearly_better_plan_is_not_deferred(self, indexes):
        run_prune(indexes, make_plan([10, 10]), alpha=1.2)
        outcome = run_prune(indexes, make_plan([1, 1]), alpha=1.2)
        assert outcome is PruneOutcome.INSERTED

    def test_comparison_only_against_lower_or_equal_resolution(self, indexes):
        # A plan registered at a higher resolution must not prune new plans
        # (first design decision of Section 4.2).
        fine_plan = make_plan([1, 1])
        run_prune(indexes, fine_plan, resolution=2, alpha=1.01)
        outcome = run_prune(indexes, make_plan([1.001, 1.001]), resolution=0, alpha=1.5)
        assert outcome is PruneOutcome.INSERTED

    def test_alpha_below_one_rejected(self, indexes):
        with pytest.raises(ValueError):
            run_prune(indexes, make_plan([1, 1]), alpha=0.9)


class TestBounds:
    def test_out_of_bounds_plan_becomes_candidate_at_current_resolution(self, indexes):
        plan = make_plan([10, 10])
        outcome = run_prune(indexes, plan, bounds=CostVector([5, 5]), resolution=1)
        assert outcome is PruneOutcome.OUT_OF_BOUNDS
        assert indexes[1].resolution_of(plan) == 1

    def test_out_of_bounds_checked_after_approximation(self, indexes):
        # A plan that is both approximated and out of bounds is deferred to the
        # next resolution (the approximation branch is tested first in
        # Algorithm 3), not parked for the current one.
        run_prune(indexes, make_plan([1, 1]), bounds=CostVector([5, 5]), alpha=1.3)
        outcome = run_prune(indexes, make_plan([1.1, 1.1]), bounds=CostVector([5, 5]), alpha=1.3)
        assert outcome is PruneOutcome.DEFERRED_TO_HIGHER_RESOLUTION

    def test_result_plans_outside_bounds_cannot_approximate(self, indexes):
        # Only result plans within the bounds participate in the comparison.
        run_prune(indexes, make_plan([10, 10]))  # inserted under unbounded b
        tight_bounds = CostVector([5, 5])
        outcome = run_prune(indexes, make_plan([11, 11]), bounds=tight_bounds, alpha=2.0)
        assert outcome is PruneOutcome.OUT_OF_BOUNDS


class TestInterestingOrders:
    def test_order_covers_semantics(self):
        unordered = make_plan([1, 1])
        ordered = make_plan([1, 1], order="sorted:a")
        other_order = make_plan([1, 1], order="sorted:b")
        assert order_covers(ordered, unordered)
        assert order_covers(unordered, unordered)
        assert order_covers(ordered, ordered)
        assert not order_covers(unordered, ordered)
        assert not order_covers(other_order, ordered)

    def test_ordered_plan_not_pruned_by_unordered_plan(self, indexes):
        run_prune(indexes, make_plan([1, 1]), alpha=2.0)
        ordered = make_plan([1.5, 1.5], order="sorted:a")
        outcome = run_prune(indexes, ordered, alpha=2.0)
        assert outcome is PruneOutcome.INSERTED

    def test_unordered_plan_can_be_pruned_by_ordered_plan(self, indexes):
        run_prune(indexes, make_plan([1, 1], order="sorted:a"), alpha=2.0)
        outcome = run_prune(indexes, make_plan([1.5, 1.5]), alpha=2.0)
        assert outcome is PruneOutcome.DEFERRED_TO_HIGHER_RESOLUTION

    def test_orders_ignored_when_disabled(self, indexes):
        run_prune(indexes, make_plan([1, 1]), alpha=2.0)
        ordered = make_plan([1.5, 1.5], order="sorted:a")
        outcome = run_prune(indexes, ordered, alpha=2.0, respect_orders=False)
        assert outcome is PruneOutcome.DEFERRED_TO_HIGHER_RESOLUTION


class TestWitnessCache:
    def test_witness_recorded_on_deferral(self, indexes):
        witnesses = {}
        anchor = make_plan([1, 1])
        run_prune(indexes, anchor, alpha=1.5, witnesses=witnesses)
        deferred = make_plan([1.2, 1.2])
        run_prune(indexes, deferred, alpha=1.5, witnesses=witnesses)
        assert witnesses[deferred.plan_id] is anchor

    def test_witness_cleared_on_insertion(self, indexes):
        witnesses = {}
        # The anchor trades off against the deferred plan (it does not dominate
        # it outright), so only the coarse precision factor lets it approximate.
        anchor = make_plan([1, 1.3])
        run_prune(indexes, anchor, alpha=1.5, witnesses=witnesses)
        deferred = make_plan([1.2, 1.2])
        run_prune(indexes, deferred, alpha=1.5, witnesses=witnesses)
        assert witnesses[deferred.plan_id] is anchor
        indexes[1].remove(deferred)
        # At a finer precision the witness no longer approximates the plan, so
        # it gets inserted and its witness entry removed.
        outcome = run_prune(indexes, deferred, resolution=1, alpha=1.01, witnesses=witnesses)
        assert outcome is PruneOutcome.INSERTED
        assert deferred.plan_id not in witnesses

    def test_witness_cache_gives_same_outcome(self, indexes):
        anchor = make_plan([1, 1])
        deferred = make_plan([1.2, 1.2])
        witnesses = {}
        run_prune(indexes, anchor, alpha=1.5, witnesses=witnesses)
        run_prune(indexes, deferred, alpha=1.5, witnesses=witnesses)
        indexes[1].remove(deferred)
        with_cache = run_prune(
            indexes, deferred, resolution=1, alpha=1.5, witnesses=witnesses
        )
        # Without the cache (fresh dict) the outcome must be identical.
        other_result, other_cand = PlanIndex(), PlanIndex()
        other_result.insert(anchor, 0)
        no_cache = prune(
            result_index=other_result,
            candidate_index=other_cand,
            bounds=UNBOUNDED,
            resolution=1,
            alpha=1.5,
            max_resolution=2,
            plan=deferred,
        )
        assert with_cache is no_cache
