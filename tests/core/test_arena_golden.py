"""Differential suite: the arena-backed stack vs the pre-refactor golden run.

``tests/core/golden_frontiers.json`` was captured by running the *pre-arena*
implementation (heap ``Plan`` objects, per-plan costing) over every algorithm
× topology (chain/star/cycle/clique) × table count × seed cell; the frontier
cost rows are stored as hex-encoded floats, so equality here is equality to
the last bit.  The arena refactor rewired plan storage, costing and pruning —
these tests prove the external contract did not move: frontier costs (in
retrieval order), total plans generated, and IAMA's per-invocation counters
are all bit-identical on both kernel backends.
"""

import json

import pytest

from repro import kernel
from tests.core.golden_capture import (
    ALGORITHMS,
    FIXTURE_PATH,
    IAMA_COUNTER_FIELDS,
    SEEDS,
    TABLE_COUNTS,
    TOPOLOGIES,
    capture_cell,
    cell_key,
)

try:
    import numpy  # noqa: F401

    BACKENDS = ("python", "numpy")
except ImportError:  # pragma: no cover - depends on environment
    BACKENDS = ("python",)

GOLDEN = json.loads(FIXTURE_PATH.read_text())

#: One representative cell per algorithm runs on BOTH backends; the full grid
#: runs on the active default backend (the suite is executed under both
#: backends in CI, so the full grid is covered on each).
CELLS = [
    (algorithm, topology, tables, seed)
    for algorithm in ALGORITHMS
    for topology in TOPOLOGIES
    for tables in TABLE_COUNTS
    for seed in SEEDS
]


def _assert_matches_golden(algorithm, topology, tables, seed):
    expected = GOLDEN[cell_key(algorithm, topology, tables, seed)]
    actual = capture_cell(algorithm, topology, tables, seed)
    assert actual["frontier"] == expected["frontier"], (
        f"{algorithm}/{topology}/{tables}/{seed}: frontier costs diverged "
        "from the pre-arena implementation"
    )
    assert actual["plans_generated"] == expected["plans_generated"]
    assert actual["frontier_size"] == expected["frontier_size"]
    if algorithm == "iama":
        assert actual["invocation_counters"] == expected["invocation_counters"]


@pytest.mark.parametrize("algorithm,topology,tables,seed", CELLS)
def test_cell_matches_pre_arena_golden(algorithm, topology, tables, seed):
    _assert_matches_golden(algorithm, topology, tables, seed)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_representative_cell_matches_on_both_backends(backend, algorithm):
    with kernel.use_backend(backend):
        _assert_matches_golden(algorithm, "star", 4, 0)
        _assert_matches_golden(algorithm, "chain", 4, 1)


def test_fixture_covers_the_full_grid():
    assert len(GOLDEN) == (
        len(ALGORITHMS) * len(TOPOLOGIES) * len(TABLE_COUNTS) * len(SEEDS)
    )
    assert all("frontier" in cell for cell in GOLDEN.values())


def test_iama_counters_present_in_fixture():
    cell = GOLDEN[cell_key("iama", "chain", 3, 0)]
    assert cell["invocation_counters"], "fixture must pin per-invocation counters"
    for counters in cell["invocation_counters"]:
        assert set(counters) == set(IAMA_COUNTER_FIELDS)
