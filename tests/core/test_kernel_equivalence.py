"""End-to-end equivalence of the kernel backends.

The acceptance bar of the batched-kernel refactor: running the optimizer (and
the baselines) with the pure-Python kernel and with the numpy kernel must
produce *identical* frontiers -- same cost vectors, same order, bit-for-bit.
Both backends use exact IEEE-754 comparisons, so any divergence is a bug.
"""

import pytest

from repro import kernel
from repro.baselines.common import ApproximateParetoDP
from repro.core.optimizer import IncrementalOptimizer
from repro.core.resolution import ResolutionSchedule
from tests.conftest import build_chain_query, build_factory

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - depends on environment
    HAVE_NUMPY = False

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="backend equivalence needs both backends installed"
)


def incremental_frontier_trace(backend_name):
    """Frontier cost sequences of a three-level sweep under one backend."""
    with kernel.use_backend(backend_name):
        query = build_chain_query()
        factory = build_factory(query)
        schedule = ResolutionSchedule(levels=3, target_precision=1.05, precision_step=0.3)
        optimizer = IncrementalOptimizer(query, factory, schedule)
        unbounded = factory.metric_set.unbounded_vector()
        trace = []
        for resolution in schedule.resolutions():
            report = optimizer.optimize(unbounded, resolution)
            frontier = optimizer.frontier(unbounded, resolution)
            trace.append(
                (
                    report.plans_inserted,
                    report.plans_deferred,
                    report.plans_out_of_bounds,
                    tuple(tuple(plan.cost) for plan in frontier),
                )
            )
        return trace


def dp_frontier(backend_name, keep_dominated):
    with kernel.use_backend(backend_name):
        query = build_chain_query()
        factory = build_factory(query)
        dp = ApproximateParetoDP(query, factory, keep_dominated=keep_dominated)
        dp.run(factory.metric_set.unbounded_vector(), alpha=1.05)
        return tuple(tuple(plan.cost) for plan in dp.frontier())


class TestBackendEquivalence:
    def test_incremental_sweep_is_bit_identical_across_backends(self):
        assert incremental_frontier_trace("python") == incremental_frontier_trace(
            "numpy"
        )

    @pytest.mark.parametrize("keep_dominated", [True, False])
    def test_baseline_dp_is_bit_identical_across_backends(self, keep_dominated):
        assert dp_frontier("python", keep_dominated) == dp_frontier(
            "numpy", keep_dominated
        )
