"""Unit tests for :mod:`repro.core.resolution`."""

import pytest

from repro.core.resolution import ResolutionSchedule


class TestConstruction:
    def test_needs_at_least_one_level(self):
        with pytest.raises(ValueError):
            ResolutionSchedule(levels=0)

    def test_target_precision_must_exceed_one(self):
        with pytest.raises(ValueError):
            ResolutionSchedule(levels=3, target_precision=1.0)

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            ResolutionSchedule(levels=3, precision_step=-0.1)

    def test_levels_and_max_resolution(self):
        schedule = ResolutionSchedule(levels=5)
        assert schedule.levels == 5
        assert schedule.max_resolution == 4


class TestPaperFormula:
    def test_formula_matches_section_6(self):
        # alpha_r = alpha_T + alpha_S * (r_M - r) / r_M
        schedule = ResolutionSchedule(levels=5, target_precision=1.01, precision_step=0.05)
        assert schedule.alpha(4) == pytest.approx(1.01)
        assert schedule.alpha(0) == pytest.approx(1.06)
        assert schedule.alpha(2) == pytest.approx(1.01 + 0.05 * 2 / 4)

    def test_single_level_uses_target_precision(self):
        schedule = ResolutionSchedule(levels=1, target_precision=1.01, precision_step=0.5)
        assert schedule.alpha(0) == pytest.approx(1.01)

    def test_factors_are_strictly_decreasing(self):
        schedule = ResolutionSchedule(levels=20, target_precision=1.005, precision_step=0.5)
        factors = schedule.factors()
        assert all(earlier > later for earlier, later in zip(factors, factors[1:]))
        assert all(factor > 1.0 for factor in factors)

    def test_resolution_out_of_range_rejected(self):
        schedule = ResolutionSchedule(levels=3)
        with pytest.raises(ValueError):
            schedule.alpha(3)
        with pytest.raises(ValueError):
            schedule.alpha(-1)


class TestNavigation:
    def test_next_resolution_increments(self):
        schedule = ResolutionSchedule(levels=3)
        assert schedule.next_resolution(0) == 1

    def test_next_resolution_saturates_at_max(self):
        schedule = ResolutionSchedule(levels=3)
        assert schedule.next_resolution(2) == 2

    def test_resolutions_iterator(self):
        assert list(ResolutionSchedule(levels=4).resolutions()) == [0, 1, 2, 3]


class TestGuarantees:
    def test_guaranteed_precision_matches_paper_example(self):
        # "1.01^8 ~= 1.08" for TPC-H queries with at most eight tables.
        schedule = ResolutionSchedule(levels=20, target_precision=1.01, precision_step=0.05)
        assert schedule.guaranteed_precision(8) == pytest.approx(1.01 ** 8)
        assert schedule.guaranteed_precision(8) == pytest.approx(1.0828, abs=1e-3)

    def test_guarantee_at_intermediate_resolution(self):
        schedule = ResolutionSchedule(levels=5, target_precision=1.01, precision_step=0.05)
        assert schedule.guaranteed_precision(3, resolution=0) == pytest.approx(1.06 ** 3)

    def test_invalid_table_count(self):
        with pytest.raises(ValueError):
            ResolutionSchedule(levels=2).guaranteed_precision(0)


class TestExplicitFactors:
    def test_from_factors_roundtrip(self):
        schedule = ResolutionSchedule.from_factors([1.5, 1.2, 1.05])
        assert schedule.levels == 3
        assert schedule.alpha(0) == pytest.approx(1.5)
        assert schedule.alpha(2) == pytest.approx(1.05)

    def test_from_factors_requires_decreasing_sequence(self):
        with pytest.raises(ValueError):
            ResolutionSchedule.from_factors([1.2, 1.3])

    def test_from_factors_requires_values_above_one(self):
        with pytest.raises(ValueError):
            ResolutionSchedule.from_factors([1.2, 1.0])

    def test_from_factors_rejects_empty(self):
        with pytest.raises(ValueError):
            ResolutionSchedule.from_factors([])
