"""Unit tests for :mod:`repro.core.index`."""

import pytest

from repro.core.index import PlanIndex
from repro.costs.vector import CostVector
from repro.plans.operators import ScanOperator
from repro.plans.plan import ScanPlan


def make_plan(cost, order=None):
    return ScanPlan("t", ScanOperator("seq_scan"), CostVector(cost), interesting_order=order)


@pytest.fixture
def index():
    return PlanIndex()


class TestInsertRemove:
    def test_insert_and_len(self, index):
        index.insert(make_plan([1, 1]), resolution=0)
        assert len(index) == 1

    def test_duplicate_insert_rejected(self, index):
        plan = make_plan([1, 1])
        index.insert(plan, 0)
        with pytest.raises(ValueError):
            index.insert(plan, 1)

    def test_negative_resolution_rejected(self, index):
        with pytest.raises(ValueError):
            index.insert(make_plan([1, 1]), -1)

    def test_remove(self, index):
        plan = make_plan([1, 1])
        index.insert(plan, 0)
        index.remove(plan)
        assert len(index) == 0
        assert plan not in index

    def test_remove_unknown_plan_raises(self, index):
        with pytest.raises(KeyError):
            index.remove(make_plan([1, 1]))

    def test_discard_is_idempotent(self, index):
        plan = make_plan([1, 1])
        index.insert(plan, 0)
        assert index.discard(plan)
        assert not index.discard(plan)

    def test_clear(self, index):
        index.insert(make_plan([1, 1]), 0)
        index.clear()
        assert len(index) == 0

    def test_invalid_cell_base(self):
        with pytest.raises(ValueError):
            PlanIndex(cell_base=1.0)


class TestLookups:
    def test_contains_and_resolution_of(self, index):
        plan = make_plan([1, 1])
        index.insert(plan, 2)
        assert plan in index
        assert index.resolution_of(plan) == 2

    def test_resolution_of_unknown_plan(self, index):
        with pytest.raises(KeyError):
            index.resolution_of(make_plan([1, 1]))

    def test_all_plans_and_entries(self, index):
        plans = [make_plan([i + 1, 1]) for i in range(3)]
        for level, plan in enumerate(plans):
            index.insert(plan, level)
        assert {p.plan_id for p in index.all_plans()} == {p.plan_id for p in plans}
        entries = index.all_entries()
        assert {(e.plan.plan_id, e.resolution) for e in entries} == {
            (plan.plan_id, level) for level, plan in enumerate(plans)
        }

    def test_count_at_resolution(self, index):
        index.insert(make_plan([1, 1]), 0)
        index.insert(make_plan([2, 2]), 0)
        index.insert(make_plan([3, 3]), 1)
        assert index.count_at_resolution(0) == 2
        assert index.count_at_resolution(1) == 1
        assert index.count_at_resolution(5) == 0


class TestRangeQueries:
    def test_retrieve_respects_resolution_range(self, index):
        low = make_plan([1, 1])
        high = make_plan([1, 1])
        index.insert(low, 0)
        index.insert(high, 3)
        unbounded = CostVector.infinite(2)
        assert {p.plan_id for p in index.retrieve(unbounded, 0)} == {low.plan_id}
        assert {p.plan_id for p in index.retrieve(unbounded, 3)} == {low.plan_id, high.plan_id}
        assert index.retrieve(unbounded, 2, min_resolution=1) == []

    def test_retrieve_respects_bounds(self, index):
        cheap = make_plan([1, 1])
        pricey = make_plan([100, 1])
        index.insert(cheap, 0)
        index.insert(pricey, 0)
        within = index.retrieve(CostVector([10, 10]), 0)
        assert {p.plan_id for p in within} == {cheap.plan_id}

    def test_retrieve_with_inverted_range_is_empty(self, index):
        index.insert(make_plan([1, 1]), 0)
        assert index.retrieve(CostVector.infinite(2), 0, min_resolution=2) == []

    def test_retrieve_entries_reports_levels(self, index):
        plan = make_plan([1, 1])
        index.insert(plan, 2)
        entries = index.retrieve_entries(CostVector.infinite(2), 4)
        assert entries[0].resolution == 2

    def test_retrieve_many_plans_across_buckets(self, index):
        plans = [make_plan([float(2 ** i), 1.0]) for i in range(10)]
        for plan in plans:
            index.insert(plan, 0)
        bounds = CostVector([40.0, 10.0])
        retrieved = index.retrieve(bounds, 0)
        expected = [p for p in plans if p.cost[0] <= 40.0]
        assert {p.plan_id for p in retrieved} == {p.plan_id for p in expected}


class TestFindDominating:
    def test_finds_witness_within_bounds_and_resolution(self, index):
        witness = make_plan([1, 1])
        index.insert(witness, 0)
        found = index.find_dominating(
            CostVector([2, 2]), CostVector.infinite(2), max_resolution=0
        )
        assert found is witness

    def test_ignores_plans_above_resolution(self, index):
        index.insert(make_plan([1, 1]), 2)
        assert (
            index.find_dominating(CostVector([2, 2]), CostVector.infinite(2), 1) is None
        )

    def test_ignores_plans_exceeding_bounds(self, index):
        index.insert(make_plan([5, 5]), 0)
        found = index.find_dominating(CostVector([6, 6]), CostVector([4, 4]), 0)
        assert found is None

    def test_ignores_non_dominating_plans(self, index):
        index.insert(make_plan([3, 1]), 0)
        assert index.find_dominating(CostVector([2, 2]), CostVector.infinite(2), 0) is None

    def test_order_filter_is_applied(self, index):
        ordered = make_plan([1, 1], order="sorted:a")
        index.insert(ordered, 0)
        found = index.find_dominating(
            CostVector([2, 2]),
            CostVector.infinite(2),
            0,
            order_filter=lambda plan: plan.interesting_order is None,
        )
        assert found is None

    def test_any_dominating_wrapper(self, index):
        index.insert(make_plan([1, 1]), 0)
        assert index.any_dominating(CostVector([2, 2]), CostVector.infinite(2), 0)
        assert not index.any_dominating(CostVector([0.5, 0.5]), CostVector.infinite(2), 0)

    def test_bucket_pruning_does_not_miss_witnesses(self, index):
        # Plans with very different first-component magnitudes end up in
        # different buckets; the dominating one must still be found.
        cheap = make_plan([0.5, 10.0])
        index.insert(cheap, 0)
        index.insert(make_plan([900.0, 1.0]), 0)
        found = index.find_dominating(CostVector([1.0, 20.0]), CostVector.infinite(2), 0)
        assert found is cheap
