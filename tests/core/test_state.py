"""Unit tests for :mod:`repro.core.state`."""

import pytest

from repro.core.state import OptimizerCounters, OptimizerState
from repro.costs.vector import CostVector
from repro.plans.operators import ScanOperator
from repro.plans.plan import ScanPlan


def scan(table):
    return ScanPlan(table, ScanOperator("seq_scan"), CostVector([1.0, 1.0, 0.0]))


class TestOptimizerState:
    def test_result_and_candidate_sets_are_separate(self, chain_query):
        state = OptimizerState(chain_query)
        result = state.result_set({"orders"})
        candidate = state.candidate_set({"orders"})
        assert result is not candidate
        result.insert(scan("orders"), 0)
        assert len(candidate) == 0

    def test_sets_are_created_lazily_and_cached(self, chain_query):
        state = OptimizerState(chain_query)
        assert state.result_set({"orders"}) is state.result_set({"orders"})

    def test_unknown_table_set_rejected(self, chain_query):
        state = OptimizerState(chain_query)
        with pytest.raises(ValueError):
            state.result_set({"not_in_query"})
        with pytest.raises(ValueError):
            state.candidate_set(set())

    def test_totals(self, chain_query):
        state = OptimizerState(chain_query)
        state.result_set({"orders"}).insert(scan("orders"), 0)
        state.result_set({"items"}).insert(scan("items"), 0)
        state.candidate_set({"orders"}).insert(scan("orders"), 1)
        assert state.total_result_plans() == 2
        assert state.total_candidate_plans() == 1
        assert state.total_stored_plans() == 3

    def test_populated_sets(self, chain_query):
        state = OptimizerState(chain_query)
        state.result_set({"orders"})  # created but empty
        state.result_set({"items"}).insert(scan("items"), 0)
        populated = state.populated_result_sets()
        assert list(populated) == [frozenset({"items"})]

    def test_final_result_set_uses_all_query_tables(self, chain_query):
        state = OptimizerState(chain_query)
        assert state.final_result_set() is state.result_set(chain_query.tables)

    def test_seeded_flag_defaults_false(self, chain_query):
        assert not OptimizerState(chain_query).seeded


class TestOptimizerCounters:
    def test_prune_calls_sum(self):
        counters = OptimizerCounters(
            plans_inserted=2, plans_deferred=3, plans_out_of_bounds=1, plans_discarded=4
        )
        assert counters.prune_calls == 10

    def test_plans_generated_sum(self):
        counters = OptimizerCounters(scan_plans_generated=5, join_plans_generated=7)
        assert counters.plans_generated == 12
