"""Property-based tests for the plan index (hypothesis).

The plan index is the data structure the complexity analysis leans on
(Section 5.3 assumes O(F) retrieval); its range queries and the bucket pruning
must never silently drop or invent plans.  The oracle here is a brute-force
filter over a plain list.
"""

from hypothesis import given, settings, strategies as st

from repro.core.index import PlanIndex
from repro.costs.dominance import dominates
from repro.costs.vector import CostVector
from repro.plans.operators import ScanOperator
from repro.plans.plan import ScanPlan

costs = st.tuples(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
)
entries = st.lists(
    st.tuples(costs, st.integers(min_value=0, max_value=4)), min_size=0, max_size=40
)
bounds_values = st.one_of(
    costs.map(lambda c: CostVector(c)),
    st.just(CostVector.infinite(2)),
)


def build_index(entry_list):
    index = PlanIndex()
    plans = []
    for cost, resolution in entry_list:
        plan = ScanPlan("t", ScanOperator("seq_scan"), CostVector(cost))
        index.insert(plan, resolution)
        plans.append((plan, resolution))
    return index, plans


class TestRetrievalMatchesBruteForce:
    @settings(max_examples=150)
    @given(entries, bounds_values, st.integers(min_value=0, max_value=4))
    def test_retrieve_equals_linear_scan(self, entry_list, bounds, max_resolution):
        index, plans = build_index(entry_list)
        expected = {
            plan.plan_id
            for plan, resolution in plans
            if resolution <= max_resolution and dominates(plan.cost, bounds)
        }
        retrieved = {p.plan_id for p in index.retrieve(bounds, max_resolution)}
        assert retrieved == expected

    @settings(max_examples=150)
    @given(entries, bounds_values, st.integers(min_value=0, max_value=4), costs)
    def test_find_dominating_agrees_with_oracle(
        self, entry_list, bounds, max_resolution, target
    ):
        index, plans = build_index(entry_list)
        target_vector = CostVector(target)
        oracle = any(
            resolution <= max_resolution
            and dominates(plan.cost, bounds)
            and dominates(plan.cost, target_vector)
            for plan, resolution in plans
        )
        witness = index.find_dominating(target_vector, bounds, max_resolution)
        assert (witness is not None) == oracle
        if witness is not None:
            assert dominates(witness.cost, target_vector)
            assert dominates(witness.cost, bounds)
            assert index.resolution_of(witness) <= max_resolution

    @settings(max_examples=100)
    @given(entries)
    def test_size_and_membership_bookkeeping(self, entry_list):
        index, plans = build_index(entry_list)
        assert len(index) == len(plans)
        for plan, resolution in plans:
            assert plan in index
            assert index.resolution_of(plan) == resolution
        # Removing every plan empties the index.
        for plan, _ in plans:
            index.remove(plan)
        assert len(index) == 0
        assert index.all_plans() == []

    @settings(max_examples=100)
    @given(entries, st.data())
    def test_removal_keeps_other_entries_retrievable(self, entry_list, data):
        index, plans = build_index(entry_list)
        if not plans:
            return
        victim_position = data.draw(st.integers(min_value=0, max_value=len(plans) - 1))
        victim, _ = plans[victim_position]
        index.remove(victim)
        remaining = {p.plan_id for p, _ in plans} - {victim.plan_id}
        assert {p.plan_id for p in index.all_plans()} == remaining
