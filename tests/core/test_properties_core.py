"""Property-based tests for the IAMA core over random synthetic queries.

These are the end-to-end invariants of the algorithm:

* Theorem 2: the result set after optimizing at resolution ``r`` is an
  ``alpha_r^n``-approximate Pareto plan set (checked against the exhaustive
  optimizer over the identical search space),
* Lemma 5/6: plans and sub-plan combinations are never generated twice across
  a whole invocation series,
* the incremental series and a from-scratch run at the final precision agree
  on what the best achievable single-metric costs are (up to the guarantee).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.exhaustive import ExhaustiveParetoOptimizer
from repro.catalog.cardinality import CardinalityEstimator
from repro.core.control import AnytimeMOQO
from repro.core.optimizer import IncrementalOptimizer
from repro.core.resolution import ResolutionSchedule
from repro.costs.metrics import paper_metric_set
from repro.costs.model import MultiObjectiveCostModel
from repro.costs.pareto import approximation_error
from repro.plans.factory import PlanFactory
from repro.plans.operators import OperatorRegistry
from repro.workloads.generator import SyntheticWorkloadGenerator, Topology


def make_factory(generated):
    registry = OperatorRegistry(
        parallelism_levels=(1, 2),
        sampling_rates=(0.1,),
        small_table_rows=500,
        join_algorithms=("hash_join", "nested_loop_join"),
    )
    estimator = CardinalityEstimator(generated.statistics, generated.query.join_graph)
    return PlanFactory(estimator, MultiObjectiveCostModel(paper_metric_set()), registry)


query_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def synthetic_queries(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    table_count = draw(st.integers(min_value=1, max_value=4))
    topology = draw(st.sampled_from([Topology.CHAIN, Topology.STAR, Topology.CYCLE]))
    generator = SyntheticWorkloadGenerator(seed=seed, min_rows=100, max_rows=200_000)
    return generator.generate(table_count, topology)


@st.composite
def schedules(draw):
    levels = draw(st.integers(min_value=1, max_value=4))
    target = draw(st.floats(min_value=1.01, max_value=1.3))
    step = draw(st.floats(min_value=0.0, max_value=0.5))
    return ResolutionSchedule(levels=levels, target_precision=target, precision_step=step)


class TestTheorem2:
    @query_settings
    @given(synthetic_queries(), schedules())
    def test_final_result_covers_exact_frontier(self, generated, schedule):
        query = generated.query
        factory = make_factory(generated)
        optimizer = IncrementalOptimizer(query, factory, schedule)
        bounds = factory.metric_set.unbounded_vector()
        for resolution in range(schedule.levels):
            optimizer.optimize(bounds, resolution)
        approx = [p.cost for p in optimizer.frontier(bounds, schedule.max_resolution)]

        exact = ExhaustiveParetoOptimizer(query, make_factory(generated))
        exact.optimize()
        exact_costs = [p.cost for p in exact.frontier()]

        guarantee = schedule.guaranteed_precision(query.table_count)
        assert approximation_error(approx, exact_costs) <= guarantee + 1e-9

    @query_settings
    @given(synthetic_queries())
    def test_every_table_subset_has_result_plans(self, generated):
        query = generated.query
        factory = make_factory(generated)
        schedule = ResolutionSchedule(levels=2, target_precision=1.1, precision_step=0.2)
        optimizer = IncrementalOptimizer(query, factory, schedule)
        bounds = factory.metric_set.unbounded_vector()
        optimizer.optimize(bounds, 0)
        # Every connected table subset that the enumerator considers must end
        # up with at least one result plan under unbounded cost bounds.
        for tables, index in optimizer.state.populated_result_sets().items():
            assert len(index) > 0
        assert len(optimizer.frontier(bounds, 0)) > 0


class TestIncrementalInvariants:
    @query_settings
    @given(synthetic_queries(), schedules())
    def test_no_duplicate_plan_generation_across_series(self, generated, schedule):
        query = generated.query
        factory = make_factory(generated)
        loop = AnytimeMOQO(query, factory, schedule)
        loop.run_resolution_sweep()
        freshness = loop.optimizer.state.freshness.counters
        assert factory.counters.join_plans_built == freshness.fresh_combinations
        # Scan plans are seeded exactly once.
        rows = {t: loop.optimizer.factory.estimator.base_cardinality(t) for t in query.tables}
        expected_scans = sum(
            len(factory.operators.scan_operators(rows[t])) for t in query.tables
        )
        assert factory.counters.scan_plans_built == expected_scans

    @query_settings
    @given(synthetic_queries())
    def test_frontier_grows_monotonically_with_resolution(self, generated):
        query = generated.query
        factory = make_factory(generated)
        schedule = ResolutionSchedule(levels=3, target_precision=1.05, precision_step=0.3)
        loop = AnytimeMOQO(query, factory, schedule)
        sizes = [len(result.frontier) for result in loop.run_resolution_sweep()]
        assert all(later >= earlier for earlier, later in zip(sizes, sizes[1:]))

    @query_settings
    @given(synthetic_queries())
    def test_incremental_matches_oneshot_best_costs_within_guarantee(self, generated):
        """The anytime series must not lose the best achievable single-metric costs."""
        query = generated.query
        schedule = ResolutionSchedule(levels=3, target_precision=1.05, precision_step=0.3)

        factory_a = make_factory(generated)
        loop = AnytimeMOQO(query, factory_a, schedule)
        results = loop.run_resolution_sweep()
        final_frontier = [p.cost for p in results[-1].frontier]

        exact = ExhaustiveParetoOptimizer(query, make_factory(generated))
        exact.optimize()
        exact_frontier = [p.cost for p in exact.frontier()]

        guarantee = schedule.guaranteed_precision(query.table_count)
        for metric_index in range(len(exact_frontier[0])):
            best_exact = min(c[metric_index] for c in exact_frontier)
            best_approx = min(c[metric_index] for c in final_frontier)
            assert best_approx <= best_exact * guarantee + 1e-9
