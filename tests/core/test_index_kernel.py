"""Kernel-path and edge-case tests for :mod:`repro.core.index`.

Covers the satellite checklist items of the batched-kernel refactor: removal
of the last plan in a bucket, retrieval with infinite bounds, the
``order_filter`` of ``find_dominating``, the infinite-first-component bucket
sentinel, and property-based equivalence of the kernel-backed retrieval
against a scalar brute-force oracle on every available backend.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import kernel
from repro.core.index import INFINITE_BUCKET, PlanIndex
from repro.costs.dominance import dominates
from repro.costs.vector import CostVector
from repro.plans.operators import ScanOperator
from repro.plans.plan import ScanPlan

try:
    import numpy  # noqa: F401

    BACKENDS = ["python", "numpy"]
except ImportError:  # pragma: no cover - depends on environment
    BACKENDS = ["python"]

INF = float("inf")


def make_plan(cost, order=None):
    return ScanPlan(
        "t", ScanOperator("seq_scan"), CostVector(cost), interesting_order=order
    )


@pytest.fixture(params=BACKENDS)
def backend(request):
    with kernel.use_backend(request.param):
        yield request.param


class TestBucketEdgeCases:
    def test_removing_last_plan_in_bucket_keeps_index_consistent(self, backend):
        index = PlanIndex()
        # Same bucket (similar first component), then empty it entirely.
        lone = make_plan([100.0, 1.0])
        other = make_plan([1.0, 1.0])
        index.insert(lone, 0)
        index.insert(other, 0)
        index.remove(lone)
        assert len(index) == 1
        assert lone not in index
        retrieved = index.retrieve(CostVector.infinite(2), 0)
        assert [p.plan_id for p in retrieved] == [other.plan_id]
        # Re-inserting into the emptied bucket works.
        index.insert(make_plan([101.0, 2.0]), 0)
        assert len(index) == 2

    def test_removals_trigger_compaction_without_losing_plans(self, backend):
        index = PlanIndex()
        plans = [make_plan([10.0 + i * 0.01, float(i)]) for i in range(20)]
        for plan in plans:
            index.insert(plan, 0)
        for plan in plans[:15]:
            index.remove(plan)
        survivors = {p.plan_id for p in plans[15:]}
        assert {p.plan_id for p in index.all_plans()} == survivors
        retrieved = index.retrieve(CostVector.infinite(2), 0)
        assert [p.plan_id for p in retrieved] == [p.plan_id for p in plans[15:]]
        # Locations stay valid after compaction: removal still works.
        index.remove(plans[15])
        assert len(index) == 4

    def test_retrieve_with_infinite_bounds_returns_everything_in_range(self, backend):
        index = PlanIndex()
        plans = [make_plan([float(2**i), 1.0]) for i in range(8)]
        for resolution, plan in enumerate(plans):
            index.insert(plan, resolution % 3)
        unbounded = CostVector.infinite(2)
        assert {p.plan_id for p in index.retrieve(unbounded, 2)} == {
            p.plan_id for p in plans
        }
        assert {p.plan_id for p in index.retrieve(unbounded, 0)} == {
            p.plan_id for r, p in enumerate(plans) if r % 3 == 0
        }

    def test_find_dominating_with_order_filter_skips_incompatible_witnesses(
        self, backend
    ):
        index = PlanIndex()
        ordered_cheap = make_plan([1.0, 1.0], order="sorted:a")
        unordered_pricier = make_plan([2.0, 2.0])
        index.insert(ordered_cheap, 0)
        index.insert(unordered_pricier, 0)
        target = CostVector([3.0, 3.0])
        unbounded = CostVector.infinite(2)
        # Without a filter the cheapest dominating plan wins.
        assert index.find_dominating(target, unbounded, 0) is ordered_cheap
        # The filter must skip the ordered plan but still find the other one.
        witness = index.find_dominating(
            target, unbounded, 0, order_filter=lambda p: p.interesting_order is None
        )
        assert witness is unordered_pricier
        # A filter rejecting everything yields no witness.
        assert (
            index.find_dominating(target, unbounded, 0, order_filter=lambda p: False)
            is None
        )


class TestInfiniteCostSentinel:
    def test_infinite_first_component_maps_to_top_bucket(self):
        index = PlanIndex()
        assert index._bucket_of(CostVector([INF, 1.0])) == INFINITE_BUCKET
        assert INFINITE_BUCKET > index._bucket_of(CostVector([1e300, 1.0]))

    def test_infinite_cost_plan_is_not_retrievable_under_finite_bounds(self, backend):
        index = PlanIndex()
        unbounded_plan = make_plan([INF, 1.0])
        cheap = make_plan([1.0, 1.0])
        index.insert(unbounded_plan, 0)
        index.insert(cheap, 0)
        retrieved = index.retrieve(CostVector([10.0, 10.0]), 0)
        assert [p.plan_id for p in retrieved] == [cheap.plan_id]

    def test_infinite_cost_plan_is_retrievable_under_infinite_bounds(self, backend):
        index = PlanIndex()
        unbounded_plan = make_plan([INF, 1.0])
        index.insert(unbounded_plan, 0)
        retrieved = index.retrieve(CostVector.infinite(2), 0)
        assert [p.plan_id for p in retrieved] == [unbounded_plan.plan_id]

    def test_infinite_cost_plan_can_witness_infinite_targets(self, backend):
        index = PlanIndex()
        unbounded_plan = make_plan([INF, 1.0])
        index.insert(unbounded_plan, 0)
        witness = index.find_dominating(
            CostVector([INF, 2.0]), CostVector.infinite(2), 0
        )
        assert witness is unbounded_plan
        # ... but never dominates a finite target.
        assert (
            index.find_dominating(CostVector([5.0, 2.0]), CostVector.infinite(2), 0)
            is None
        )

    def test_infinite_bucket_does_not_shadow_finite_buckets(self, backend):
        # Regression: the old sentinel (-1) sorted the unbounded bucket below
        # every finite bucket, making it look like the cheapest cell.  The
        # infinite bucket must sort above all finite cells so bucket skipping
        # can prune it under finite bounds without any call-site special case.
        index = PlanIndex()
        index.insert(make_plan([INF, 1.0]), 0)
        finite = make_plan([5.0, 5.0])
        index.insert(finite, 0)
        witness = index.find_dominating(CostVector([6.0, 6.0]), CostVector([7.0, 7.0]), 0)
        assert witness is finite


costs = st.tuples(
    st.one_of(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
        st.just(INF),
    ),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
)
entries = st.lists(
    st.tuples(costs, st.integers(min_value=0, max_value=3)), min_size=0, max_size=40
)
bounds_values = st.one_of(
    costs.map(CostVector),
    st.just(CostVector.infinite(2)),
)


class TestScalarKernelEquivalence:
    """The kernel-backed index must agree with a scalar dominates() loop."""

    @settings(max_examples=120)
    @given(entries, bounds_values, st.integers(min_value=0, max_value=3), st.data())
    def test_retrieval_matches_scalar_oracle_on_every_backend(
        self, entry_list, bounds, max_resolution, data
    ):
        results = {}
        for name in BACKENDS:
            with kernel.use_backend(name):
                index = PlanIndex()
                plans = []
                for cost, resolution in entry_list:
                    plan = ScanPlan("t", ScanOperator("seq_scan"), CostVector(cost))
                    index.insert(plan, resolution)
                    plans.append((plan, resolution))
                retrieved = index.retrieve(bounds, max_resolution)
                expected = {
                    plan.plan_id
                    for plan, resolution in plans
                    if resolution <= max_resolution and dominates(plan.cost, bounds)
                }
                # Same plans as the scalar oracle (retrieval enumerates
                # bucket by bucket, so only membership is order-free).
                assert {p.plan_id for p in retrieved} == expected
                assert len(retrieved) == len(expected)
                results[name] = [tuple(p.cost) for p in retrieved]
        # Identical cost sequences across backends (plan ids differ per build).
        assert len({tuple(seq) for seq in results.values()}) <= 1

    @settings(max_examples=120)
    @given(entries, bounds_values, st.integers(min_value=0, max_value=3), costs)
    def test_find_dominating_matches_scalar_oracle(
        self, entry_list, bounds, max_resolution, target
    ):
        target_vector = CostVector(target)
        for name in BACKENDS:
            with kernel.use_backend(name):
                index = PlanIndex()
                plans = []
                for cost, resolution in entry_list:
                    plan = ScanPlan("t", ScanOperator("seq_scan"), CostVector(cost))
                    index.insert(plan, resolution)
                    plans.append((plan, resolution))
                oracle = any(
                    resolution <= max_resolution
                    and dominates(plan.cost, bounds)
                    and dominates(plan.cost, target_vector)
                    for plan, resolution in plans
                )
                witness = index.find_dominating(target_vector, bounds, max_resolution)
                assert (witness is not None) == oracle
                if witness is not None:
                    assert dominates(witness.cost, bounds)
                    assert dominates(witness.cost, target_vector)
