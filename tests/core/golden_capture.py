"""Golden-frontier capture for the arena differential suite.

``capture_cell`` runs one (algorithm, topology, tables, seed) cell through the
unified planner API and returns everything the external contract promises to
keep bit-identical: the ordered frontier cost rows (hex-encoded floats, so the
JSON fixture is exact to the last bit), the total number of plans generated,
and the per-invocation counter deltas of the incremental optimizer.

``python -m tests.core.golden_capture`` regenerates
``tests/core/golden_frontiers.json``.  The committed fixture was produced by
the pre-arena implementation; ``tests/core/test_arena_golden.py`` asserts that
the arena-backed stack reproduces it exactly on both kernel backends.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

FIXTURE_PATH = Path(__file__).resolve().parent / "golden_frontiers.json"

ALGORITHMS = ("iama", "memoryless", "oneshot", "exhaustive", "single_objective")
TOPOLOGIES = ("chain", "star", "cycle", "clique")
SEEDS = (0, 1)
TABLE_COUNTS = (3, 4)
LEVELS = 3

#: InvocationReport counter fields pinned per invocation for the iama cells.
IAMA_COUNTER_FIELDS = (
    "candidates_retrieved",
    "pairs_enumerated",
    "join_plans_generated",
    "scan_plans_generated",
    "plans_inserted",
    "plans_deferred",
    "plans_out_of_bounds",
    "plans_discarded",
    "result_plans_total",
    "candidate_plans_total",
    "frontier_size",
)


def cell_key(algorithm: str, topology: str, tables: int, seed: int) -> str:
    return f"{algorithm}/{topology}/{tables}/{seed}"


def capture_cell(algorithm: str, topology: str, tables: int, seed: int) -> Dict:
    """Run one cell and return its contract-relevant facts (floats hex-encoded)."""
    from repro.api import OptimizeRequest, open_session

    request = OptimizeRequest(
        workload=f"gen:{topology}:{tables}:{seed}",
        algorithm=algorithm,
        scale="tiny",
        levels=LEVELS,
    )
    result = open_session(request).run()
    cell: Dict = {
        "frontier": [
            [value.hex() for value in summary.cost] for summary in result.frontier
        ],
        "plans_generated": result.plans_generated,
        "frontier_size": result.frontier_size,
    }
    if algorithm == "iama":
        counters: List[Dict[str, int]] = []
        for invocation in result.invocations:
            details = invocation.details
            counters.append(
                {name: details[name] for name in IAMA_COUNTER_FIELDS if name in details}
            )
        cell["invocation_counters"] = counters
    return cell


def capture_all() -> Dict[str, Dict]:
    cells: Dict[str, Dict] = {}
    for algorithm in ALGORITHMS:
        for topology in TOPOLOGIES:
            for tables in TABLE_COUNTS:
                for seed in SEEDS:
                    cells[cell_key(algorithm, topology, tables, seed)] = capture_cell(
                        algorithm, topology, tables, seed
                    )
    return cells


def main() -> None:
    cells = capture_all()
    FIXTURE_PATH.write_text(json.dumps(cells, indent=1, sort_keys=True) + "\n")
    print(f"wrote {len(cells)} cells to {FIXTURE_PATH}")


if __name__ == "__main__":
    main()
