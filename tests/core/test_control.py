"""Tests for :mod:`repro.core.control` (Algorithm 1, the main control loop)."""

import pytest

from repro.core.control import (
    AnytimeMOQO,
    ChangeBounds,
    Continue,
    SelectPlan,
)
from repro.core.resolution import ResolutionSchedule
from tests.conftest import build_chain_query, build_factory


def make_loop(levels=3, **kwargs):
    query = build_chain_query()
    factory = build_factory(query)
    schedule = ResolutionSchedule(levels=levels, target_precision=1.05, precision_step=0.3)
    return AnytimeMOQO(query, factory, schedule, **kwargs), factory


class TestStep:
    def test_initial_state(self):
        loop, factory = make_loop()
        assert loop.resolution == 0
        assert loop.iteration == 0
        assert not loop.bounds.is_finite()

    def test_step_produces_frontier_and_advances_resolution(self):
        loop, _ = make_loop()
        result = loop.step()
        assert result.iteration == 1
        assert result.resolution == 0
        assert len(result.frontier) > 0
        assert loop.resolution == 1

    def test_resolution_saturates_at_max(self):
        loop, _ = make_loop(levels=2)
        loop.step()
        loop.step()
        loop.step()
        assert loop.resolution == 1
        assert loop.at_max_resolution

    def test_history_is_recorded(self):
        loop, _ = make_loop()
        loop.step()
        loop.step()
        assert [r.iteration for r in loop.history] == [1, 2]

    def test_bounds_change_resets_resolution(self):
        loop, factory = make_loop()
        result = loop.step()
        assert loop.resolution == 1
        new_bounds = factory.metric_set.unbounded_vector().with_component(0, 1e9)
        loop.step(ChangeBounds(new_bounds))
        assert loop.resolution == 0
        assert loop.bounds == new_bounds

    def test_select_plan_records_selection(self):
        loop, _ = make_loop()
        result = loop.step()
        chosen = result.frontier[0].plan
        loop.step(SelectPlan(plan=chosen))
        assert loop.selected_plan is chosen

    def test_visualize_callback_receives_every_result(self):
        seen = []
        loop, _ = make_loop(visualize=seen.append)
        loop.step()
        loop.step()
        assert [r.iteration for r in seen] == [1, 2]

    def test_frontier_costs_match_plans(self):
        loop, _ = make_loop()
        result = loop.step()
        for point in result.frontier:
            assert point.cost == point.plan.cost
        assert result.frontier_costs == [p.cost for p in result.frontier]


class TestRun:
    def test_run_without_user_performs_one_sweep(self):
        loop, _ = make_loop(levels=3)
        selected = loop.run()
        assert selected is None
        assert loop.iteration == 3

    def test_run_with_plan_selection_stops_early(self):
        loop, _ = make_loop(levels=3)

        def user(result):
            if result.iteration == 2:
                return SelectPlan(chooser=lambda frontier: frontier[0])
            return Continue()

        selected = loop.run(user=user, max_iterations=10)
        assert selected is not None
        assert loop.iteration == 2
        assert loop.selected_plan is selected

    def test_run_respects_max_iterations(self):
        loop, _ = make_loop(levels=3)
        loop.run(max_iterations=1)
        assert loop.iteration == 1

    def test_run_with_bound_changes(self):
        loop, factory = make_loop(levels=3)
        issued = []

        def user(result):
            if result.iteration == 1:
                bounds = factory.metric_set.unbounded_vector().with_component(0, 1e9)
                issued.append(bounds)
                return ChangeBounds(bounds)
            return Continue()

        loop.run(user=user, max_iterations=3)
        assert loop.history[1].bounds == issued[0]

    def test_resolution_sweep_covers_every_level(self):
        loop, _ = make_loop(levels=4)
        results = loop.run_resolution_sweep()
        assert [r.resolution for r in results] == [0, 1, 2, 3]


class TestAnytimeBehaviour:
    def test_frontier_never_shrinks_during_refinement(self):
        loop, _ = make_loop(levels=4)
        sizes = [len(result.frontier) for result in loop.run_resolution_sweep()]
        assert all(later >= earlier for earlier, later in zip(sizes, sizes[1:]))

    def test_selected_plan_resolution_from_chooser(self):
        loop, factory = make_loop()
        result = loop.step()
        metric_index = 0
        action = SelectPlan(
            chooser=lambda frontier: min(frontier, key=lambda p: p.cost[metric_index])
        )
        resolved = action.resolve([p.plan for p in result.frontier])
        assert resolved is not None
        assert resolved.cost[0] == min(cost[0] for cost in result.frontier_costs)

    def test_select_plan_resolve_empty_frontier(self):
        action = SelectPlan(chooser=lambda frontier: frontier[0])
        assert action.resolve([]) is None

    def test_select_plan_concrete_plan_takes_precedence_over_chooser(self):
        loop, _ = make_loop()
        result = loop.step()
        plans = [p.plan for p in result.frontier]
        assert len(plans) >= 2
        action = SelectPlan(plan=plans[-1], chooser=lambda frontier: frontier[0])
        assert action.resolve(plans) is plans[-1]

    def test_select_plan_chooser_receives_the_visualized_frontier(self):
        loop, _ = make_loop()
        result = loop.step()
        plans = [p.plan for p in result.frontier]
        seen = []

        def chooser(frontier):
            seen.extend(frontier)
            return frontier[0]

        assert SelectPlan(chooser=chooser).resolve(plans) is plans[0]
        assert seen == plans

    def test_select_plan_without_plan_or_chooser_resolves_to_none(self):
        loop, _ = make_loop()
        result = loop.step()
        assert SelectPlan().resolve([p.plan for p in result.frontier]) is None
