"""Tests for :mod:`repro.core.optimizer` (procedure Optimize, Algorithm 2).

These tests check both the per-invocation behaviour and the incremental
invariants proven in Section 5 (each plan generated at most once, candidate
retrieval bounds, approximation guarantees relative to the exact Pareto set).
"""

import pytest

from repro.baselines.exhaustive import ExhaustiveParetoOptimizer
from repro.core.optimizer import IncrementalOptimizer
from repro.core.resolution import ResolutionSchedule
from repro.costs.pareto import approximation_error
from repro.costs.vector import CostVector
from tests.conftest import build_chain_query, build_factory


@pytest.fixture
def schedule():
    return ResolutionSchedule(levels=3, target_precision=1.05, precision_step=0.3)


def make_optimizer(query=None, schedule=None, **kwargs):
    query = query or build_chain_query()
    schedule = schedule or ResolutionSchedule(levels=3, target_precision=1.05, precision_step=0.3)
    factory = build_factory(query)
    return IncrementalOptimizer(query, factory, schedule, **kwargs), factory


UNBOUNDED3 = None  # placeholder, bounds built per metric set


def unbounded(factory):
    return factory.metric_set.unbounded_vector()


class TestSingleInvocation:
    def test_first_invocation_produces_complete_plans(self):
        optimizer, factory = make_optimizer()
        report = optimizer.optimize(unbounded(factory), resolution=0)
        assert report.frontier_size > 0
        assert report.scan_plans_generated > 0
        assert report.join_plans_generated > 0
        frontier = optimizer.frontier(unbounded(factory), 0)
        assert all(plan.tables == optimizer.query.tables for plan in frontier)

    def test_report_reflects_resolution_and_alpha(self):
        optimizer, factory = make_optimizer()
        report = optimizer.optimize(unbounded(factory), resolution=0)
        assert report.resolution == 0
        assert report.alpha == pytest.approx(optimizer.schedule.alpha(0))

    def test_bounds_dimension_mismatch_rejected(self):
        optimizer, factory = make_optimizer()
        with pytest.raises(ValueError):
            optimizer.optimize(CostVector([1.0, 1.0]), resolution=0)

    def test_invalid_resolution_rejected(self):
        optimizer, factory = make_optimizer()
        with pytest.raises(ValueError):
            optimizer.optimize(unbounded(factory), resolution=99)

    def test_single_table_query_only_produces_scans(self):
        query = build_chain_query(("orders",))
        factory = build_factory(query)
        schedule = ResolutionSchedule(levels=2, target_precision=1.05, precision_step=0.3)
        optimizer = IncrementalOptimizer(query, factory, schedule)
        report = optimizer.optimize(factory.metric_set.unbounded_vector(), 0)
        assert report.join_plans_generated == 0
        assert report.frontier_size > 0

    def test_counters_accumulate_across_invocations(self):
        optimizer, factory = make_optimizer()
        optimizer.optimize(unbounded(factory), 0)
        first_total = optimizer.state.counters.plans_generated
        optimizer.optimize(unbounded(factory), 1)
        assert optimizer.state.counters.invocations == 2
        assert optimizer.state.counters.plans_generated >= first_total


class TestIncrementalInvariants:
    def test_scan_plans_are_generated_only_once(self):
        optimizer, factory = make_optimizer()
        optimizer.optimize(unbounded(factory), 0)
        scans_after_first = factory.counters.scan_plans_built
        optimizer.optimize(unbounded(factory), 1)
        optimizer.optimize(unbounded(factory), 2)
        assert factory.counters.scan_plans_built == scans_after_first

    def test_no_subplan_combination_is_generated_twice(self):
        """Lemma 5/6: every plan and sub-plan pair is generated at most once."""
        optimizer, factory = make_optimizer()
        for resolution in range(3):
            optimizer.optimize(unbounded(factory), resolution)
        counters = optimizer.state.freshness.counters
        assert factory.counters.join_plans_built == counters.fresh_combinations

    def test_repeating_the_same_invocation_does_no_generation_work(self):
        optimizer, factory = make_optimizer()
        optimizer.optimize(unbounded(factory), 0)
        plans_before = factory.counters.total_plans_built
        report = optimizer.optimize(unbounded(factory), 0)
        assert factory.counters.total_plans_built == plans_before
        assert report.join_plans_generated == 0
        assert report.candidates_retrieved == 0

    def test_refining_resolution_is_incremental(self):
        optimizer, factory = make_optimizer()
        optimizer.optimize(unbounded(factory), 0)
        first = factory.counters.total_plans_built
        optimizer.optimize(unbounded(factory), 1)
        second = factory.counters.total_plans_built
        # Refinement generates additional plans but does not regenerate the
        # plans of the first invocation (the factory counters only grow by the
        # fresh combinations).
        assert second >= first
        fresh = optimizer.state.freshness.counters.fresh_combinations
        assert factory.counters.join_plans_built == fresh

    def test_candidate_retrievals_bounded_by_levels(self):
        """Lemma 7: each plan is retrieved at most r_M + 1 times."""
        schedule = ResolutionSchedule(levels=4, target_precision=1.02, precision_step=0.5)
        optimizer, factory = make_optimizer(schedule=schedule)
        for resolution in range(4):
            optimizer.optimize(unbounded(factory), resolution)
        counters = optimizer.state.counters
        generated = counters.plans_generated
        assert counters.candidate_retrievals <= generated * schedule.levels

    def test_delta_mode_used_on_refinement(self):
        optimizer, factory = make_optimizer()
        first = optimizer.optimize(unbounded(factory), 0)
        second = optimizer.optimize(unbounded(factory), 1)
        assert first.delta_mode
        assert second.delta_mode

    def test_disabling_delta_sets_does_not_change_generated_plans(self):
        query = build_chain_query()
        schedule = ResolutionSchedule(levels=3, target_precision=1.05, precision_step=0.3)

        factory_a = build_factory(query)
        with_delta = IncrementalOptimizer(query, factory_a, schedule, use_delta_sets=True)
        factory_b = build_factory(query)
        without_delta = IncrementalOptimizer(query, factory_b, schedule, use_delta_sets=False)
        for resolution in range(3):
            with_delta.optimize(factory_a.metric_set.unbounded_vector(), resolution)
            without_delta.optimize(factory_b.metric_set.unbounded_vector(), resolution)
        assert (
            factory_a.counters.join_plans_built == factory_b.counters.join_plans_built
        )
        # The delta optimization saves pair enumerations, never plan builds.
        assert (
            with_delta.state.counters.pairs_enumerated
            <= without_delta.state.counters.pairs_enumerated
        )


class TestBoundsHandling:
    def test_out_of_bounds_plans_are_parked_not_lost(self):
        optimizer, factory = make_optimizer()
        metric_set = factory.metric_set
        tight = metric_set.vector(execution_time=1e-6, reserved_cores=1, precision_loss=1.0)
        report = optimizer.optimize(tight, 0)
        assert report.frontier_size == 0
        assert report.plans_out_of_bounds > 0
        assert optimizer.state.total_candidate_plans() > 0

    def test_relaxing_bounds_reactivates_candidates(self):
        optimizer, factory = make_optimizer()
        metric_set = factory.metric_set
        tight = metric_set.vector(execution_time=1e-6, reserved_cores=1, precision_loss=1.0)
        optimizer.optimize(tight, 0)
        report = optimizer.optimize(unbounded(factory), 0)
        assert report.candidates_retrieved > 0
        assert report.frontier_size > 0

    def test_bounded_frontier_respects_bounds(self):
        optimizer, factory = make_optimizer()
        metric_set = factory.metric_set
        optimizer.optimize(unbounded(factory), 0)
        all_costs = [p.cost for p in optimizer.frontier(unbounded(factory), 0)]
        cutoff = sorted(c[0] for c in all_costs)[len(all_costs) // 2]
        bounds = metric_set.unbounded_vector().with_component(0, cutoff)
        optimizer.optimize(bounds, 0)
        for plan in optimizer.frontier(bounds, 0):
            assert plan.cost[0] <= cutoff

    def test_tightening_bounds_avoids_regenerating_plans(self):
        optimizer, factory = make_optimizer()
        metric_set = factory.metric_set
        optimizer.optimize(unbounded(factory), 0)
        built = factory.counters.total_plans_built
        all_costs = [p.cost for p in optimizer.frontier(unbounded(factory), 0)]
        cutoff = sorted(c[0] for c in all_costs)[len(all_costs) // 2]
        bounds = metric_set.unbounded_vector().with_component(0, cutoff)
        optimizer.optimize(bounds, 0)
        # Tighter bounds can only restrict the search space: nothing new to build.
        assert factory.counters.total_plans_built == built


class TestApproximationGuarantee:
    @pytest.mark.parametrize("levels,target", [(1, 1.05), (3, 1.05), (3, 1.2)])
    def test_result_is_alpha_power_n_cover_of_exact_frontier(self, levels, target):
        """Theorem 2 for the complete query at the maximal resolution."""
        query = build_chain_query()
        schedule = ResolutionSchedule(levels=levels, target_precision=target, precision_step=0.3)
        factory = build_factory(query)
        optimizer = IncrementalOptimizer(query, factory, schedule)
        bounds = factory.metric_set.unbounded_vector()
        for resolution in range(levels):
            optimizer.optimize(bounds, resolution)
        approx_frontier = [
            p.cost for p in optimizer.frontier(bounds, schedule.max_resolution)
        ]

        exact_factory = build_factory(query)
        exact = ExhaustiveParetoOptimizer(query, exact_factory)
        exact.optimize()
        exact_frontier = [p.cost for p in exact.frontier()]

        guarantee = schedule.guaranteed_precision(query.table_count)
        error = approximation_error(approx_frontier, exact_frontier)
        assert error <= guarantee + 1e-9

    def test_intermediate_resolutions_also_satisfy_their_guarantee(self):
        query = build_chain_query()
        schedule = ResolutionSchedule(levels=3, target_precision=1.05, precision_step=0.5)
        factory = build_factory(query)
        optimizer = IncrementalOptimizer(query, factory, schedule)
        bounds = factory.metric_set.unbounded_vector()

        exact_factory = build_factory(query)
        exact = ExhaustiveParetoOptimizer(query, exact_factory)
        exact.optimize()
        exact_frontier = [p.cost for p in exact.frontier()]

        for resolution in range(3):
            optimizer.optimize(bounds, resolution)
            frontier = [p.cost for p in optimizer.frontier(bounds, resolution)]
            guarantee = schedule.guaranteed_precision(query.table_count, resolution)
            assert approximation_error(frontier, exact_frontier) <= guarantee + 1e-9
