"""Incremental per-bucket Pareto fronts of :class:`PlanIndex`.

The ``incremental_pareto`` flag routes unfiltered witness searches
(:meth:`PlanIndex.find_dominating_id` with ``order_id=None``) through a
per-bucket Pareto front that is built lazily and maintained across
invocations instead of re-scanning (or re-sweeping) the full bucket.  The
contract: the *existence* answer is identical to the full-bucket scan, every
returned witness genuinely dominates the combined bound, and turning the
flag off mid-flight falls back to the full scan without any rebuild cost.

The end-to-end guarantee -- a full optimizer sweep produces bit-identical
frontiers with the flag on and off -- is asserted here too, mirroring the
kernel-backend equivalence suite.
"""

import random

from repro import flags
from repro.core.index import PlanIndex
from repro.core.optimizer import IncrementalOptimizer
from repro.core.resolution import ResolutionSchedule
from repro.costs.dominance import dominates
from repro.costs.vector import CostVector
from repro.plans.operators import ScanOperator
from repro.plans.plan import ScanPlan
from tests.conftest import build_chain_query, build_factory

DIMS = 3


def make_plan(cost, order=None):
    return ScanPlan(
        "t", ScanOperator("seq_scan"), CostVector(cost), interesting_order=order
    )


def make_cost(rng, lo=8.0, hi=14.0):
    # First components inside [8, 14] share log2 bucket 3, so these rows
    # exercise front maintenance within a single bucket.
    return [rng.uniform(lo, hi) for _ in range(DIMS)]


def only_bucket(index):
    (level,) = index._levels.values()
    (bucket,) = level.values()
    return bucket


def force_front(index, resolution=0):
    """Issue one missing witness query so the lazy fronts materialize."""
    # First component stays high so the bucket-limit pruning does not skip
    # the bucket; the remaining components make the search an overall miss.
    miss = (100.0,) + (0.5,) * (DIMS - 1)
    assert index.find_dominating_id(miss, (100.0,) * DIMS, resolution) == 0


def front_snapshot(bucket):
    """(cost tuple, plan id) pairs currently on the materialized front."""
    front = bucket.front
    return sorted(
        (tuple(front.matrix.row(slot)), front.items[slot])
        for slot in front.matrix.alive_slots()
    )


def pareto_reference(bucket):
    """The front recomputed from scratch via the kernel Pareto sweep."""
    matrix = bucket.matrix
    return sorted(
        (tuple(matrix.row(slot)), bucket.items[slot])
        for slot, keep in zip(matrix.alive_slots(), matrix.pareto_mask())
        if keep
    )


class TestFrontMaintenance:
    def test_front_is_lazy(self):
        index = PlanIndex()
        for _ in range(4):
            index.insert(make_plan(make_cost(random.Random(3))), 0)
        assert only_bucket(index).front is None
        force_front(index)
        assert only_bucket(index).front is not None

    def test_flag_off_never_builds_fronts(self):
        index = PlanIndex()
        index.insert(make_plan([9.0, 9.0, 9.0]), 0)
        with flags.overrides(incremental_pareto=False):
            force_front(index)
        assert only_bucket(index).front is None

    def test_built_front_matches_pareto_sweep(self):
        rng = random.Random(17)
        index = PlanIndex()
        for _ in range(64):
            index.insert(make_plan(make_cost(rng)), 0)
        force_front(index)
        bucket = only_bucket(index)
        assert front_snapshot(bucket) == pareto_reference(bucket)

    def test_insert_folds_into_existing_front(self):
        rng = random.Random(23)
        index = PlanIndex()
        for _ in range(16):
            index.insert(make_plan(make_cost(rng)), 0)
        force_front(index)
        # A dominated insertion must leave the front untouched; a dominating
        # one must evict its victims; both must keep the front equal to a
        # from-scratch sweep.
        index.insert(make_plan([13.9, 13.9, 13.9]), 0)  # dominated by most
        bucket = only_bucket(index)
        assert front_snapshot(bucket) == pareto_reference(bucket)
        index.insert(make_plan([8.01, 8.01, 8.01]), 0)  # dominates most
        assert front_snapshot(bucket) == pareto_reference(bucket)
        # Incremental maintenance, not a rebuild: the front object survived.
        assert bucket.front is not None

    def test_remove_front_member_invalidates(self):
        index = PlanIndex()
        champion = make_plan([8.5, 8.5, 8.5])
        index.insert(champion, 0)
        index.insert(make_plan([12.0, 12.0, 12.0]), 0)
        force_front(index)
        bucket = only_bucket(index)
        assert bucket.front_ids == {champion.plan_id}
        index.remove(champion)
        assert bucket.front is None
        # The next search rebuilds: the previously shadowed plan surfaces.
        assert index.find_dominating_id((13.0,) * DIMS, (100.0,) * DIMS, 0) != 0
        assert front_snapshot(bucket) == pareto_reference(bucket)

    def test_remove_dominated_member_keeps_front(self):
        index = PlanIndex()
        index.insert(make_plan([8.5, 8.5, 8.5]), 0)
        shadowed = make_plan([12.0, 12.0, 12.0])
        index.insert(shadowed, 0)
        force_front(index)
        bucket = only_bucket(index)
        index.remove(shadowed)
        assert bucket.front is not None
        assert front_snapshot(bucket) == pareto_reference(bucket)

    def test_equal_rows_keep_one_representative(self):
        index = PlanIndex()
        first = make_plan([9.0, 9.0, 9.0])
        index.insert(first, 0)
        force_front(index)
        index.insert(make_plan([9.0, 9.0, 9.0]), 0)
        bucket = only_bucket(index)
        assert bucket.front_ids == {first.plan_id}
        assert front_snapshot(bucket) == pareto_reference(bucket)


class TestWitnessEquivalence:
    """Flag on and off must agree on witness *existence* for any workload,
    and every returned witness must genuinely dominate the combined bound."""

    def run_workload(self, seed):
        rng = random.Random(seed)
        index = PlanIndex()
        plans = []
        for step in range(300):
            action = rng.random()
            if action < 0.55 or not plans:
                plan = make_plan(
                    [rng.uniform(1.0, 60.0) for _ in range(DIMS)],
                    order=rng.choice((None, "a", "b")),
                )
                index.insert(plan, rng.randrange(3))
                plans.append(plan)
            elif action < 0.70:
                victim = plans.pop(rng.randrange(len(plans)))
                index.remove(victim)
            else:
                target = tuple(rng.uniform(1.0, 60.0) for _ in range(DIMS))
                bounds = tuple(rng.uniform(20.0, 80.0) for _ in range(DIMS))
                resolution = rng.randrange(3)
                with flags.overrides(incremental_pareto=True):
                    fast = index.find_dominating_id(target, bounds, resolution)
                with flags.overrides(incremental_pareto=False):
                    slow = index.find_dominating_id(target, bounds, resolution)
                assert bool(fast) == bool(slow), (seed, step)
                if fast:
                    combined = tuple(map(min, bounds, target))
                    for witness in (fast, slow):
                        cost = index._arena.cost_row(witness)
                        assert dominates(cost, combined), (seed, step)
                        assert index.resolution_of_id(witness) <= resolution

    def test_randomized_workloads(self):
        for seed in range(8):
            self.run_workload(seed)

    def test_order_filtered_search_ignores_fronts(self):
        # The order_id path must keep scanning full buckets: the only plan
        # with the requested order may be dominated off the front.
        index = PlanIndex()
        index.insert(make_plan([8.5, 8.5, 8.5], order=None), 0)
        ordered = make_plan([12.0, 12.0, 12.0], order="a")
        index.insert(ordered, 0)
        force_front(index)
        order_id = index._arena.order_id_of(ordered.plan_id)
        found = index.find_dominating_id(
            (13.0,) * DIMS, (100.0,) * DIMS, 0, order_id=order_id
        )
        assert found == ordered.plan_id


class TestOptimizerEquivalence:
    def frontier_trace(self, incremental):
        with flags.overrides(incremental_pareto=incremental):
            query = build_chain_query()
            factory = build_factory(query)
            schedule = ResolutionSchedule(
                levels=3, target_precision=1.05, precision_step=0.3
            )
            optimizer = IncrementalOptimizer(query, factory, schedule)
            unbounded = factory.metric_set.unbounded_vector()
            trace = []
            for resolution in schedule.resolutions():
                report = optimizer.optimize(unbounded, resolution)
                frontier = optimizer.frontier(unbounded, resolution)
                trace.append(
                    (
                        report.plans_inserted,
                        report.plans_deferred,
                        report.plans_out_of_bounds,
                        tuple(tuple(plan.cost) for plan in frontier),
                    )
                )
            return trace

    def test_full_sweep_is_bit_identical_with_flag_off(self):
        assert self.frontier_trace(True) == self.frontier_trace(False)
