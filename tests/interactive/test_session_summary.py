"""Tests for the interactive session summary (arena occupancy surface)."""

from repro.api import OptimizeRequest, resolve_request
from repro.interactive.session import InteractiveSession


def make_session():
    resolved = resolve_request(
        OptimizeRequest(workload="gen:star:3:0", algorithm="iama", scale="tiny", levels=3)
    )
    return InteractiveSession(resolved.query, resolved.factory, resolved.schedule)


class TestSessionSummary:
    def test_summary_before_any_iteration(self):
        session = make_session()
        summary = session.summary()
        assert summary["iterations"] == 0
        assert summary["resolution"] is None
        assert summary["frontier_size"] == 0
        assert summary["selected"] is False
        assert summary["arena_plans_total"] == 0

    def test_summary_reflects_arena_occupancy_after_run(self):
        session = make_session()
        session.run(max_iterations=4)
        summary = session.summary()
        assert summary["iterations"] == 4
        assert summary["frontier_size"] > 0
        assert summary["arena_plans_total"] > 0
        assert (
            summary["arena_plans_live"] + summary["arena_plans_tombstoned"]
            == summary["arena_plans_total"]
        )
        assert summary["arena_approx_bytes"] > 0
        # The summary gauges match the arena the session actually uses.
        stats = session.loop.driver.factory.arena.stats()
        assert summary["arena_plans_total"] == stats.plans_total
        assert summary["arena_plans_live"] == stats.plans_live

    def test_formatted_summary_mentions_arena(self):
        session = make_session()
        session.run(max_iterations=2)
        text = session.format_summary()
        assert "plan arena:" in text
        assert "live plans" in text
        assert "KiB" in text
