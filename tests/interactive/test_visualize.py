"""Unit tests for :mod:`repro.interactive.visualize`."""

import pytest

from repro.costs.metrics import cloud_metric_set
from repro.costs.vector import CostVector
from repro.interactive.visualize import FrontierSnapshot, ascii_scatter, frontier_series


def snapshot(costs, iteration=1, resolution=0):
    return FrontierSnapshot(
        iteration=iteration,
        resolution=resolution,
        bounds=CostVector.infinite(2),
        costs=tuple(CostVector(c) for c in costs),
        elapsed_seconds=0.5,
    )


class TestFrontierSnapshot:
    def test_size_and_metric_values(self):
        snap = snapshot([(1, 2), (3, 4)])
        assert snap.size == 2
        assert snap.metric_values(0) == [1.0, 3.0]
        assert snap.metric_values(1) == [2.0, 4.0]

    def test_frontier_series_maps_metric_names(self):
        snap = snapshot([(1, 2), (3, 4)])
        series = frontier_series(snap, cloud_metric_set())
        assert series["execution_time"] == [1.0, 3.0]
        assert series["monetary_fees"] == [2.0, 4.0]


class TestAsciiScatter:
    def test_renders_points(self):
        art = ascii_scatter([CostVector([1, 1]), CostVector([5, 3])], x_label="time", y_label="fees")
        assert "*" in art
        assert "time" in art and "fees" in art

    def test_empty_input_is_handled(self):
        assert "no plans" in ascii_scatter([])

    def test_bounds_are_drawn(self):
        art = ascii_scatter(
            [CostVector([1, 1]), CostVector([8, 8])],
            bounds=CostVector([5, 5]),
        )
        assert "|" in art
        assert "-" in art

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            ascii_scatter([CostVector([1, 1])], width=5, height=2)

    def test_infinite_costs_are_ignored(self):
        art = ascii_scatter([CostVector([float("inf"), 1]), CostVector([1, 1])])
        assert art.count("*") == 1

    def test_custom_metric_axes(self):
        costs = [CostVector([1, 10, 100]), CostVector([2, 20, 200])]
        art = ascii_scatter(costs, x_metric=1, y_metric=2)
        assert "*" in art
