"""Unit tests for :mod:`repro.interactive.session`."""

import pytest

from repro.core.control import ChangeBounds, Continue
from repro.core.resolution import ResolutionSchedule
from repro.interactive.session import InteractiveSession
from repro.interactive.user_models import (
    BoundTighteningUser,
    PassiveUser,
    PlanSelectingUser,
    weighted_sum_chooser,
)
from tests.conftest import build_chain_query, build_factory


def make_session(user=None, levels=3, metric_set=None):
    query = build_chain_query()
    factory = build_factory(query, metric_set=metric_set)
    schedule = ResolutionSchedule(levels=levels, target_precision=1.05, precision_step=0.3)
    return InteractiveSession(query, factory, schedule, user=user), factory


class TestSession:
    def test_passive_session_records_full_sweep(self):
        session, _ = make_session(PassiveUser(), levels=3)
        selected = session.run(max_iterations=3)
        assert selected is None
        assert len(session.timeline) == 3
        assert [entry.iteration for entry in session.timeline] == [1, 2, 3]

    def test_default_user_is_passive(self):
        session, _ = make_session(user=None, levels=2)
        session.run(max_iterations=2)
        assert all(isinstance(entry.action, Continue) for entry in session.timeline)

    def test_step_records_single_entry(self):
        session, _ = make_session(PassiveUser())
        entry = session.step()
        assert entry.iteration == 1
        assert entry.snapshot.size > 0
        assert len(session.timeline) == 1

    def test_plan_selecting_user_terminates_session(self):
        metric_set = build_factory(build_chain_query()).metric_set
        chooser = weighted_sum_chooser(metric_set, {"execution_time": 1.0})
        session, _ = make_session(PlanSelectingUser(chooser, min_resolution=1), levels=4)
        selected = session.run(max_iterations=10)
        assert selected is not None
        assert session.selected_plan is selected
        assert len(session.timeline) < 10

    def test_bound_tightening_user_changes_bounds(self):
        session, factory = make_session(
            BoundTighteningUser(build_factory(build_chain_query()).metric_set, "execution_time", tighten_every=1),
            levels=4,
        )
        session.run(max_iterations=4)
        actions = [entry.action for entry in session.timeline]
        assert any(isinstance(action, ChangeBounds) for action in actions)
        # A bounds change resets the visualized resolution to zero afterwards.
        change_index = next(
            i for i, action in enumerate(actions) if isinstance(action, ChangeBounds)
        )
        if change_index + 1 < len(session.timeline):
            assert session.timeline[change_index + 1].resolution == 0

    def test_elapsed_time_is_monotone(self):
        session, _ = make_session(PassiveUser(), levels=3)
        session.run(max_iterations=3)
        elapsed = [entry.snapshot.elapsed_seconds for entry in session.timeline]
        assert all(later >= earlier for earlier, later in zip(elapsed, elapsed[1:]))

    def test_hypervolume_series_is_monotone_for_passive_user(self):
        session, _ = make_session(PassiveUser(), levels=3)
        session.run(max_iterations=3)
        series = session.hypervolume_series(0, 1)
        assert len(series) == 3
        assert all(later >= earlier - 1e-9 for earlier, later in zip(series, series[1:]))

    def test_hypervolume_series_empty_without_runs(self):
        session, _ = make_session(PassiveUser())
        assert session.hypervolume_series() == []

    def test_hypervolume_series_respects_the_selected_metrics(self):
        session, _ = make_session(PassiveUser(), levels=3)
        session.run(max_iterations=3)
        # Projecting onto (time, cores) and (cores, time) measures the same
        # dominated area, just with the axes swapped.
        forward = session.hypervolume_series(0, 1)
        swapped = session.hypervolume_series(1, 0)
        assert len(forward) == len(swapped) == 3
        for a, b in zip(forward, swapped):
            assert a == pytest.approx(b)
        # A different metric pair measures a genuinely different area.
        other = session.hypervolume_series(0, 2)
        assert len(other) == 3

    def test_hypervolume_reference_point_covers_the_whole_timeline(self):
        # The reference point is the per-metric maximum over *all* iterations
        # (plus 5%), so every series entry is a finite, non-negative area.
        session, _ = make_session(
            BoundTighteningUser(
                build_factory(build_chain_query()).metric_set,
                "execution_time",
                tighten_every=2,
            ),
            levels=4,
        )
        session.run(max_iterations=4)
        series = session.hypervolume_series(0, 1)
        assert len(series) == len(session.timeline)
        assert all(value >= 0.0 for value in series)

    def test_plan_selecting_user_selection_comes_from_the_frontier(self):
        metric_set = build_factory(build_chain_query()).metric_set
        chooser = weighted_sum_chooser(metric_set, {"execution_time": 1.0})
        session, _ = make_session(PlanSelectingUser(chooser, min_resolution=1), levels=4)
        selected = session.run(max_iterations=10)
        assert selected is not None
        final_costs = list(session.timeline[-1].snapshot.costs)
        assert selected.cost in final_costs
        # The weighted-sum chooser picked the cheapest execution time.
        time_index = metric_set.index_of("execution_time")
        assert selected.cost[time_index] == min(c[time_index] for c in final_costs)

    def test_loop_is_accessible_for_inspection(self):
        session, _ = make_session(PassiveUser(), levels=2)
        session.run(max_iterations=2)
        assert session.loop.iteration == 2

    def test_run_keeps_iterating_at_max_resolution(self):
        # Algorithm 1 never stops on its own: with a passive user the loop
        # keeps invoking at the maximal resolution until max_iterations.
        session, _ = make_session(PassiveUser(), levels=2)
        session.run(max_iterations=5)
        assert len(session.timeline) == 5
        assert [entry.resolution for entry in session.timeline] == [0, 1, 1, 1, 1]
        # A late-reacting user model therefore still gets its turn.
        session.step()
        assert len(session.timeline) == 6
