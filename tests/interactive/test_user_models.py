"""Unit tests for :mod:`repro.interactive.user_models`."""

import pytest

from repro.core.control import ChangeBounds, Continue, InvocationResult, SelectPlan
from repro.core.optimizer import InvocationReport
from repro.costs.metrics import cloud_metric_set
from repro.costs.vector import CostVector
from repro.interactive.user_models import (
    BoundRelaxingUser,
    BoundTighteningUser,
    PassiveUser,
    PlanSelectingUser,
    ScriptedUser,
    weighted_sum_chooser,
)
from repro.plans.operators import ScanOperator
from repro.plans.plan import ScanPlan
from repro.core.control import FrontierPoint


def make_result(costs, iteration=1, resolution=0, bounds=None):
    metric_set = cloud_metric_set()
    bounds = bounds or metric_set.unbounded_vector()
    frontier = []
    for cost in costs:
        plan = ScanPlan("t", ScanOperator("seq_scan"), CostVector(cost))
        frontier.append(FrontierPoint(plan=plan, cost=plan.cost))
    report = InvocationReport(
        invocation_index=iteration,
        resolution=resolution,
        alpha=1.05,
        bounds=bounds,
        duration_seconds=0.01,
        delta_mode=True,
        candidates_retrieved=0,
        pairs_enumerated=0,
        join_plans_generated=0,
        scan_plans_generated=0,
        plans_inserted=0,
        plans_deferred=0,
        plans_out_of_bounds=0,
        plans_discarded=0,
        result_plans_total=len(costs),
        candidate_plans_total=0,
        frontier_size=len(costs),
    )
    return InvocationResult(
        iteration=iteration,
        resolution=resolution,
        bounds=bounds,
        report=report,
        frontier=frontier,
    )


class TestPassiveAndScripted:
    def test_passive_user_never_interacts(self):
        user = PassiveUser()
        assert isinstance(user.react(make_result([(1, 1)])), Continue)

    def test_scripted_user_replays_actions_then_continues(self):
        bounds = CostVector([1, 1])
        user = ScriptedUser([ChangeBounds(bounds), SelectPlan()])
        assert isinstance(user.react(make_result([(1, 1)], iteration=1)), ChangeBounds)
        assert isinstance(user.react(make_result([(1, 1)], iteration=2)), SelectPlan)
        assert isinstance(user.react(make_result([(1, 1)], iteration=3)), Continue)

    def test_user_model_is_callable(self):
        assert isinstance(PassiveUser()(make_result([(1, 1)])), Continue)


class TestBoundTighteningUser:
    def test_first_change_uses_quantile_of_frontier(self):
        metric_set = cloud_metric_set()
        user = BoundTighteningUser(metric_set, "execution_time", tighten_every=1, initial_quantile=1.0)
        action = user.react(make_result([(1, 1), (5, 1), (10, 1)]))
        assert isinstance(action, ChangeBounds)
        assert action.bounds[0] == pytest.approx(10.0)

    def test_subsequent_changes_tighten_geometrically(self):
        metric_set = cloud_metric_set()
        user = BoundTighteningUser(metric_set, "execution_time", tighten_every=1, factor=0.5, initial_quantile=1.0)
        first = user.react(make_result([(8, 1)], iteration=1))
        second = user.react(make_result([(8, 1)], iteration=2))
        assert second.bounds[0] == pytest.approx(first.bounds[0] * 0.5)

    def test_respects_tighten_every(self):
        metric_set = cloud_metric_set()
        user = BoundTighteningUser(metric_set, "execution_time", tighten_every=2)
        assert isinstance(user.react(make_result([(1, 1)], iteration=1)), Continue)
        assert isinstance(user.react(make_result([(1, 1)], iteration=2)), ChangeBounds)

    def test_empty_frontier_defers_change(self):
        metric_set = cloud_metric_set()
        user = BoundTighteningUser(metric_set, "execution_time", tighten_every=1)
        assert isinstance(user.react(make_result([])), Continue)

    def test_argument_validation(self):
        metric_set = cloud_metric_set()
        with pytest.raises(ValueError):
            BoundTighteningUser(metric_set, tighten_every=0)
        with pytest.raises(ValueError):
            BoundTighteningUser(metric_set, factor=1.5)
        with pytest.raises(ValueError):
            BoundTighteningUser(metric_set, initial_quantile=0.0)


class TestBoundRelaxingUser:
    def test_relaxes_once_after_threshold(self):
        user = BoundRelaxingUser(relax_after=2, factor=10.0)
        bounds = CostVector([1.0, float("inf")])
        assert isinstance(user.react(make_result([(1, 1)], iteration=1, bounds=bounds)), Continue)
        action = user.react(make_result([(1, 1)], iteration=2, bounds=bounds))
        assert isinstance(action, ChangeBounds)
        assert action.bounds[0] == pytest.approx(10.0)
        assert action.bounds[1] == float("inf")
        assert isinstance(user.react(make_result([(1, 1)], iteration=3, bounds=bounds)), Continue)

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            BoundRelaxingUser(relax_after=0)
        with pytest.raises(ValueError):
            BoundRelaxingUser(factor=1.0)


class TestPlanSelectingUser:
    def test_waits_for_resolution_and_frontier_size(self):
        chooser = weighted_sum_chooser(cloud_metric_set(), {"execution_time": 1.0})
        user = PlanSelectingUser(chooser, min_resolution=1, min_frontier_size=2)
        early = user.react(make_result([(1, 1), (2, 2)], resolution=0))
        assert isinstance(early, Continue)
        small = user.react(make_result([(1, 1)], resolution=1))
        assert isinstance(small, Continue)
        ready = user.react(make_result([(1, 1), (2, 2)], resolution=1))
        assert isinstance(ready, SelectPlan)

    def test_weighted_sum_chooser_picks_minimum(self):
        metric_set = cloud_metric_set()
        chooser = weighted_sum_chooser(metric_set, {"execution_time": 1.0, "monetary_fees": 10.0})
        plans = [
            ScanPlan("a", ScanOperator("seq_scan"), CostVector([1.0, 5.0])),
            ScanPlan("b", ScanOperator("seq_scan"), CostVector([10.0, 0.1])),
        ]
        assert chooser(plans).table == "b"

    def test_weighted_sum_chooser_validation(self):
        metric_set = cloud_metric_set()
        with pytest.raises(ValueError):
            weighted_sum_chooser(metric_set, {"execution_time": -1.0})
        with pytest.raises(ValueError):
            weighted_sum_chooser(metric_set, {"execution_time": 0.0})
        with pytest.raises(KeyError):
            weighted_sum_chooser(metric_set, {"latency": 1.0})
        chooser = weighted_sum_chooser(metric_set, {"execution_time": 1.0})
        with pytest.raises(ValueError):
            chooser([])
