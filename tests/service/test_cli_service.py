"""CLI coverage for the ``serve`` and ``submit`` verbs."""

from __future__ import annotations

import contextlib
import io
import json

import pytest

from repro.api.schema import OptimizationResult
from repro.cli import build_parser, build_server, main


@pytest.fixture()
def running_server():
    args = build_parser().parse_args(
        ["serve", "--port", "0", "--jobs", "2", "--policy", "fair"]
    )
    server = build_server(args).start()
    try:
        yield server
    finally:
        server.close()


def _submit(port, *extra):
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(
            [
                "submit",
                "gen:chain:3:0",
                "--port",
                str(port),
                "--levels",
                "2",
                "--scale",
                "tiny",
                *extra,
            ]
        )
    return code, buffer.getvalue()


class TestSubmitCommand:
    def test_text_output_reports_cache_and_frontier(self, running_server):
        _, port = running_server.address
        code, out = _submit(port)
        assert code == 0
        assert "cache: miss" in out
        assert "finish reason: exhausted" in out
        code, out = _submit(port)
        assert "cache: hit" in out

    def test_stream_prints_one_line_per_invocation(self, running_server):
        _, port = running_server.address
        code, out = _submit(port, "--stream")
        assert code == 0
        stream_lines = [line for line in out.splitlines() if "resolution" in line]
        assert len(stream_lines) == 2
        assert "alpha" in stream_lines[0]

    def test_json_round_trips_the_optimization_result(self, running_server):
        _, port = running_server.address
        code, out = _submit(port, "--json")
        assert code == 0
        payload = json.loads(out)
        result = OptimizationResult.from_dict(payload)
        assert result.to_dict() == payload
        assert result.algorithm == "iama"
        assert result.frontier_size > 0

    def test_budget_flags_reach_the_session(self, running_server):
        _, port = running_server.address
        code, out = _submit(port, "--max-invocations", "1", "--json")
        payload = json.loads(out)
        assert payload["finish_reason"] == "invocation_cap"
        assert len(payload["invocations"]) == 1

    def test_unreachable_service_exits_with_a_hint(self):
        with pytest.raises(SystemExit) as err:
            _submit(1)  # port 1: nothing listens there
        assert "repro-moqo serve" in str(err.value)

    def test_malformed_workload_exits_cleanly(self, running_server):
        _, port = running_server.address
        buffer = io.StringIO()
        with pytest.raises(SystemExit), contextlib.redirect_stdout(buffer):
            main(["submit", "gen:star:nope", "--port", str(port)])


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.policy == "fair"
        assert args.jobs == 2
        assert args.max_sessions == 8
        assert not args.no_cache

    def test_invalid_policy_is_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "random"])

    def test_build_server_honours_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--port",
                "0",
                "--policy",
                "edf",
                "--jobs",
                "3",
                "--max-sessions",
                "5",
                "--no-cache",
            ]
        )
        server = build_server(args)
        try:
            assert server.service.scheduler.policy == "edf"
            assert server.service.scheduler.max_sessions == 5
            assert server.service.cache is None
        finally:
            server.close()
