"""Invariants of the consistent-hash ring that shards the worker pool.

The serving tier leans on three properties: assignment is a pure function of
the member set (any two pools agree), membership changes move only the keys
the changed node owns (~K/N of K keys), and virtual replicas keep the load
spread sane.  These are exactly the guarantees that make a worker restart
invalidate one live tier instead of all of them.
"""

from __future__ import annotations

import pytest

from repro.api import OptimizeRequest, resolve_request
from repro.service import DEFAULT_REPLICAS, HashRing
from repro.service.frontier_cache import request_fingerprint

NODES = ("shard-0", "shard-1", "shard-2", "shard-3")


def _keys(count: int):
    return [f"digest-{index:05d}" for index in range(count)]


class TestRingBasics:
    def test_assign_returns_a_member(self):
        ring = HashRing(NODES)
        for key in _keys(50):
            assert ring.assign(key) in NODES

    def test_empty_ring_refuses_assignment(self):
        with pytest.raises(LookupError):
            HashRing().assign("anything")

    def test_duplicate_and_missing_nodes_are_errors(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")
        with pytest.raises(KeyError):
            ring.remove("b")
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_assignment_is_insertion_order_independent(self):
        keys = _keys(500)
        forward = HashRing(NODES)
        backward = HashRing(tuple(reversed(NODES)))
        assert forward.assignments(keys) == backward.assignments(keys)

    def test_assignment_is_stable_across_instances(self):
        keys = _keys(200)
        assert HashRing(NODES).assignments(keys) == HashRing(NODES).assignments(keys)


class TestMembershipStability:
    """Only the changed node's keys may move — the consistent-hash contract."""

    def test_remove_moves_only_the_removed_nodes_keys(self):
        keys = _keys(2000)
        ring = HashRing(NODES)
        before = ring.assignments(keys)
        ring.remove("shard-2")
        after = ring.assignments(keys)
        for key in keys:
            if before[key] != "shard-2":
                assert after[key] == before[key], (
                    f"{key} moved from {before[key]} to {after[key]} although "
                    "its owner never left the ring"
                )
            else:
                assert after[key] != "shard-2"

    def test_add_moves_only_keys_onto_the_new_node(self):
        keys = _keys(2000)
        ring = HashRing(NODES)
        before = ring.assignments(keys)
        ring.add("shard-4")
        after = ring.assignments(keys)
        for key in keys:
            if after[key] != before[key]:
                assert after[key] == "shard-4", (
                    f"{key} moved between pre-existing nodes "
                    f"({before[key]} -> {after[key]})"
                )

    def test_about_one_nth_of_keys_move(self):
        keys = _keys(4000)
        ring = HashRing(NODES)
        before = ring.assignments(keys)
        ring.remove("shard-1")
        after = ring.assignments(keys)
        moved = sum(1 for key in keys if before[key] != after[key])
        expected = len(keys) / len(NODES)
        # Generous band: hashing noise, but nowhere near a full reshuffle
        # (modulo hashing would move ~3/4 of the keys here).
        assert 0.4 * expected <= moved <= 2.0 * expected

    def test_remove_then_readd_restores_the_assignment(self):
        keys = _keys(500)
        ring = HashRing(NODES)
        before = ring.assignments(keys)
        ring.remove("shard-3")
        ring.add("shard-3")
        assert ring.assignments(keys) == before


class TestLoadSpread:
    def test_virtual_replicas_spread_the_load(self):
        keys = _keys(4000)
        load = HashRing(NODES, replicas=DEFAULT_REPLICAS).load(keys)
        assert set(load) == set(NODES)
        share = len(keys) / len(NODES)
        for node, count in load.items():
            assert count > 0.4 * share, f"{node} is starved: {count} keys"
            assert count < 2.0 * share, f"{node} is overloaded: {count} keys"


class TestFingerprintRouting:
    def test_same_content_digest_routes_to_the_same_shard(self):
        ring = HashRing(NODES)
        request = OptimizeRequest(workload="gen:star:4:7", levels=3, scale="tiny")
        digests = {
            request_fingerprint(resolve_request(request), "iama")
            for _ in range(3)
        }
        assert len(digests) == 1  # the fingerprint itself is stable
        digest = digests.pop()
        assert ring.assign(digest) == ring.assign(digest)

    def test_budget_variants_share_one_shard(self):
        # Warm starts depend on it: the capped and the full request must land
        # where the parked session lives, because budgets are excluded from
        # the fingerprint.
        from repro.api import Budget

        ring = HashRing(NODES)
        base = OptimizeRequest(workload="gen:chain:4:0", levels=3, scale="tiny")
        capped = base.with_overrides(budget=Budget(max_invocations=1))
        fp_base = request_fingerprint(resolve_request(base), "iama")
        fp_capped = request_fingerprint(resolve_request(capped), "iama")
        assert fp_base == fp_capped
        assert ring.assign(fp_base) == ring.assign(fp_capped)
