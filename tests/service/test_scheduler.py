"""Unit tests for the invocation-granularity scheduler.

Manual mode (``workers=0``) makes every interleaving deterministic: the tests
drive timeslices one at a time through ``step_once`` and assert the exact
policy order, admission behaviour and cancellation semantics.
"""

from __future__ import annotations

import pytest

from repro.api import Budget, OptimizeRequest, open_session
from repro.service import AdmissionError, Job, Scheduler
from repro.service.protocol import (
    JOB_CANCELLED,
    JOB_FAILED,
    JOB_FINISHED,
    JOB_QUEUED,
    JOB_RUNNING,
)

TINY = dict(levels=3, scale="tiny")


def _job(ticket, workload="gen:chain:3:0", priority=0, deadline=None, **overrides):
    request = OptimizeRequest(workload=workload, **{**TINY, **overrides})
    return Job(
        ticket,
        request,
        session=open_session(request),
        priority=priority,
        deadline_seconds=deadline,
    )


class TestAdmission:
    def test_backpressure_raises_admission_error(self):
        scheduler = Scheduler(max_sessions=1, max_queue=1, workers=0)
        scheduler.submit(_job("a"))
        scheduler.submit(_job("b"))  # queued
        with pytest.raises(AdmissionError):
            scheduler.submit(_job("c"))

    def test_priorities_order_the_backlog(self):
        scheduler = Scheduler(max_sessions=1, max_queue=8, workers=0)
        scheduler.submit(_job("low"))
        low_queued = _job("queued-low", priority=0)
        high_queued = _job("queued-high", priority=5)
        scheduler.submit(low_queued)
        scheduler.submit(high_queued)
        assert low_queued.state == JOB_QUEUED
        # Drain the live job; the high-priority one must be admitted first.
        while low_queued.state == JOB_QUEUED and high_queued.state == JOB_QUEUED:
            scheduler.step_once()
        assert high_queued.state == JOB_RUNNING
        assert low_queued.state == JOB_QUEUED

    def test_finished_jobs_make_room_for_the_backlog(self):
        scheduler = Scheduler(max_sessions=2, max_queue=8, workers=0)
        jobs = [_job(f"j{i}") for i in range(4)]
        for job in jobs:
            scheduler.submit(job)
        assert [j.state for j in jobs] == [
            JOB_RUNNING, JOB_RUNNING, JOB_QUEUED, JOB_QUEUED,
        ]
        scheduler.run_until_idle()
        assert all(job.state == JOB_FINISHED for job in jobs)
        assert scheduler.max_live_seen == 2

    def test_closed_scheduler_rejects_submissions(self):
        scheduler = Scheduler(workers=0)
        scheduler.close()
        with pytest.raises(AdmissionError):
            scheduler.submit(_job("late"))


class TestPolicies:
    def test_fair_round_robin_interleaves_sessions(self):
        scheduler = Scheduler(policy="fair", max_sessions=4, workers=0)
        jobs = [_job(f"j{i}") for i in range(3)]
        for job in jobs:
            scheduler.submit(job)
        served = [scheduler.step_once() for _ in range(6)]
        assert served == ["j0", "j1", "j2", "j0", "j1", "j2"]

    def test_edf_serves_the_earliest_deadline_first(self):
        scheduler = Scheduler(policy="edf", max_sessions=4, workers=0)
        scheduler.submit(_job("relaxed", deadline=30.0))
        scheduler.submit(_job("urgent", deadline=1.0))
        scheduler.submit(_job("nodeadline"))
        # EDF serves the earliest deadline exclusively until it completes
        # (3 levels = 3 slices), then the next deadline, then the rest.
        served = [scheduler.step_once() for _ in range(9)]
        assert served == ["urgent"] * 3 + ["relaxed"] * 3 + ["nodeadline"] * 3

    def test_alpha_greedy_serves_unvisualized_sessions_first(self):
        scheduler = Scheduler(policy="alpha_greedy", max_sessions=4, workers=0)
        first = _job("first")
        scheduler.submit(first)
        assert scheduler.step_once() == "first"
        # A newcomer has everything to gain; it must preempt the refinement.
        scheduler.submit(_job("newcomer"))
        assert scheduler.step_once() == "newcomer"

    def test_alpha_greedy_spends_slices_on_the_largest_gain(self):
        scheduler = Scheduler(policy="alpha_greedy", max_sessions=4, workers=0)
        coarse = _job("coarse", levels=5)   # large per-level alpha drop left
        fine = _job("fine", levels=5, precision="fine")
        scheduler.submit(coarse)
        scheduler.submit(fine)
        scheduler.run_until_idle()
        assert coarse.state == JOB_FINISHED and fine.state == JOB_FINISHED

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(policy="random")


class TestLifecycle:
    def test_cancel_queued_job(self):
        scheduler = Scheduler(max_sessions=1, max_queue=4, workers=0)
        scheduler.submit(_job("live"))
        queued = _job("queued")
        scheduler.submit(queued)
        scheduler.cancel(queued)
        assert queued.state == JOB_CANCELLED

    def test_cancel_live_job_stops_at_the_slice_boundary(self):
        scheduler = Scheduler(max_sessions=2, workers=0)
        job = _job("victim", levels=5)
        scheduler.submit(job)
        scheduler.step_once()
        assert len(job.updates) == 1
        scheduler.cancel(job)
        assert job.state == JOB_CANCELLED
        assert len(job.updates) == 1  # no further slices ran
        assert job.result_payload is not None
        assert job.result_payload["finish_reason"] == "in_progress"

    def test_cancelling_a_terminal_job_is_a_no_op(self):
        scheduler = Scheduler(workers=0)
        job = _job("done", levels=1)
        scheduler.submit(job)
        scheduler.run_until_idle()
        assert job.state == JOB_FINISHED
        scheduler.cancel(job)
        assert job.state == JOB_FINISHED

    def test_failures_are_contained_to_their_job(self):
        scheduler = Scheduler(max_sessions=4, workers=0)
        bad = _job("bad")
        bad.session = None  # forces an AttributeError inside the slice
        good = _job("good")
        scheduler.submit(bad)
        scheduler.submit(good)
        scheduler.run_until_idle()
        assert bad.state == JOB_FAILED
        assert bad.error is not None
        assert good.state == JOB_FINISHED
        assert scheduler.stats()["failed"] == 1

    def test_malformed_steer_is_rejected_synchronously(self):
        from repro.core.control import ChangeBounds
        from repro.costs.vector import CostVector

        scheduler = Scheduler(workers=0)
        job = _job("steered", levels=4)
        scheduler.submit(job)
        scheduler.step_once()
        with pytest.raises(ValueError):
            scheduler.steer(job, ChangeBounds(CostVector([1.0])))  # wrong dims
        # The job survives: the bad action never reached the session.
        scheduler.run_until_idle()
        assert job.state == JOB_FINISHED

    def test_terminal_jobs_release_their_sessions(self):
        scheduler = Scheduler(workers=0)
        job = _job("released")
        scheduler.submit(job)
        scheduler.run_until_idle()
        assert job.state == JOB_FINISHED
        assert job.session is None

    def test_budget_is_enforced_under_the_scheduler(self):
        scheduler = Scheduler(workers=0)
        job = _job("capped", budget=Budget(max_invocations=1))
        scheduler.submit(job)
        scheduler.run_until_idle()
        assert job.state == JOB_FINISHED
        assert len(job.updates) == 1
        assert job.result_payload["finish_reason"] == "invocation_cap"

    def test_stats_gauges(self):
        scheduler = Scheduler(policy="fair", max_sessions=2, workers=0)
        for i in range(3):
            scheduler.submit(_job(f"j{i}"))
        scheduler.run_until_idle()
        stats = scheduler.stats()
        assert stats["submitted"] == 3
        assert stats["finished"] == 3
        assert stats["invocations_run"] == 9  # 3 jobs x 3 levels
        assert stats["live_sessions"] == 0
        assert stats["max_live_seen"] == 2


class TestThreadedWorkers:
    def test_close_stops_handing_out_slices(self):
        scheduler = Scheduler(policy="fair", max_sessions=4, workers=2)
        scheduler.start()
        jobs = [_job(f"j{i}", levels=8) for i in range(4)]
        for job in jobs:
            scheduler.submit(job)
        scheduler.close()  # must return promptly, not drain 32 invocations
        # Workers have exited (close joins them): the slice counter is
        # frozen and no further slices are handed out.
        after_close = scheduler.invocations_run
        import time

        time.sleep(0.05)
        assert scheduler.invocations_run == after_close
        assert scheduler.step_once() is None  # closed: no further slices

    def test_worker_threads_drain_the_backlog(self):
        scheduler = Scheduler(policy="fair", max_sessions=4, workers=2)
        scheduler.start()
        jobs = [_job(f"j{i}") for i in range(6)]
        try:
            for job in jobs:
                scheduler.submit(job)
            with scheduler.condition:
                deadline = 30.0
                while not all(job.terminal for job in jobs) and deadline > 0:
                    scheduler.condition.wait(timeout=0.1)
                    deadline -= 0.1
        finally:
            scheduler.close()
        assert all(job.state == JOB_FINISHED for job in jobs)
        assert scheduler.invocations_run == 6 * 3
