"""Tests for the sharded worker-pool serving tier.

The centrepiece mirrors ``test_service.py``: the differential guarantee must
survive sharding.  For every scheduling policy, the frontier a request
receives from the worker pool — at any worker count, cold, replayed across
processes, warm-started, or rerouted after a shard death — is bit-identical
to running the same ``OptimizeRequest`` through serial ``open_session``.
"""

from __future__ import annotations

import time

import pytest

from repro.api import Budget, OptimizeRequest, open_session
from repro.service import (
    CACHE_HIT,
    CACHE_WARM,
    AdmissionError,
    PlanningServer,
    ServiceClient,
    UnknownTicketError,
    WorkerPoolService,
)

# Spawning real worker processes makes this the heaviest module in tests/;
# the tier taxonomy (see the root conftest) files it under ``slow``.
pytestmark = pytest.mark.slow

TINY = dict(levels=3, scale="tiny")

TOPOLOGIES = ("chain", "star", "cycle", "clique")
SEEDS = (0, 1)


def _requests():
    return [
        OptimizeRequest(workload=f"gen:{topology}:4:{seed}", **TINY)
        for topology in TOPOLOGIES
        for seed in SEEDS
    ]


def _frontier_costs(result):
    return [tuple(summary.cost) for summary in result.frontier]


@pytest.fixture(scope="module")
def serial_runs():
    """Ground truth: every request run serially through open_session."""
    runs = {}
    for request in _requests():
        result = open_session(request).run()
        runs[request.workload] = {
            "frontier": _frontier_costs(result),
            "plans_generated": result.plans_generated,
            "invocations": len(result.invocations),
        }
    return runs


# ----------------------------------------------------------------------
# The differential guarantee, sharded
# ----------------------------------------------------------------------
class TestDifferentialGuarantee:
    @pytest.mark.parametrize("workers", (1, 4))
    @pytest.mark.parametrize("policy", ("fair", "edf", "alpha_greedy"))
    def test_pool_frontiers_are_bit_identical_to_serial(
        self, policy, workers, serial_runs
    ):
        with WorkerPoolService(
            workers=workers, policy=policy, max_sessions=4
        ) as pool:
            tickets = {
                request.workload: pool.submit(request)
                for request in _requests()
            }
            for workload, ticket in tickets.items():
                result = pool.result(ticket, timeout=120.0)
                serial = serial_runs[workload]
                assert _frontier_costs(result) == serial["frontier"], (
                    f"policy {policy}, workers {workers}: frontier of "
                    f"{workload} diverged from serial execution"
                )
                assert result.plans_generated == serial["plans_generated"]
                assert len(result.invocations) == serial["invocations"]

    def test_cross_process_replay_is_bit_identical(self, serial_runs):
        request = _requests()[0]
        with WorkerPoolService(workers=2) as pool:
            first = pool.submit(request)
            pool.result(first, timeout=60.0)
            second = pool.submit(request)
            result = pool.result(second, timeout=60.0)
            assert pool.poll(second)["cache_status"] == CACHE_HIT
            assert pool.shard_of(second) == pool.shard_of(first)
            assert (
                _frontier_costs(result)
                == serial_runs[request.workload]["frontier"]
            )
            # Replay ran zero further invocations anywhere in the pool.
            stats = pool.stats()
            assert (
                stats["scheduler"]["invocations_run"]
                == serial_runs[request.workload]["invocations"]
            )

    def test_warm_start_lands_on_the_parked_shard(self, serial_runs):
        request = _requests()[1]
        capped = request.with_overrides(budget=Budget(max_invocations=1))
        with WorkerPoolService(workers=4) as pool:
            first = pool.submit(capped)
            pool.result(first, timeout=60.0)
            ticket = pool.submit(request)
            result = pool.result(ticket, timeout=60.0)
            assert pool.poll(ticket)["cache_status"] == CACHE_WARM
            assert pool.shard_of(ticket) == pool.shard_of(first)
            assert (
                _frontier_costs(result)
                == serial_runs[request.workload]["frontier"]
            )
            # Only the missing invocations ran: 1 (capped) + 2 (resumed).
            assert pool.stats()["scheduler"]["invocations_run"] == request.levels

    def test_rebalance_after_worker_death_stays_bit_identical(self, serial_runs):
        """A killed shard's keys reroute; results never change."""
        with WorkerPoolService(workers=4, max_sessions=4) as pool:
            requests = _requests()
            for request in requests:
                pool.result(pool.submit(request), timeout=120.0)
            victim = pool.shard_of(pool.tickets()[0])
            pool.kill_shard(victim)
            assert len(pool.ring) == 3
            rerouted = 0
            for request in requests:
                ticket = pool.submit(request)
                result = pool.result(ticket, timeout=120.0)
                assert pool.shard_of(ticket) != victim
                assert (
                    _frontier_costs(result)
                    == serial_runs[request.workload]["frontier"]
                ), f"{request.workload} diverged after shard rebalance"
                if pool.poll(ticket)["cache_status"] == CACHE_HIT:
                    rerouted += 1
            # The dead shard's completed traces were replayable from the
            # shared persistent tier by the surviving shards.
            assert rerouted == len(requests)

    def test_restarted_worker_rejoins_and_replays_from_disk(self, serial_runs):
        request = _requests()[2]
        with WorkerPoolService(workers=2) as pool:
            first = pool.submit(request)
            pool.result(first, timeout=60.0)
            owner = pool.shard_of(first)
            pool.kill_shard(owner)
            pool.restart_shard(owner)
            assert len(pool.ring) == 2
            # Same fingerprint -> same ring position -> the restarted shard,
            # whose live tier is empty but whose persistent tier is shared.
            ticket = pool.submit(request)
            result = pool.result(ticket, timeout=60.0)
            assert pool.shard_of(ticket) == owner
            assert pool.poll(ticket)["cache_status"] == CACHE_HIT
            assert (
                _frontier_costs(result)
                == serial_runs[request.workload]["frontier"]
            )


# ----------------------------------------------------------------------
# Shared-memory arenas and cross-shard session migration
# ----------------------------------------------------------------------
def _reassigning_workload(shape):
    """A workload whose fingerprint moves to shard-1 once it joins the ring.

    ``HashRing`` assignment is deterministic, so searching seeds here makes
    the scale-out scenario reproducible instead of hash-lucky.
    """
    from repro.api.registry import planner_registry
    from repro.api.request import resolve_request
    from repro.service.frontier_cache import request_fingerprint
    from repro.service.routing import HashRing

    ring = HashRing()
    ring.add("shard-0")
    ring.add("shard-1")
    canonical = planner_registry().get("iama").name
    for seed in range(64):
        request = OptimizeRequest(workload=f"gen:star:5:{seed}", **shape)
        key = request_fingerprint(resolve_request(request), canonical)
        if ring.assign(key) == "shard-1":
            return request
    raise AssertionError("no reassigning seed in range; ring changed?")


class TestShmMigration:
    SHAPE = dict(levels=4, scale="tiny")

    def _scale_out(self, arena_mode):
        """Park on shard-0, add shard-1, resubmit; returns (result, stats)."""
        request = _reassigning_workload(self.SHAPE)
        capped = request.with_overrides(budget=Budget(max_invocations=1))
        with WorkerPoolService(workers=1, arena_mode=arena_mode) as pool:
            first = pool.submit(capped)
            pool.result(first, timeout=60.0)
            assert pool.shard_of(first) == "shard-0"
            pool.add_shard()
            assert len(pool.ring) == 2
            ticket = pool.submit(request)
            result = pool.result(ticket, timeout=60.0)
            assert pool.shard_of(ticket) == "shard-1"
            assert pool.poll(ticket)["cache_status"] == CACHE_WARM
            return request, result, pool.stats()["cache"]

    def test_scale_out_migrates_the_parked_session(self):
        request, result, cache = self._scale_out("shm")
        serial = open_session(request).run()
        assert _frontier_costs(result) == _frontier_costs(serial)
        assert cache["migrations"] == 1
        assert cache["migrated_inline_bytes"] > 0

    def test_shm_migration_moves_no_arena_columns(self):
        """The shm session pickle carries segment names, not column data."""
        _, local_result, local_cache = self._scale_out("local")
        _, shm_result, shm_cache = self._scale_out("shm")
        assert _frontier_costs(local_result) == _frontier_costs(shm_result)
        assert shm_cache["migrations"] == local_cache["migrations"] == 1
        # The inline-bytes gap is exactly the arena columns that stayed in
        # shared memory instead of crossing the pipe.
        assert shm_cache["migrated_inline_bytes"] < local_cache["migrated_inline_bytes"]

    def test_pool_close_unlinks_every_segment(self):
        from repro.shmem import active_segments

        request = _reassigning_workload(self.SHAPE)
        capped = request.with_overrides(budget=Budget(max_invocations=1))
        with WorkerPoolService(workers=2, arena_mode="shm") as pool:
            pool.result(pool.submit(capped), timeout=60.0)
            pool.result(pool.submit(request), timeout=60.0)
        deadline = time.monotonic() + 5.0
        while active_segments() and time.monotonic() < deadline:
            time.sleep(0.1)
        assert active_segments() == ()

    def test_shm_pool_frontiers_match_serial(self, serial_runs):
        """The sharded differential guarantee holds with shm arenas."""
        with WorkerPoolService(workers=2, arena_mode="shm") as pool:
            for request in _requests()[:4]:
                result = pool.result(pool.submit(request), timeout=120.0)
                assert (
                    _frontier_costs(result)
                    == serial_runs[request.workload]["frontier"]
                ), f"{request.workload} diverged under shm arenas"


# ----------------------------------------------------------------------
# Verbs and lifecycle
# ----------------------------------------------------------------------
class TestVerbs:
    def test_stream_and_steer_through_the_pool(self):
        request = OptimizeRequest(workload="gen:star:4:0", **TINY)
        with WorkerPoolService(workers=1) as pool:
            ticket = pool.submit(request)
            updates = list(pool.stream(ticket, timeout=60.0))
            assert len(updates) == request.levels
            alphas = [u["invocation"]["alpha"] for u in updates]
            assert alphas == sorted(alphas, reverse=True)
            # Steering a terminal job is a conflict, like the in-process path.
            with pytest.raises(RuntimeError):
                pool.steer(
                    ticket,
                    {
                        "schema_version": 1,
                        "kind": "steer_request",
                        "action": "select",
                        "index": 0,
                    },
                )

    def test_select_steering_crosses_the_pipe(self):
        request = OptimizeRequest(
            workload="gen:clique:5:0", levels=5, scale="tiny"
        )
        with WorkerPoolService(workers=1) as pool:
            ticket = pool.submit(request)
            # Steer as soon as the first frontier exists.
            next(iter(pool.stream(ticket, timeout=60.0)))
            pool.steer(
                ticket,
                {
                    "schema_version": 1,
                    "kind": "steer_request",
                    "action": "select",
                    "index": 0,
                },
            )
            result = pool.result(ticket, timeout=60.0)
            assert result.finish_reason == "selected"
            assert result.selected_plan is not None

    def test_cancel_reports_the_partial_frontier(self):
        request = OptimizeRequest(
            workload="gen:clique:6:0", levels=6, scale="tiny"
        )
        with WorkerPoolService(workers=1) as pool:
            ticket = pool.submit(request)
            next(iter(pool.stream(ticket, timeout=60.0)))
            status = pool.cancel(ticket)
            assert status["state"] in ("cancelled", "finished")

    def test_unknown_ticket_and_bad_algorithm(self):
        with WorkerPoolService(workers=1) as pool:
            with pytest.raises(UnknownTicketError):
                pool.poll("job-999999")
            with pytest.raises(KeyError):
                pool.submit(
                    OptimizeRequest(workload="gen:chain:3:0", algorithm="nope")
                )

    def test_submit_after_close_and_during_drain(self):
        pool = WorkerPoolService(workers=1)
        pool.close(drain_seconds=1.0)
        from repro.service import ServiceError

        with pytest.raises(ServiceError):
            pool.submit(OptimizeRequest(workload="gen:chain:3:0", **TINY))

    def test_drain_waits_for_in_flight_jobs(self):
        request = OptimizeRequest(workload="gen:clique:5:1", levels=4, scale="tiny")
        with WorkerPoolService(workers=2) as pool:
            tickets = [pool.submit(request.with_overrides(
                workload=f"gen:clique:5:{seed}") ) for seed in range(3)]
            assert pool.drain(timeout=60.0)
            for ticket in tickets:
                assert pool.poll(ticket)["state"] == "finished"

    def test_graceful_close_drains_and_flushes(self, tmp_path):
        pool = WorkerPoolService(workers=2, cache_dir=tmp_path)
        request = OptimizeRequest(workload="gen:star:5:3", levels=4, scale="tiny")
        ticket = pool.submit(request)
        pool.close(drain_seconds=30.0)
        # The job finished during the drain window and its trace reached the
        # shared persistent tier before the shards exited.
        persisted = list(tmp_path.rglob("*.json"))
        assert persisted, "drain did not flush the persistent cache tier"


# ----------------------------------------------------------------------
# Health and the wire layer
# ----------------------------------------------------------------------
class TestHealth:
    def test_health_lists_every_worker(self):
        with WorkerPoolService(workers=3) as pool:
            time.sleep(0.4)  # let first heartbeats land
            health = pool.health()
            assert health["kind"] == "service_health"
            assert health["status"] == "ok"
            assert len(health["workers"]) == 3
            for worker in health["workers"]:
                assert worker["alive"]
                assert worker["pid"] > 0
                assert worker["last_heartbeat_age_seconds"] < 5.0

    def test_dead_shard_degrades_health_and_healthz_returns_503(self):
        with WorkerPoolService(workers=2) as pool:
            with PlanningServer(pool, port=0) as server:
                server.start()
                host, port = server.address
                client = ServiceClient(host, port)
                assert client.health()["status"] == "ok"
                pool.kill_shard("shard-0")
                health = client.health()  # 503, payload still returned
                assert health["status"] == "degraded"
                dead = {
                    w["shard_id"]: w["alive"] for w in health["workers"]
                }
                assert dead["shard-0"] is False and dead["shard-1"] is True
                # Recovery: restart the shard, health returns to ok.
                pool.restart_shard("shard-0")
                time.sleep(0.4)
                assert client.health()["status"] == "ok"

    def test_stats_carry_per_shard_gauges(self):
        with WorkerPoolService(workers=2) as pool:
            request = OptimizeRequest(workload="gen:chain:4:0", **TINY)
            pool.result(pool.submit(request), timeout=60.0)
            stats = pool.stats()
            assert stats["kind"] == "service_stats"
            assert len(stats["shards"]) == 2
            shard_ids = {shard["shard_id"] for shard in stats["shards"]}
            assert shard_ids == {"shard-0", "shard-1"}
            for shard in stats["shards"]:
                assert "live_sessions" in shard["cache"]
                assert "invocations_run" in shard["scheduler"]
            total = sum(
                shard["scheduler"]["invocations_run"]
                for shard in stats["shards"]
            )
            assert total == stats["scheduler"]["invocations_run"] == request.levels

    def test_http_round_trip_against_the_pool(self):
        request = OptimizeRequest(workload="gen:cycle:4:1", **TINY)
        with WorkerPoolService(workers=2) as pool:
            with PlanningServer(pool, port=0) as server:
                server.start()
                host, port = server.address
                client = ServiceClient(host, port)
                status = client.submit(request)
                result = client.result(status["ticket"], timeout=60.0)
                serial = open_session(request).run()
                assert _frontier_costs(result) == _frontier_costs(serial)
                repeat = client.submit(request)
                client.result(repeat["ticket"], timeout=60.0)
                assert client.poll(repeat["ticket"])["cache_status"] == CACHE_HIT
