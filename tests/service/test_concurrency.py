"""Concurrency safety of sessions under the scheduler.

Two properties:

* **Isolation** — two sessions refining simultaneously never share plan
  arenas, arena ids, or kernel scratch state: every plan of a session's
  frontier belongs to that session's private factory arena, and concurrent
  execution produces frontiers bit-identical to isolated serial runs on both
  kernel backends (the kernel holds no per-call mutable state to corrupt).
* **Interleaving determinism** — scheduler-interleaved execution yields
  bit-identical frontiers to serial execution per request, for every policy,
  with fixed seeds, both in manual single-thread mode and with a thread pool.
"""

from __future__ import annotations

import threading

import pytest

from repro import kernel
from repro.api import OptimizeRequest, open_session
from repro.service import PlanningService

TINY = dict(levels=3, scale="tiny")
TOPOLOGIES = ("chain", "star", "cycle", "clique")


def _frontier_costs(result):
    return [tuple(summary.cost) for summary in result.frontier]


class TestSessionIsolation:
    def test_concurrent_sessions_use_disjoint_arenas(self):
        request = OptimizeRequest(workload="gen:star:4:0", **TINY)
        sessions = [open_session(request) for _ in range(2)]
        errors = []

        def drain(session):
            try:
                session.run()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=drain, args=(session,))
            for session in sessions
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        arena_a = sessions[0].driver.factory.arena
        arena_b = sessions[1].driver.factory.arena
        assert arena_a is not arena_b
        for session, arena in zip(sessions, (arena_a, arena_b)):
            for plan in session.frontier_plans:
                assert plan.arena is arena, (
                    "a frontier plan leaked into a foreign session's arena"
                )
        # Identical requests assign identical (per-arena) ids — deterministic
        # per query, never process-global.
        ids_a = sorted(plan.plan_id for plan in sessions[0].frontier_plans)
        ids_b = sorted(plan.plan_id for plan in sessions[1].frontier_plans)
        assert ids_a == ids_b

    @pytest.mark.parametrize("backend", ("python", "numpy"))
    def test_concurrent_frontiers_match_serial_on_both_backends(self, backend):
        try:
            with kernel.use_backend(backend):
                requests = [
                    OptimizeRequest(workload=f"gen:{topology}:4:0", **TINY)
                    for topology in TOPOLOGIES
                ]
                serial = {
                    request.workload: _frontier_costs(open_session(request).run())
                    for request in requests
                }
                with PlanningService(
                    policy="fair", workers=4, max_sessions=4, cache=False
                ) as service:
                    tickets = {
                        request.workload: service.submit(request)
                        for request in requests
                    }
                    for workload, ticket in tickets.items():
                        result = service.result(ticket, timeout=120.0)
                        assert _frontier_costs(result) == serial[workload], (
                            f"{backend}: concurrent frontier of {workload} "
                            "diverged from serial execution"
                        )
        except ImportError:
            pytest.skip(f"kernel backend {backend!r} unavailable")


class TestInterleavingDeterminism:
    @pytest.mark.parametrize("policy", ("fair", "edf", "alpha_greedy"))
    @pytest.mark.parametrize("seed", (0, 1))
    def test_manual_interleaving_is_bit_identical_to_serial(self, policy, seed):
        requests = [
            OptimizeRequest(workload=f"gen:{topology}:4:{seed}", **TINY)
            for topology in TOPOLOGIES
        ]
        serial = {
            request.workload: _frontier_costs(open_session(request).run())
            for request in requests
        }
        with PlanningService(
            policy=policy, workers=0, max_sessions=len(requests), cache=False
        ) as service:
            tickets = {
                request.workload: service.submit(request) for request in requests
            }
            slices = service.run_until_idle()
            assert slices == len(requests) * TINY["levels"]
            for workload, ticket in tickets.items():
                result = service.result(ticket, timeout=0.1)
                assert _frontier_costs(result) == serial[workload], (
                    f"policy {policy}, seed {seed}: interleaved frontier of "
                    f"{workload} diverged from serial execution"
                )

    def test_interleaving_matches_with_constrained_admission(self):
        # max_sessions < requests forces queue churn mid-interleave.
        requests = [
            OptimizeRequest(workload=f"gen:{topology}:4:1", **TINY)
            for topology in TOPOLOGIES
        ]
        serial = {
            request.workload: _frontier_costs(open_session(request).run())
            for request in requests
        }
        with PlanningService(
            policy="fair", workers=0, max_sessions=2, cache=False
        ) as service:
            tickets = {
                request.workload: service.submit(request) for request in requests
            }
            service.run_until_idle()
            for workload, ticket in tickets.items():
                result = service.result(ticket, timeout=0.1)
                assert _frontier_costs(result) == serial[workload]
