"""Observability tier: module clock, /metrics scrapes, trace propagation.

Covers the three service-facing guarantees of the tracing/metrics subsystem:

* ``/healthz`` heartbeat-age (and the shard drain window) run on the
  monotonic module clock ``repro.service.shard._now`` — pinned with a fake
  clock, the same treatment ``repro.api.session._now`` gets;
* ``/metrics`` is valid Prometheus text exposition, never 500s under
  concurrent submit load, and every scrape observes cache gauges that
  satisfy :meth:`FrontierCache.audit`;
* a sharded submit produces *one* trace spanning the parent and worker
  pids, with no orphan spans left after a drained shutdown.
"""

from __future__ import annotations

import http.client
import inspect
import threading
import time

import pytest

from repro import flags
from repro.api import OptimizeRequest
from repro.obs import promcheck
from repro.obs import trace as obs_trace
import repro.service.shard as shard_module
from repro.service import PlanningServer, PlanningService, ServiceClient
from repro.service.protocol import HEALTH_DEGRADED, HEALTH_OK
from repro.service.shard import (
    HEARTBEAT_STALE_SECONDS,
    ShardHandle,
    WorkerPoolService,
)

TINY = dict(levels=3, scale="tiny")


def _get(host: str, port: int, path: str):
    """Raw GET returning (status, content-type, body text)."""
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return (
            response.status,
            response.getheader("Content-Type") or "",
            response.read().decode("utf-8"),
        )
    finally:
        connection.close()


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self, start: float = 1_000.0):
        self.value = start

    def __call__(self) -> float:
        return self.value

    def advance(self, seconds: float) -> None:
        self.value += seconds


class _FakeProcess:
    pid = 4242


# ----------------------------------------------------------------------
# Satellite: heartbeat age / drain window on the monotonic module clock
# ----------------------------------------------------------------------
class TestModuleClock:
    def test_shard_module_never_reads_the_wall_clock(self):
        source = inspect.getsource(shard_module)
        assert "time.time()" not in source
        # Every elapsed-time computation goes through the module clock so
        # fake-clock tests (and NTP steps) behave.
        for fn in (shard_module.shard_main, ShardHandle.heartbeat_age):
            assert "_now()" in inspect.getsource(fn)

    def test_heartbeat_age_on_fake_clock(self, monkeypatch):
        clock = FakeClock()
        monkeypatch.setattr(shard_module, "_now", clock)
        handle = ShardHandle("shard-x", _FakeProcess(), conn=None)
        assert handle.heartbeat_age() == 0.0
        clock.advance(42.5)
        assert handle.heartbeat_age() == 42.5
        handle.last_heartbeat = clock()
        assert handle.heartbeat_age() == 0.0

    def test_healthz_staleness_is_monotonic_elapsed(self, monkeypatch):
        # A long heartbeat interval keeps the live child from refreshing
        # the handle mid-test; staleness must then come purely from the
        # fake clock advancing, not from wall time.
        pool = WorkerPoolService(workers=1, heartbeat_interval=60.0)
        try:
            clock = FakeClock(start=time.monotonic())
            monkeypatch.setattr(shard_module, "_now", clock)
            pool.shards()[0].last_heartbeat = clock()
            assert pool.health()["status"] == HEALTH_OK
            clock.advance(HEARTBEAT_STALE_SECONDS + 1.0)
            health = pool.health()
            assert health["status"] == HEALTH_DEGRADED
            worker = health["workers"][0]
            assert worker["alive"]  # stale, not dead
            assert (
                worker["last_heartbeat_age_seconds"] > HEARTBEAT_STALE_SECONDS
            )
        finally:
            monkeypatch.undo()
            pool.close()


# ----------------------------------------------------------------------
# Tentpole + satellite: /metrics exposition, also under load
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_scrape_is_valid_prometheus_text(self):
        service = PlanningService(policy="fair", workers=2, max_sessions=4)
        with PlanningServer(service, port=0).start() as server:
            host, port = server.address
            client = ServiceClient(host, port)
            status = client.submit(
                OptimizeRequest(workload="gen:chain:4:1", algorithm="iama", **TINY)
            )
            client.result(status["ticket"], timeout=60)
            code, content_type, text = _get(host, port, "/metrics")
        assert code == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert promcheck.check_text(text) == []
        assert "repro_scheduler_submitted_total 1" in text
        assert "repro_invocation_seconds_bucket" in text

    def test_scrapes_under_load_never_500_and_audit_holds(self):
        service = PlanningService(policy="fair", workers=2, max_sessions=4)
        with PlanningServer(service, port=0).start() as server:
            host, port = server.address
            client = ServiceClient(host, port)
            stop = threading.Event()
            failures = []

            def scrape_loop():
                while not stop.is_set():
                    try:
                        code, _, text = _get(host, port, "/metrics")
                        if code != 200:
                            failures.append(("/metrics", code))
                        grammar = promcheck.check_text(text)
                        if grammar:
                            failures.append(("grammar", grammar))
                        # The cache gauges just scraped must be backed by
                        # consistent accounting at this very moment.
                        service.cache.audit()
                        code, _, _ = _get(host, port, "/v1/stats")
                        if code != 200:
                            failures.append(("/v1/stats", code))
                    except Exception as exc:  # noqa: BLE001 - report, don't die
                        failures.append(("exception", repr(exc)))

            scraper = threading.Thread(target=scrape_loop, daemon=True)
            scraper.start()
            try:
                tickets = [
                    client.submit(
                        OptimizeRequest(
                            workload=f"gen:{topology}:4:{seed}",
                            algorithm="iama",
                            **TINY,
                        )
                    )["ticket"]
                    for topology in ("chain", "star")
                    for seed in (0, 1, 2)
                ]
                for ticket in tickets:
                    client.result(ticket, timeout=120)
            finally:
                stop.set()
                scraper.join(timeout=30)
        assert not failures, failures[:5]

    def test_pool_scrape_carries_per_shard_labels(self):
        pool = WorkerPoolService(workers=2)
        with PlanningServer(pool, port=0).start() as server:
            host, port = server.address
            client = ServiceClient(host, port)
            status = client.submit(
                OptimizeRequest(workload="gen:chain:4:1", algorithm="iama", **TINY)
            )
            client.result(status["ticket"], timeout=120)
            code, _, text = _get(host, port, "/metrics")
        assert code == 200
        assert promcheck.check_text(text) == []
        assert 'shard="shard-0"' in text
        assert 'shard="shard-1"' in text
        assert "repro_pool_submits_total 1" in text
        assert "repro_pool_workers 2" in text


# ----------------------------------------------------------------------
# Satellite: one coherent cross-process trace, no orphans after drain
# ----------------------------------------------------------------------
class TestTracePropagation:
    def test_sharded_submit_yields_one_trace_across_pids(self):
        with flags.overrides(tracing=True):
            obs_trace.clear()
            # Workers fork with tracing already on; their spans ship back
            # over heartbeats and the drained farewell.
            pool = WorkerPoolService(workers=2)
            try:
                tickets = [
                    pool.submit(
                        OptimizeRequest(
                            workload=f"gen:{topology}:4:1",
                            algorithm="iama",
                            **TINY,
                        )
                    )
                    for topology in ("chain", "star", "cycle")
                ]
                for ticket in tickets:
                    pool.wait(ticket, timeout=120)
            finally:
                pool.close(drain_seconds=10.0)
            spans = obs_trace.drain()

        roots = [s for s in spans if s["name"] == "pool.submit"]
        assert len(roots) == len(tickets)
        # Every root's trace must reach at least one worker process.
        for root in roots:
            members = [s for s in spans if s["trace_id"] == root["trace_id"]]
            member_pids = {s["pid"] for s in members}
            assert len(member_pids) >= 2, (
                f"trace {root['trace_id']} never crossed a process boundary"
            )
            names = {s["name"] for s in members}
            assert "session.invocation" in names
            assert "scheduler.timeslice" in names
            assert "rpc.recv" in names
        # No orphans after the drained shutdown: every parent id resolves
        # among the collected spans.
        span_ids = {s["span_id"] for s in spans}
        orphans = [
            s for s in spans if s["parent_id"] and s["parent_id"] not in span_ids
        ]
        assert not orphans, [s["name"] for s in orphans][:10]

    def test_tracing_off_records_nothing_through_the_pool(self):
        assert not flags.enabled("tracing")
        obs_trace.clear()
        pool = WorkerPoolService(workers=1)
        try:
            ticket = pool.submit(
                OptimizeRequest(workload="gen:chain:4:1", algorithm="iama", **TINY)
            )
            pool.wait(ticket, timeout=120)
        finally:
            pool.close(drain_seconds=5.0)
        assert obs_trace.snapshot() == []
