"""Property test: two-tier byte accounting stays exact under churn.

PR 6 split the frontier cache into a trace tier (always charged) and an
arena tier (charged only while a resumable session is parked), with
``audit()`` as the invariant checker.  This test drives randomized
interleavings of every operation that moves bytes between the tiers —
record, replay hit, warm-start pop, re-park, LRU eviction (small byte
budget) and flush — and asserts after every step that

* ``audit()`` never raises (per-entry charges equal recomputed sizes and the
  budget counter is the sum of the charges), and
* the ``stats()`` gauges agree with ``audit()``'s recomputation.

Seeded ``random.Random`` interleavings make every failure replayable.
"""

from __future__ import annotations

import random

import pytest

from repro.api import Budget, OptimizeRequest, open_session, resolve_request
from repro.service import CACHE_HIT, CACHE_MISS, CACHE_WARM, FrontierCache
from repro.service.frontier_cache import request_fingerprint

LEVELS = 3
WORKLOADS = ("gen:chain:3:0", "gen:star:3:1", "gen:cycle:3:0", "gen:clique:3:2")


def _traced_run(workload: str, max_invocations: int):
    """Run a budget-capped session and return everything ``record`` needs.

    The cap leaves the session resumable, so recording parks it in the arena
    tier and a bigger-budget ``match`` later pops it (CACHE_WARM).
    """
    request = OptimizeRequest(
        workload=workload,
        scale="tiny",
        levels=LEVELS,
        budget=Budget(max_invocations=max_invocations),
    )
    session = open_session(request)
    alphas, updates, plans_after = [], [], []
    while not session.finished:
        update = session.step()
        alphas.append(update.invocation.alpha)
        updates.append(update.to_dict())
        plans_after.append(session.driver.factory.counters.total_plans_built)
    key = request_fingerprint(resolve_request(request), session.algorithm)
    return {
        "key": key,
        "request": request,
        "session": session,
        "alphas": alphas,
        "updates": updates,
        "plans_after": plans_after,
    }


def _record(cache: FrontierCache, trace, session):
    return cache.record(
        trace["key"],
        workload=trace["request"].workload,
        algorithm=trace["session"].algorithm,
        query_name=trace["session"].driver.query.name,
        table_count=trace["session"].driver.query.table_count,
        metric_names=tuple(trace["session"].driver.factory.metric_set.names),
        levels=trace["session"].driver.schedule.levels,
        refines=trace["session"].driver.refines,
        alphas=trace["alphas"],
        updates=trace["updates"],
        plans_after=trace["plans_after"],
        session=session,
    )


def _check(cache: FrontierCache) -> None:
    gauges = cache.audit()  # raises on any accounting divergence
    stats = cache.stats()
    assert stats["bytes_in_use"] == gauges["bytes_in_use"]
    assert stats["entries"] == gauges["entries"]
    assert 0 <= gauges["bytes_in_use"]


@pytest.mark.parametrize("interleaving_seed", [1, 7, 42])
def test_accounting_exact_under_random_churn(interleaving_seed, tmp_path):
    rng = random.Random(interleaving_seed)
    traces = [_traced_run(workload, max_invocations=2) for workload in WORKLOADS]
    # In-hand sessions per workload: a session is either parked in the cache
    # (arena tier charged) or held here awaiting a re-park.
    in_hand = {trace["key"]: trace["session"] for trace in traces}

    cache = FrontierCache(max_bytes=64 << 10, persist_dir=tmp_path / "persist")
    _check(cache)

    operations = ("record", "hit", "warm", "flush", "record_traceless")
    for step in range(120):
        trace = rng.choice(traces)
        key = trace["key"]
        operation = rng.choice(operations)
        if operation == "record":
            # Park (or re-park) the session if we hold it; otherwise this is
            # a trace-only re-record of an identical trace.
            session = in_hand.pop(key, None)
            _record(cache, trace, session)
        elif operation == "record_traceless":
            _record(cache, trace, None)
        elif operation == "hit":
            decision = cache.match(key, Budget(max_invocations=1))
            assert decision.status in (CACHE_HIT, CACHE_MISS)
        elif operation == "warm":
            decision = cache.match(key, Budget(max_invocations=LEVELS))
            if decision.status == CACHE_WARM:
                # The pop transfers session ownership (and its arena charge)
                # to us; audit must already balance before we re-park it.
                assert decision.session is not None
                assert key not in in_hand
                in_hand[key] = decision.session
            else:
                assert decision.status in (CACHE_HIT, CACHE_MISS)
        elif operation == "flush":
            cache.flush()
        try:
            _check(cache)
        except AssertionError as exc:
            raise AssertionError(
                f"accounting diverged at seed={interleaving_seed} "
                f"step={step} op={operation}: {exc}"
            ) from exc


def test_eviction_churn_under_a_tiny_byte_budget(tmp_path):
    """A budget smaller than two entries forces eviction on nearly every
    record; the accounting must stay exact through every evict/re-record."""
    traces = [_traced_run(workload, max_invocations=2) for workload in WORKLOADS]
    single = _record(
        FrontierCache(max_bytes=1 << 30), traces[0], None
    )
    budget = int(single.charged_bytes * 1.5)
    cache = FrontierCache(max_bytes=budget, persist_dir=tmp_path / "persist")
    rng = random.Random(13)
    in_hand = {trace["key"]: trace["session"] for trace in traces}
    for _ in range(60):
        trace = rng.choice(traces)
        session = in_hand.pop(trace["key"], None)
        _record(cache, trace, session)
        gauges = cache.audit()
        assert gauges["bytes_in_use"] <= max(budget, single.charged_bytes)
        if rng.random() < 0.3:
            cache.flush()
            cache.audit()
    assert len(cache) >= 1
