"""Unit tests for the cross-request frontier cache."""

from __future__ import annotations

import math

import pytest

from repro.api import Budget, OptimizeRequest, open_session, resolve_request
from repro.api.schema import (
    FINISH_EXHAUSTED,
    FINISH_INVOCATION_CAP,
    FINISH_TARGET_ALPHA,
    OptimizationResult,
)
from repro.service import CACHE_HIT, CACHE_MISS, CACHE_WARM, FrontierCache
from repro.service.frontier_cache import (
    canonical_workload_id,
    request_fingerprint,
    serial_stop,
)

TINY = dict(levels=3, scale="tiny")


def _run_and_trace(request: OptimizeRequest):
    """Run a request serially and return (alphas, update payloads, plans_after)."""
    session = open_session(request)
    alphas, updates, plans_after = [], [], []
    while not session.finished:
        update = session.step()
        alphas.append(update.invocation.alpha)
        updates.append(update.to_dict())
        plans_after.append(session.driver.factory.counters.total_plans_built)
    return session, alphas, updates, plans_after


def _record(cache: FrontierCache, key: str, request, session, alphas, updates, plans_after):
    return cache.record(
        key,
        workload=request.workload,
        algorithm=session.algorithm,
        query_name=session.driver.query.name,
        table_count=session.driver.query.table_count,
        metric_names=tuple(session.driver.factory.metric_set.names),
        levels=session.driver.schedule.levels,
        refines=session.driver.refines,
        alphas=alphas,
        updates=updates,
        plans_after=plans_after,
        session=session,
    )


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_spelling_independent_tpch_ids(self):
        for spec in ("q03", "tpch:q03", "tpch_q03"):
            resolved = resolve_request(OptimizeRequest(workload=spec, scale="tiny"))
            assert canonical_workload_id(resolved).startswith("tpch:")
        ids = {
            canonical_workload_id(
                resolve_request(OptimizeRequest(workload=spec, scale="tiny"))
            )
            for spec in ("q03", "tpch:q03")
        }
        assert len(ids) == 1

    def test_generated_ids_use_workload_fingerprint(self):
        resolved = resolve_request(
            OptimizeRequest(workload="gen:star:4:7", scale="tiny")
        )
        identifier = canonical_workload_id(resolved)
        assert identifier.startswith("gen:")
        assert len(identifier) > len("gen:") + 32  # a real digest, not the spec
        # The resolved-objects fingerprint is the exact workload_fingerprint
        # of the regenerated workload (the bench cell cache's digest).
        from repro.workloads.generator import generated_workload, workload_fingerprint

        regenerated = workload_fingerprint(generated_workload(7, 4, "star"))
        assert identifier == f"gen:{regenerated}"

    @pytest.mark.parametrize(
        "changes",
        [
            {"workload": "gen:star:4:8"},
            {"levels": 4},
            {"precision": "fine"},
            {"metrics": ("execution_time", "monetary_fees")},
            {"algorithm": "memoryless"},
        ],
    )
    def test_fingerprint_sensitivity(self, changes):
        base = OptimizeRequest(workload="gen:star:4:7", **TINY)
        varied = base.with_overrides(**changes)
        algo_a = base.algorithm
        algo_b = varied.algorithm
        fp_a = request_fingerprint(resolve_request(base), algo_a)
        fp_b = request_fingerprint(resolve_request(varied), algo_b)
        assert fp_a != fp_b

    def test_budget_is_excluded_from_the_fingerprint(self):
        base = OptimizeRequest(workload="gen:star:4:7", **TINY)
        capped = base.with_overrides(budget=Budget(max_invocations=1))
        assert request_fingerprint(
            resolve_request(base), "iama"
        ) == request_fingerprint(resolve_request(capped), "iama")


# ----------------------------------------------------------------------
# The serial stopping rule
# ----------------------------------------------------------------------
class TestSerialStop:
    ALPHAS = [1.06, 1.035, 1.01]

    def test_unlimited_budget_stops_at_exhaustion(self):
        assert serial_stop(self.ALPHAS, True, 3, Budget()) == (3, FINISH_EXHAUSTED)

    def test_invocation_cap_stops_early(self):
        stop = serial_stop(self.ALPHAS, True, 3, Budget(max_invocations=2))
        assert stop == (2, FINISH_INVOCATION_CAP)

    def test_target_alpha_stops_when_reached(self):
        stop = serial_stop(self.ALPHAS, True, 3, Budget(target_alpha=1.04))
        assert stop == (2, FINISH_TARGET_ALPHA)

    def test_exhaustion_takes_precedence_over_budget(self):
        # The session's apply() marks exhaustion before checking the budget.
        stop = serial_stop(self.ALPHAS, True, 3, Budget(max_invocations=3))
        assert stop == (3, FINISH_EXHAUSTED)

    def test_non_refining_planners_exhaust_after_one_invocation(self):
        assert serial_stop([1.0], False, 5, Budget()) == (1, FINISH_EXHAUSTED)

    def test_budget_beyond_trace_returns_none(self):
        assert serial_stop(self.ALPHAS[:1], True, 3, Budget()) is None

    def test_deadline_budgets_are_rejected(self):
        with pytest.raises(ValueError):
            serial_stop(self.ALPHAS, True, 3, Budget(deadline_seconds=1.0))


# ----------------------------------------------------------------------
# Match / record / evict
# ----------------------------------------------------------------------
class TestFrontierCache:
    def test_miss_then_hit_roundtrip(self):
        request = OptimizeRequest(workload="gen:chain:4:0", **TINY)
        resolved = resolve_request(request)
        key = request_fingerprint(resolved, "iama")
        cache = FrontierCache()
        assert cache.match(key, request.budget).status == CACHE_MISS

        session, alphas, updates, plans_after = _run_and_trace(request)
        _record(cache, key, request, session, alphas, updates, plans_after)

        decision = cache.match(key, request.budget)
        assert decision.status == CACHE_HIT
        assert decision.stop_index == len(alphas)
        payload = decision.entry.result_payload(
            decision.stop_index, decision.finish_reason
        )
        result = OptimizationResult.from_dict(payload)
        assert result.finish_reason == FINISH_EXHAUSTED
        assert result.frontier_size > 0
        assert cache.hits == 1 and cache.misses == 1

    def test_replay_of_a_shorter_budget_prefix(self):
        request = OptimizeRequest(workload="gen:chain:4:0", **TINY)
        key = request_fingerprint(resolve_request(request), "iama")
        cache = FrontierCache()
        session, alphas, updates, plans_after = _run_and_trace(request)
        _record(cache, key, request, session, alphas, updates, plans_after)

        capped = Budget(max_invocations=2)
        decision = cache.match(key, capped)
        assert decision.status == CACHE_HIT
        assert decision.stop_index == 2
        payload = decision.entry.result_payload(2, decision.finish_reason)
        # The replayed prefix is bit-identical to a serial capped run.
        serial = open_session(request.with_overrides(budget=capped)).run()
        replay = OptimizationResult.from_dict(payload)
        assert [tuple(s.cost) for s in replay.frontier] == [
            tuple(s.cost) for s in serial.frontier
        ]
        assert replay.finish_reason == serial.finish_reason
        assert replay.plans_generated == serial.plans_generated

    def test_warm_start_pops_the_parked_session(self):
        request = OptimizeRequest(
            workload="gen:chain:4:0", budget=Budget(max_invocations=1), **TINY
        )
        key = request_fingerprint(resolve_request(request), "iama")
        cache = FrontierCache()
        session, alphas, updates, plans_after = _run_and_trace(request)
        assert session.resumable
        _record(cache, key, request, session, alphas, updates, plans_after)

        decision = cache.match(key, Budget())
        assert decision.status == CACHE_WARM
        assert decision.session is session
        # The session was popped: a second unlimited request has no session
        # left to resume and must run cold.
        assert cache.match(key, Budget()).status == CACHE_MISS
        assert cache.stats()["warm_starts"] == 1

    def test_shorter_trace_never_replaces_longer(self):
        request = OptimizeRequest(workload="gen:chain:4:0", **TINY)
        key = request_fingerprint(resolve_request(request), "iama")
        cache = FrontierCache()
        session, alphas, updates, plans_after = _run_and_trace(request)
        _record(cache, key, request, session, alphas, updates, plans_after)
        entry = cache.record(
            key,
            workload=request.workload,
            algorithm="iama",
            query_name="x",
            table_count=4,
            metric_names=("a",),
            levels=3,
            refines=True,
            alphas=alphas[:1],
            updates=updates[:1],
            plans_after=plans_after[:1],
        )
        assert entry.invocations == len(alphas)

    def test_lru_eviction_respects_the_byte_budget(self):
        import json

        request_a = OptimizeRequest(workload="gen:chain:4:0", **TINY)
        request_b = OptimizeRequest(workload="gen:star:4:0", **TINY)
        session_a, alphas_a, updates_a, plans_a = _run_and_trace(request_a)
        session_b, alphas_b, updates_b, plans_b = _run_and_trace(request_b)
        one_entry_bytes = sum(
            len(json.dumps(u, separators=(",", ":"))) for u in updates_a
        )
        cache = FrontierCache(max_bytes=one_entry_bytes + one_entry_bytes // 2)
        key_a = request_fingerprint(resolve_request(request_a), "iama")
        key_b = request_fingerprint(resolve_request(request_b), "iama")
        _record(cache, key_a, request_a, session_a, alphas_a, updates_a, plans_a)
        _record(cache, key_b, request_b, session_b, alphas_b, updates_b, plans_b)
        stats = cache.stats()
        assert stats["entries"] < 2
        assert stats["evictions"] >= 1
        assert stats["bytes_in_use"] <= cache.max_bytes

    def test_disk_persistence_survives_a_new_cache(self, tmp_path):
        request = OptimizeRequest(workload="gen:chain:4:0", **TINY)
        key = request_fingerprint(resolve_request(request), "iama")
        first = FrontierCache(persist_dir=tmp_path)
        session, alphas, updates, plans_after = _run_and_trace(request)
        _record(first, key, request, session, alphas, updates, plans_after)

        second = FrontierCache(persist_dir=tmp_path)
        decision = second.match(key, request.budget)
        assert decision.status == CACHE_HIT
        assert decision.entry.session is None  # live sessions never persist
        payload = decision.entry.result_payload(
            decision.stop_index, decision.finish_reason
        )
        assert OptimizationResult.from_dict(payload).frontier_size > 0

    def test_record_rejects_misaligned_traces(self):
        cache = FrontierCache()
        with pytest.raises(ValueError):
            cache.record(
                "k",
                workload="w",
                algorithm="iama",
                query_name="q",
                table_count=2,
                metric_names=("a",),
                levels=3,
                refines=True,
                alphas=[1.0],
                updates=[],
                plans_after=[1],
            )


# ----------------------------------------------------------------------
# Two-tier byte accounting
# ----------------------------------------------------------------------
class TestTwoTierAccounting:
    """The LRU budget must charge *current* sizes, never admission-time ones.

    A warm-started session's plan arena grows while it refines; when the
    extended run is re-recorded (or the popped session is re-parked after an
    admission bounce) the live-tier charge must be remeasured, or the byte
    budget undercounts and eviction fires late.  ``audit()`` recomputes every
    entry from scratch and asserts the charges match.
    """

    def _capped(self):
        return OptimizeRequest(
            workload="gen:chain:4:0", budget=Budget(max_invocations=1), **TINY
        )

    def test_warm_start_resume_is_recharged_at_the_grown_size(self):
        # A clique keeps generating new plans as resolution refines, so the
        # parked arena is measurably larger after the resumed invocations.
        request = OptimizeRequest(
            workload="gen:clique:5:0",
            budget=Budget(max_invocations=1),
            levels=4,
            scale="tiny",
        )
        key = request_fingerprint(resolve_request(request), "iama")
        cache = FrontierCache()
        session, alphas, updates, plans_after = _run_and_trace(request)
        _record(cache, key, request, session, alphas, updates, plans_after)
        cache.audit()
        first_arena = cache.stats()["arena_bytes"]
        assert first_arena > 0

        capped_wider = Budget(max_invocations=2)
        decision = cache.match(key, capped_wider)
        assert decision.status == CACHE_WARM
        cache.audit()  # popping released exactly the arena charge
        assert cache.stats()["arena_bytes"] == 0

        # Resume one more invocation: the arena grows past its parked size,
        # and the invocation cap keeps the session parkable for re-record.
        resumed = decision.session
        resumed.resume(capped_wider)
        while not resumed.finished:
            update = resumed.step()
            alphas.append(update.invocation.alpha)
            updates.append(update.to_dict())
            plans_after.append(resumed.driver.factory.counters.total_plans_built)
        _record(cache, key, request, resumed, alphas, updates, plans_after)
        cache.audit()
        grown_arena = cache.stats()["arena_bytes"]
        assert grown_arena > first_arena

    def test_repark_after_admission_bounce_recharges_the_arena(self):
        request = self._capped()
        key = request_fingerprint(resolve_request(request), "iama")
        cache = FrontierCache()
        session, alphas, updates, plans_after = _run_and_trace(request)
        _record(cache, key, request, session, alphas, updates, plans_after)
        decision = cache.match(key, Budget())
        assert decision.status == CACHE_WARM
        # The bounced submission re-records the same-length trace to re-park
        # the popped session (the PlanningService admission-failure path).
        entry = _record(
            cache, key, request, decision.session, alphas, updates, plans_after
        )
        assert entry.session is decision.session
        cache.audit()
        stats = cache.stats()
        assert stats["live_sessions"] == 1
        assert stats["arena_bytes"] > 0
        assert stats["bytes_in_use"] == stats["trace_bytes"] + stats["arena_bytes"]

    def test_warm_pop_releases_only_the_live_tier(self):
        request = self._capped()
        key = request_fingerprint(resolve_request(request), "iama")
        cache = FrontierCache()
        session, alphas, updates, plans_after = _run_and_trace(request)
        _record(cache, key, request, session, alphas, updates, plans_after)
        before = cache.stats()
        decision = cache.match(key, Budget())
        assert decision.status == CACHE_WARM
        after = cache.stats()
        assert after["trace_bytes"] == before["trace_bytes"]
        assert after["bytes_in_use"] == before["bytes_in_use"] - before["arena_bytes"]

    def test_flush_persists_every_resident_trace(self, tmp_path):
        request = OptimizeRequest(workload="gen:star:4:0", **TINY)
        key = request_fingerprint(resolve_request(request), "iama")
        cache = FrontierCache(persist_dir=tmp_path)
        session, alphas, updates, plans_after = _run_and_trace(request)
        _record(cache, key, request, session, alphas, updates, plans_after)
        assert cache.flush() == 1
        # A fresh cache over the same directory replays the flushed trace.
        replayer = FrontierCache(persist_dir=tmp_path)
        assert replayer.match(key, request.budget).status == CACHE_HIT

    def test_flush_without_persistence_is_a_noop(self):
        assert FrontierCache().flush() == 0

