"""End-to-end tests of the HTTP wire layer (server + client)."""

from __future__ import annotations

import pytest

from repro.api import OptimizeRequest, open_session
from repro.api.schema import OptimizationResult
from repro.service import (
    PlanningServer,
    PlanningService,
    ServiceClient,
    ServiceClientError,
)

TINY = dict(levels=3, scale="tiny")


@pytest.fixture()
def server():
    service = PlanningService(policy="fair", workers=2, max_sessions=4)
    with PlanningServer(service, port=0).start() as running:
        yield running


@pytest.fixture()
def client(server):
    host, port = server.address
    return ServiceClient(host, port)


class TestWireProtocol:
    def test_health_and_planners(self, client):
        health = client.health()
        assert health["kind"] == "service_health"
        assert health["status"] == "ok"
        assert len(health["workers"]) == 1
        worker = health["workers"][0]
        assert worker["alive"] and worker["pid"] > 0
        planners = client.planners()
        assert "iama" in planners and "exhaustive" in planners

    def test_submit_poll_result_roundtrip(self, client):
        request = OptimizeRequest(workload="gen:chain:4:0", **TINY)
        status = client.submit(request)
        assert status["kind"] == "job_status"
        assert status["workload"] == "gen:chain:4:0"
        result = client.result(status["ticket"], timeout=60.0)
        serial = open_session(request).run()
        assert [tuple(s.cost) for s in result.frontier] == [
            tuple(s.cost) for s in serial.frontier
        ]
        # The embedded payload survives a full schema round trip.
        final = client.poll(status["ticket"])
        assert OptimizationResult.from_dict(final["result"]).to_dict() == final["result"]

    def test_second_submission_is_a_cache_hit(self, client):
        request = OptimizeRequest(workload="gen:star:4:1", **TINY)
        first = client.submit(request)
        client.result(first["ticket"], timeout=60.0)
        second = client.submit(request)
        client.result(second["ticket"], timeout=60.0)
        assert client.poll(second["ticket"])["cache_status"] == "hit"

    def test_stream_emits_monotone_updates_then_status(self, client):
        request = OptimizeRequest(workload="gen:cycle:4:0", **TINY)
        ticket = client.submit(request)["ticket"]
        lines = list(client.stream(ticket))
        kinds = [line["kind"] for line in lines]
        assert kinds == ["frontier_update"] * request.levels + ["job_status"]
        alphas = [
            line["invocation"]["alpha"]
            for line in lines
            if line["kind"] == "frontier_update"
        ]
        assert alphas == sorted(alphas, reverse=True)
        assert lines[-1]["state"] == "finished"

    def test_remote_steer_select(self):
        # Manual-mode service behind the wire layer: the session only
        # advances when the test steps it, so the steer timing is exact.
        service = PlanningService(workers=0, cache=False)
        with PlanningServer(service, port=0).start() as running:
            host, port = running.address
            manual = ServiceClient(host, port)
            request = OptimizeRequest(workload="gen:star:4:2", levels=6, scale="tiny")
            ticket = manual.submit(request)["ticket"]
            service.step_once()
            manual.select(ticket, 0)
            service.run_until_idle()
            result = manual.result(ticket, timeout=10.0)
            assert result.finish_reason == "selected"
            assert result.selected_plan is not None

    def test_steering_with_wrong_dimensionality_is_a_400(self):
        service = PlanningService(workers=0, cache=False)
        with PlanningServer(service, port=0).start() as running:
            host, port = running.address
            manual = ServiceClient(host, port)
            request = OptimizeRequest(workload="gen:star:4:0", levels=4, scale="tiny")
            ticket = manual.submit(request)["ticket"]
            service.step_once()
            with pytest.raises(ServiceClientError) as err:
                manual.steer_bounds(ticket, [1.0])  # session has 3 metrics
            assert err.value.status == 400
            # The job is unharmed by the rejected steer.
            service.run_until_idle()
            assert manual.poll(ticket)["state"] == "finished"

    def test_steering_a_finished_job_is_a_409(self, client):
        request = OptimizeRequest(workload="gen:chain:3:0", levels=2, scale="tiny")
        ticket = client.submit(request)["ticket"]
        client.result(ticket, timeout=60.0)
        with pytest.raises(ServiceClientError) as err:
            client.select(ticket, 0)
        assert err.value.status == 409

    def test_cancel_over_the_wire(self, client):
        request = OptimizeRequest(workload="gen:clique:4:3", levels=8, scale="tiny")
        ticket = client.submit(request)["ticket"]
        client.cancel(ticket)
        # The cancel lands at a slice boundary; wait for the terminal state
        # (the job may also have finished legitimately just before).
        deadline = 60.0
        while True:
            status = client.poll(ticket)
            if status["state"] in ("cancelled", "finished"):
                break
            deadline -= 0.02
            assert deadline > 0, f"job stuck in {status['state']}"
            import time

            time.sleep(0.02)
        assert status["state"] in ("cancelled", "finished")

    def test_stats_endpoint(self, client):
        request = OptimizeRequest(workload="gen:chain:3:0", levels=2, scale="tiny")
        client.result(client.submit(request)["ticket"], timeout=60.0)
        stats = client.stats()
        assert stats["kind"] == "service_stats"
        assert stats["scheduler"]["submitted"] >= 1
        assert "hits" in stats["cache"]

    def test_error_mapping(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.poll("job-424242")
        assert err.value.status == 404
        with pytest.raises(ServiceClientError) as err:
            client._request("POST", "/v1/jobs", {"schema_version": 1, "kind": "nope"})
        assert err.value.status == 400
        with pytest.raises(ServiceClientError) as err:
            client._request("GET", "/v1/unknown")
        assert err.value.status == 404

    def test_malformed_workload_is_a_400(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.submit(OptimizeRequest(workload="gen:star:nope"))
        assert err.value.status == 400


class TestBackpressure:
    def test_full_backlog_maps_to_503(self):
        service = PlanningService(
            policy="fair", workers=0, max_sessions=1, max_queue=0, cache=False
        )
        with PlanningServer(service, port=0).start() as running:
            host, port = running.address
            client = ServiceClient(host, port)
            request = OptimizeRequest(workload="gen:chain:4:0", levels=8, scale="tiny")
            client.submit(request)  # occupies the only session slot
            with pytest.raises(ServiceClientError) as err:
                client.submit(
                    OptimizeRequest(workload="gen:star:4:0", levels=8, scale="tiny")
                )
            assert err.value.status == 503
