"""Tests for the :class:`PlanningService` façade.

The centrepiece is the differential guarantee: for every scheduling policy,
the frontier a request receives from the service — cold, replayed, or
warm-started — is bit-identical to running the same ``OptimizeRequest``
through ``open_session`` serially, across all four join topologies and two
seeds.
"""

from __future__ import annotations

import pytest

from repro.api import Budget, OptimizeRequest, open_session
from repro.service import (
    CACHE_BYPASS,
    CACHE_HIT,
    CACHE_MISS,
    CACHE_WARM,
    AdmissionError,
    PlanningService,
    UnknownTicketError,
)

TINY = dict(levels=3, scale="tiny")

TOPOLOGIES = ("chain", "star", "cycle", "clique")
SEEDS = (0, 1)


def _requests():
    return [
        OptimizeRequest(workload=f"gen:{topology}:4:{seed}", **TINY)
        for topology in TOPOLOGIES
        for seed in SEEDS
    ]


def _frontier_costs(result):
    return [tuple(summary.cost) for summary in result.frontier]


@pytest.fixture(scope="module")
def serial_frontiers():
    """Ground truth: each request run serially through open_session."""
    return {
        request.workload: _frontier_costs(open_session(request).run())
        for request in _requests()
    }


# ----------------------------------------------------------------------
# The differential guarantee
# ----------------------------------------------------------------------
class TestDifferentialGuarantee:
    @pytest.mark.parametrize("policy", ("fair", "edf", "alpha_greedy"))
    def test_service_frontiers_are_bit_identical_to_serial(
        self, policy, serial_frontiers
    ):
        with PlanningService(policy=policy, workers=2, max_sessions=4) as service:
            tickets = {
                request.workload: service.submit(request)
                for request in _requests()
            }
            for workload, ticket in tickets.items():
                result = service.result(ticket, timeout=120.0)
                assert _frontier_costs(result) == serial_frontiers[workload], (
                    f"policy {policy}: frontier of {workload} diverged from "
                    "serial execution"
                )

    @pytest.mark.parametrize("policy", ("fair", "edf", "alpha_greedy"))
    def test_manual_interleaving_matches_serial(self, policy, serial_frontiers):
        # Manual mode: one deterministic interleaving per policy, all
        # requests admitted at once, stepped to completion on one thread.
        with PlanningService(
            policy=policy, workers=0, max_sessions=8, cache=False
        ) as service:
            tickets = {
                request.workload: service.submit(request)
                for request in _requests()
            }
            service.run_until_idle()
            for workload, ticket in tickets.items():
                result = service.result(ticket, timeout=0.1)
                assert _frontier_costs(result) == serial_frontiers[workload]

    def test_replayed_results_are_bit_identical(self, serial_frontiers):
        with PlanningService(workers=2) as service:
            request = _requests()[0]
            first = service.submit(request)
            service.result(first, timeout=60.0)
            second = service.submit(request)
            result = service.result(second, timeout=60.0)
            assert service.poll(second)["cache_status"] == CACHE_HIT
            assert _frontier_costs(result) == serial_frontiers[request.workload]
            assert service.scheduler.invocations_run == len(result.invocations)

    def test_warm_started_results_are_bit_identical(self, serial_frontiers):
        request = _requests()[1]
        capped = request.with_overrides(budget=Budget(max_invocations=1))
        with PlanningService(workers=2) as service:
            service.result(service.submit(capped), timeout=60.0)
            ticket = service.submit(request)
            result = service.result(ticket, timeout=60.0)
            assert service.poll(ticket)["cache_status"] == CACHE_WARM
            assert _frontier_costs(result) == serial_frontiers[request.workload]
            # Only the missing invocations ran: 1 (capped) + 2 (resumed).
            assert service.scheduler.invocations_run == request.levels


# ----------------------------------------------------------------------
# Verbs and edge cases
# ----------------------------------------------------------------------
class TestVerbs:
    def test_stream_replays_prefix_and_live_updates(self):
        request = OptimizeRequest(workload="gen:chain:4:0", **TINY)
        with PlanningService(workers=1) as service:
            ticket = service.submit(request)
            updates = list(service.stream(ticket, timeout=60.0))
            assert len(updates) == request.levels
            alphas = [u["invocation"]["alpha"] for u in updates]
            assert alphas == sorted(alphas, reverse=True)
            # Replayed stream is identical payload-for-payload.
            replay = list(service.stream(service.submit(request), timeout=60.0))
            assert replay == updates

    def test_steer_changes_bounds_remotely(self):
        request = OptimizeRequest(workload="gen:star:4:0", levels=4, scale="tiny")
        with PlanningService(workers=0, cache=False) as service:
            ticket = service.submit(request)
            service.step_once()
            job = service.job(ticket)
            frontier = job.updates[0]["frontier"]
            tighter = [c * 2 for c in frontier[0]["cost"] if isinstance(c, float)]
            bounds_payload = {
                "schema_version": 1,
                "kind": "steer_request",
                "action": "change_bounds",
                "bounds": [v if isinstance(v, float) else v for v in tighter],
            }
            service.steer(ticket, bounds_payload)
            service.run_until_idle()
            result = service.result(ticket, timeout=1.0)
            assert result.finish_reason == "exhausted"
            # The bounds change reset the resolution: more invocations than a
            # plain sweep.  (The session itself is released at the terminal
            # transition; the steer is visible through the invocation count.)
            assert len(result.invocations) > request.levels
            assert service.job(ticket).session is None

    def test_steered_sessions_are_never_cached(self):
        request = OptimizeRequest(workload="gen:star:4:0", **TINY)
        with PlanningService(workers=0) as service:
            ticket = service.submit(request)
            service.step_once()
            service.steer(
                ticket,
                {
                    "schema_version": 1,
                    "kind": "steer_request",
                    "action": "select",
                    "index": 0,
                },
            )
            service.run_until_idle()
            result = service.result(ticket, timeout=1.0)
            assert result.finish_reason == "selected"
            assert result.selected_plan is not None
            # A repeat submission must run cold: the steered trace is tainted.
            repeat = service.submit(request)
            assert service.poll(repeat)["cache_status"] == CACHE_MISS

    def test_cancel(self):
        request = OptimizeRequest(workload="gen:clique:4:0", levels=5, scale="tiny")
        with PlanningService(workers=0, cache=False) as service:
            ticket = service.submit(request)
            service.step_once()
            status = service.cancel(ticket)
            assert status["state"] == "cancelled"
            # Anytime semantics: a cancelled job still reports the partial
            # frontier it computed, marked in_progress.
            result = service.result(ticket, timeout=1.0)
            assert result.finish_reason == "in_progress"
            assert len(result.invocations) == 1

    def test_deadline_budgets_bypass_the_cache(self):
        request = OptimizeRequest(
            workload="gen:chain:4:0",
            budget=Budget(deadline_seconds=60.0),
            **TINY,
        )
        with PlanningService(workers=1) as service:
            ticket = service.submit(request)
            service.result(ticket, timeout=60.0)
            assert service.poll(ticket)["cache_status"] == CACHE_BYPASS
            # Its deterministic prefix is still recorded for future replay.
            plain = service.submit(
                request.with_overrides(budget=Budget(max_invocations=1))
            )
            service.result(plain, timeout=60.0)
            assert service.poll(plain)["cache_status"] == CACHE_HIT

    def test_unknown_ticket(self):
        with PlanningService(workers=0) as service:
            with pytest.raises(UnknownTicketError):
                service.poll("job-999999")

    def test_unknown_algorithm_fails_at_submit(self):
        with PlanningService(workers=0) as service:
            with pytest.raises(KeyError):
                service.submit(
                    OptimizeRequest(workload="gen:chain:3:0", algorithm="nope")
                )

    def test_admission_error_surfaces_and_never_loses_parked_sessions(self):
        request = OptimizeRequest(workload="gen:chain:4:0", **TINY)
        capped = request.with_overrides(budget=Budget(max_invocations=1))
        with PlanningService(workers=0, max_sessions=1, max_queue=0) as service:
            first = service.submit(capped)
            service.run_until_idle()
            assert service.poll(first)["state"] == "finished"
            # Fill the only session slot, then force a warm submit to bounce.
            service.submit(
                OptimizeRequest(workload="gen:star:5:3", levels=5, scale="tiny")
            )
            with pytest.raises(AdmissionError):
                service.submit(request)  # wants the parked session, no room
            service.run_until_idle()
            # The parked session survived the bounced submission.
            retry = service.submit(request)
            service.run_until_idle()
            assert service.poll(retry)["cache_status"] == CACHE_WARM
            assert service.result(retry, timeout=1.0).finish_reason == "exhausted"

    def test_cancelled_warm_start_reparks_the_session(self):
        request = OptimizeRequest(workload="gen:chain:4:0", levels=4, scale="tiny")
        capped = request.with_overrides(budget=Budget(max_invocations=1))
        with PlanningService(workers=0) as service:
            service.submit(capped)
            service.run_until_idle()
            # Warm start, then cancel before it computes anything new.
            warm = service.submit(request)
            assert service.poll(warm)["cache_status"] == CACHE_WARM
            service.cancel(warm)
            assert service.poll(warm)["state"] == "cancelled"
            # The popped session was re-parked: the next attempt warm-starts
            # again instead of recomputing from scratch.
            retry = service.submit(request)
            assert service.poll(retry)["cache_status"] == CACHE_WARM
            service.run_until_idle()
            assert service.result(retry, timeout=1.0).finish_reason == "exhausted"

    def test_terminal_job_records_are_pruned_beyond_the_cap(self):
        with PlanningService(workers=0, cache=False, max_retained_jobs=2) as service:
            tickets = []
            for seed in range(4):
                tickets.append(
                    service.submit(
                        OptimizeRequest(workload=f"gen:chain:3:{seed}", **TINY)
                    )
                )
                service.run_until_idle()
            # The two oldest terminal records were dropped; the two newest
            # still answer polls.
            assert service.poll(tickets[-1])["state"] == "finished"
            with pytest.raises(UnknownTicketError):
                service.poll(tickets[0])

    def test_stats_payload_shape(self):
        with PlanningService(workers=0) as service:
            stats = service.stats()
            assert stats["kind"] == "service_stats"
            assert "scheduler" in stats and "cache" in stats
            assert stats["scheduler"]["policy"] == "fair"

    def test_all_registered_planners_run_through_the_service(self):
        with PlanningService(workers=1) as service:
            for algorithm in ("iama", "memoryless", "oneshot", "exhaustive",
                              "single_objective"):
                request = OptimizeRequest(
                    workload="gen:chain:3:0", algorithm=algorithm, **TINY
                )
                ticket = service.submit(request)
                result = service.result(ticket, timeout=60.0)
                serial = open_session(request).run()
                assert _frontier_costs(result) == _frontier_costs(serial), algorithm
