"""Shared fixtures for the test suite.

Most tests run against a small, fully deterministic synthetic schema (three
tables joined in a chain) so that plan counts and cost relationships are stable
and fast to compute; workload- and benchmark-level tests use the TPC-H blocks.
"""

from __future__ import annotations

import pytest

from repro.catalog.cardinality import CardinalityEstimator, JoinGraph, JoinPredicate
from repro.catalog.schema import Column, ForeignKey, Schema, Table
from repro.catalog.statistics import StatisticsCatalog
from repro.core.resolution import ResolutionSchedule
from repro.costs.metrics import cloud_metric_set, paper_metric_set
from repro.costs.model import CostModelConfig, MultiObjectiveCostModel
from repro.plans.factory import PlanFactory
from repro.plans.operators import OperatorRegistry
from repro.plans.query import Query


def build_small_schema() -> Schema:
    """Three tables joined in a chain: customers -> orders -> items."""
    customers = Table(
        "customers",
        [
            Column("id", "int", distinct_values=1_000),
            Column("segment", "text", distinct_values=5),
        ],
        row_count=1_000,
    )
    orders = Table(
        "orders",
        [
            Column("id", "int", distinct_values=20_000),
            Column("customer_id", "int", distinct_values=1_000),
        ],
        row_count=20_000,
    )
    items = Table(
        "items",
        [
            Column("id", "int", distinct_values=100_000),
            Column("order_id", "int", distinct_values=20_000),
        ],
        row_count=100_000,
    )
    return Schema(
        "shop",
        [customers, orders, items],
        [
            ForeignKey("orders", "customer_id", "customers", "id"),
            ForeignKey("items", "order_id", "orders", "id"),
        ],
    )


def build_chain_query(tables=("customers", "orders", "items")) -> Query:
    """A chain query over the small schema (or a prefix of it)."""
    predicates = []
    if "orders" in tables and "customers" in tables:
        predicates.append(JoinPredicate("orders", "customer_id", "customers", "id"))
    if "items" in tables and "orders" in tables:
        predicates.append(JoinPredicate("items", "order_id", "orders", "id"))
    return Query(
        "shop_chain_" + "_".join(sorted(tables)),
        JoinGraph(tables=list(tables), predicates=predicates),
    )


def build_factory(
    query: Query,
    schema: Schema = None,
    metric_set=None,
    registry: OperatorRegistry = None,
) -> PlanFactory:
    """Plan factory over the small schema with a compact operator registry."""
    schema = schema or build_small_schema()
    metric_set = metric_set or paper_metric_set()
    registry = registry or OperatorRegistry(
        parallelism_levels=(1, 2),
        sampling_rates=(0.1,),
        small_table_rows=500,
        join_algorithms=("hash_join", "nested_loop_join"),
    )
    statistics = StatisticsCatalog(schema)
    estimator = CardinalityEstimator(statistics, query.join_graph)
    cost_model = MultiObjectiveCostModel(metric_set, CostModelConfig())
    return PlanFactory(estimator, cost_model, registry)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def small_schema() -> Schema:
    return build_small_schema()


@pytest.fixture
def small_statistics(small_schema) -> StatisticsCatalog:
    return StatisticsCatalog(small_schema)


@pytest.fixture
def chain_query() -> Query:
    return build_chain_query()


@pytest.fixture
def two_table_query() -> Query:
    return build_chain_query(("customers", "orders"))


@pytest.fixture
def paper_metrics():
    return paper_metric_set()


@pytest.fixture
def cloud_metrics():
    return cloud_metric_set()


@pytest.fixture
def chain_factory(chain_query) -> PlanFactory:
    return build_factory(chain_query)


@pytest.fixture
def two_table_factory(two_table_query) -> PlanFactory:
    return build_factory(two_table_query)


@pytest.fixture
def schedule_three_levels() -> ResolutionSchedule:
    return ResolutionSchedule(levels=3, target_precision=1.05, precision_step=0.3)
